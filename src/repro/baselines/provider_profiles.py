"""Commercial Personal-Cloud provider profiles (Table 1, Fig 7b).

We cannot run proprietary desktop clients, so each provider is modeled by
a measured profile: per-operation and per-batch control costs, storage
inflation (protocol framing, retransmissions, absence of compression) and
capability flags (delta encoding, client-side compression, dedup).  The
numbers are calibrated from the paper's own measurements (§5.2.2,
Table 2) and from Drago et al., "Benchmarking Personal Cloud Storage"
(IMC'13) [4]:

* Dropbox: heavy control signalling (≈29 KB/op unbatched; Table 2 fits a
  ≈28 KB/batch + ≈1.1 KB/op model), delta encoding on updates, bundling;
* OneDrive / Google Drive / Box / Amazon Cloud Drive: no delta encoding,
  no client compression, full re-upload on update, lighter control;
* StackSync: measured by running the real implementation, so its profile
  carries only the client version string for Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProviderProfile:
    """Traffic model of one Personal Cloud synchronization client."""

    name: str
    client_version: str
    #: Control bytes charged once per sync transaction (batch).
    per_batch_control: int
    #: Control bytes charged per operation inside a transaction.
    per_op_control: int
    #: Multiplier on raw payload bytes for storage traffic (protocol
    #: framing, TLS records, retransmissions).
    storage_inflation: float
    #: Fixed storage-path overhead per uploaded object (HTTP headers...).
    per_object_storage_overhead: int = 600
    #: Whether updates are shipped as rsync deltas (vs full re-upload).
    delta_updates: bool = False
    #: Whether payloads are compressed client-side before upload.
    compresses: bool = False
    #: Whether identical chunks are deduplicated client-side.
    dedup: bool = False
    #: Maximum native bundling batch size (1 = none).
    bundles: bool = False


#: Desktop client versions — Table 1 of the paper.
TABLE1_CLIENT_VERSIONS = {
    "StackSync": "1.6.4",
    "Dropbox": "2.6.33",
    "Microsoft OneDrive": "17.0.4035.0328",
    "Amazon Cloud Drive": "2.4.2013.3290",
    "Google Drive": "1.15.6430.6825",
    "Box": "4.0.4925",
}

DROPBOX = ProviderProfile(
    name="Dropbox",
    client_version=TABLE1_CLIENT_VERSIONS["Dropbox"],
    per_batch_control=28_000,
    per_op_control=1_100,
    storage_inflation=1.18,
    per_object_storage_overhead=900,
    delta_updates=True,
    compresses=False,
    dedup=True,
    bundles=True,
)

ONEDRIVE = ProviderProfile(
    name="Microsoft OneDrive",
    client_version=TABLE1_CLIENT_VERSIONS["Microsoft OneDrive"],
    per_batch_control=6_000,
    per_op_control=1_500,
    storage_inflation=1.04,
    delta_updates=False,
)

GOOGLE_DRIVE = ProviderProfile(
    name="Google Drive",
    client_version=TABLE1_CLIENT_VERSIONS["Google Drive"],
    per_batch_control=5_000,
    per_op_control=2_000,
    storage_inflation=1.05,
    delta_updates=False,
)

BOX = ProviderProfile(
    name="Box",
    client_version=TABLE1_CLIENT_VERSIONS["Box"],
    per_batch_control=7_500,
    per_op_control=2_500,
    storage_inflation=1.06,
    delta_updates=False,
)

AMAZON_CLOUD_DRIVE = ProviderProfile(
    name="Amazon Cloud Drive",
    client_version=TABLE1_CLIENT_VERSIONS["Amazon Cloud Drive"],
    per_batch_control=6_500,
    per_op_control=1_800,
    storage_inflation=1.05,
    delta_updates=False,
)

#: The commercial comparison set of Fig 7(b).
COMMERCIAL_PROFILES = {
    profile.name: profile
    for profile in (DROPBOX, ONEDRIVE, GOOGLE_DRIVE, BOX, AMAZON_CLOUD_DRIVE)
}
