"""Simulated commercial baselines: delta encoding + provider profiles."""

from repro.baselines.baseline_client import ProfileClient, TrafficReport
from repro.baselines.delta import (
    Delta,
    Signature,
    apply_delta,
    compute_delta,
    compute_signature,
)
from repro.baselines.provider_profiles import (
    AMAZON_CLOUD_DRIVE,
    BOX,
    COMMERCIAL_PROFILES,
    DROPBOX,
    GOOGLE_DRIVE,
    ONEDRIVE,
    ProviderProfile,
    TABLE1_CLIENT_VERSIONS,
)

__all__ = [
    "AMAZON_CLOUD_DRIVE",
    "BOX",
    "COMMERCIAL_PROFILES",
    "DROPBOX",
    "GOOGLE_DRIVE",
    "ONEDRIVE",
    "Delta",
    "ProfileClient",
    "ProviderProfile",
    "Signature",
    "TABLE1_CLIENT_VERSIONS",
    "TrafficReport",
    "apply_delta",
    "compute_delta",
    "compute_signature",
]
