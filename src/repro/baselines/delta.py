"""rsync-style delta encoding — the librsync role in Dropbox (§2, §5.2.2).

The paper attributes Dropbox's UPDATE efficiency to delta encoding via
*librsync*.  This module implements the rsync algorithm from scratch:

1. the receiver summarizes its old file as per-block *signatures*
   (rolling Adler-32 weak hash + truncated MD5 strong hash);
2. the sender scans the new file with a rolling window, emitting COPY
   tokens for blocks the receiver already has and LITERAL runs for novel
   bytes;
3. the receiver replays the delta against the old file.

The implementation is optimized for the common personal-cloud case of
long unchanged runs: after any block match it resumes block-aligned
scanning (no per-byte rolling), so a small prepend costs one short
rolling search instead of re-rolling the whole file.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

DEFAULT_BLOCK_SIZE = 4096
_ADLER_MOD = 65521

#: Wire-size model: per-token framing cost (type byte + varint offsets).
COPY_TOKEN_BYTES = 5
LITERAL_HEADER_BYTES = 3
#: Signature entry: 4-byte weak hash + 8-byte strong hash + index.
SIGNATURE_ENTRY_BYTES = 16


@dataclass(frozen=True)
class BlockSignature:
    """Signature of one block of the old file."""

    index: int
    weak: int
    strong: bytes


@dataclass(frozen=True)
class Signature:
    """Complete signature of one file version."""

    block_size: int
    blocks: Tuple[BlockSignature, ...]
    file_size: int

    @property
    def wire_size(self) -> int:
        """Bytes needed to ship this signature to the sender."""
        return 8 + len(self.blocks) * SIGNATURE_ENTRY_BYTES


#: Delta ops: ("copy", block_index) or ("literal", bytes).
DeltaOp = Tuple[str, Union[int, bytes]]


@dataclass(frozen=True)
class Delta:
    """An rsync delta: the instructions to rebuild the new file."""

    block_size: int
    ops: Tuple[DeltaOp, ...]

    @property
    def literal_bytes(self) -> int:
        return sum(len(op[1]) for op in self.ops if op[0] == "literal")

    @property
    def copy_count(self) -> int:
        return sum(1 for op in self.ops if op[0] == "copy")

    @property
    def wire_size(self) -> int:
        """Bytes needed to ship this delta."""
        size = 4
        for kind, payload in self.ops:
            if kind == "copy":
                size += COPY_TOKEN_BYTES
            else:
                size += LITERAL_HEADER_BYTES + len(payload)
        return size


def _weak_checksum(block: bytes) -> int:
    return zlib.adler32(block) & 0xFFFFFFFF


def _strong_checksum(block: bytes) -> bytes:
    return hashlib.md5(block).digest()[:8]


def compute_signature(data: bytes, block_size: int = DEFAULT_BLOCK_SIZE) -> Signature:
    """Per-block signatures of *data* (receiver side)."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    blocks = []
    for index, offset in enumerate(range(0, len(data), block_size)):
        block = data[offset : offset + block_size]
        blocks.append(
            BlockSignature(
                index=index, weak=_weak_checksum(block), strong=_strong_checksum(block)
            )
        )
    return Signature(block_size=block_size, blocks=tuple(blocks), file_size=len(data))


class _RollingAdler:
    """Incrementally maintained Adler-32 over a sliding window."""

    __slots__ = ("a", "b", "length")

    def __init__(self, window: bytes):
        self.length = len(window)
        self.a = 1
        self.b = 0
        for byte in window:
            self.a = (self.a + byte) % _ADLER_MOD
            self.b = (self.b + self.a) % _ADLER_MOD

    def roll(self, out_byte: int, in_byte: int) -> None:
        self.a = (self.a - out_byte + in_byte) % _ADLER_MOD
        self.b = (self.b - self.length * out_byte + self.a - 1) % _ADLER_MOD

    @property
    def digest(self) -> int:
        return ((self.b << 16) | self.a) & 0xFFFFFFFF


def compute_delta(signature: Signature, new_data: bytes) -> Delta:
    """Scan *new_data* against *signature*, producing a minimal delta."""
    block_size = signature.block_size
    by_weak: Dict[int, List[BlockSignature]] = {}
    for block in signature.blocks:
        # Only full-size blocks participate in rolling matches; a trailing
        # partial block is matched explicitly at the end.
        by_weak.setdefault(block.weak, []).append(block)

    full_blocks = (
        signature.file_size // block_size
        if signature.file_size % block_size
        else len(signature.blocks)
    )

    ops: List[DeltaOp] = []
    literal_start = 0
    pos = 0
    n = len(new_data)

    def flush_literal(end: int) -> None:
        nonlocal literal_start
        if end > literal_start:
            ops.append(("literal", bytes(new_data[literal_start:end])))
        literal_start = end

    def try_match(offset: int) -> int:
        """Return the matched block index at *offset*, or -1."""
        window = new_data[offset : offset + block_size]
        candidates = by_weak.get(_weak_checksum(window))
        if not candidates:
            return -1
        strong = _strong_checksum(window)
        for candidate in candidates:
            if candidate.strong == strong and (
                candidate.index < full_blocks
                or offset + block_size == n  # partial tail block
            ):
                return candidate.index
        return -1

    while pos + block_size <= n:
        # Fast path: block-aligned probe (cheap, C-speed checksums).
        matched = try_match(pos)
        if matched >= 0:
            flush_literal(pos)
            ops.append(("copy", matched))
            pos += block_size
            literal_start = pos
            continue
        # Slow path: roll byte-by-byte until the window matches again.
        roller = _RollingAdler(new_data[pos : pos + block_size])
        while pos + block_size <= n:
            candidates = by_weak.get(roller.digest)
            if candidates:
                strong = _strong_checksum(new_data[pos : pos + block_size])
                found = next(
                    (c for c in candidates if c.strong == strong and c.index < full_blocks),
                    None,
                )
                if found is not None:
                    flush_literal(pos)
                    ops.append(("copy", found.index))
                    pos += block_size
                    literal_start = pos
                    break
            if pos + block_size >= n:
                pos = n
                break
            roller.roll(new_data[pos], new_data[pos + block_size])
            pos += 1
        else:
            break

    # Trailing partial block: emit as copy if it matches the old tail.
    if literal_start < n:
        tail = new_data[literal_start:]
        if signature.blocks:
            last = signature.blocks[-1]
            if (
                len(tail) == signature.file_size - (len(signature.blocks) - 1) * block_size
                and last.weak == _weak_checksum(tail)
                and last.strong == _strong_checksum(tail)
            ):
                ops.append(("copy", last.index))
                literal_start = n
    flush_literal(n)
    return Delta(block_size=block_size, ops=tuple(ops))


def apply_delta(old_data: bytes, delta: Delta) -> bytes:
    """Receiver side: rebuild the new file from old data + delta."""
    pieces: List[bytes] = []
    for kind, payload in delta.ops:
        if kind == "copy":
            start = payload * delta.block_size
            pieces.append(old_data[start : start + delta.block_size])
        else:
            pieces.append(payload)
    return b"".join(pieces)
