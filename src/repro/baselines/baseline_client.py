"""Trace-replaying simulated clients for the commercial baselines.

:class:`ProfileClient` replays a workload trace through a provider
profile, accounting control and storage traffic.  The Dropbox instance
additionally runs a *real* rsync delta exchange for UPDATEs (the paper
credits librsync for Dropbox's update efficiency) and supports file
bundling for the Table 2 experiment.

Traffic accounting convention (as in the paper / Drago et al. [4]):

* *storage traffic* — bytes on the data path (payloads, deltas, object
  framing);
* *control traffic* — bytes on the metadata/notification path
  (signatures, commit transactions, long-poll re-establishment).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.delta import compute_delta, compute_signature
from repro.baselines.provider_profiles import ProviderProfile
from repro.workload.trace import OP_ADD, OP_REMOVE, OP_UPDATE, Trace, TraceOp, TraceReplayer


@dataclass
class TrafficReport:
    """Accumulated traffic of one trace replay."""

    provider: str
    control_bytes: int = 0
    storage_bytes: int = 0
    operations: int = 0
    batches: int = 0
    by_action_control: Dict[str, int] = field(default_factory=dict)
    by_action_storage: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bytes(self) -> int:
        return self.control_bytes + self.storage_bytes

    def overhead_ratio(self, benchmark_size: int) -> float:
        """The paper's overhead metric: total traffic / benchmark size."""
        if benchmark_size <= 0:
            return 0.0
        return self.total_bytes / benchmark_size

    def add(self, action: str, control: int, storage: int) -> None:
        self.control_bytes += control
        self.storage_bytes += storage
        self.by_action_control[action] = self.by_action_control.get(action, 0) + control
        self.by_action_storage[action] = self.by_action_storage.get(action, 0) + storage
        self.operations += 1


class ProfileClient:
    """Replays trace operations through a provider traffic profile."""

    #: rsync block size used for the Dropbox delta path.
    DELTA_BLOCK_SIZE = 4096

    def __init__(self, profile: ProviderProfile, batch_size: int = 1):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.profile = profile
        self.batch_size = batch_size if profile.bundles else 1
        self._previous_contents: Dict[str, bytes] = {}
        self._known_hashes: set = set()
        self._pending_in_batch = 0

    # -- public API -----------------------------------------------------------------

    def replay(self, trace: Trace, replayer: Optional[TraceReplayer] = None) -> TrafficReport:
        """Replay the whole trace; returns the traffic report."""
        if replayer is None:
            replayer = TraceReplayer(trace)
        report = TrafficReport(provider=self.profile.name)
        for op in trace:
            content = replayer.materialize(op)
            self.replay_op(op, content, report)
        self._close_batch(report)
        return report

    def replay_op(
        self, op: TraceOp, content: Optional[bytes], report: TrafficReport
    ) -> None:
        control = self._control_cost(report)
        if op.op == OP_ADD:
            storage = self._upload_cost(op.path, content or b"")
            self._previous_contents[op.path] = content or b""
        elif op.op == OP_UPDATE:
            storage, extra_control = self._update_cost(op.path, content or b"")
            control += extra_control
            self._previous_contents[op.path] = content or b""
        elif op.op == OP_REMOVE:
            storage = 0
            self._previous_contents.pop(op.path, None)
        else:
            raise ValueError(f"unknown op {op.op!r}")
        report.add(op.op, control, storage)

    # -- cost model --------------------------------------------------------------------

    def _control_cost(self, report: TrafficReport) -> int:
        """Per-op control, charging the batch cost when a new batch opens."""
        control = self.profile.per_op_control
        if self._pending_in_batch == 0:
            control += self.profile.per_batch_control
            report.batches += 1
        self._pending_in_batch += 1
        if self._pending_in_batch >= self.batch_size:
            self._pending_in_batch = 0
        return control

    def _close_batch(self, report: TrafficReport) -> None:
        self._pending_in_batch = 0

    def _payload_bytes(self, data: bytes) -> int:
        if self.profile.compresses:
            return len(zlib.compress(data, 1))
        return len(data)

    def _upload_cost(self, path: str, content: bytes) -> int:
        if self.profile.dedup:
            digest = hash(content)  # stand-in for the provider's block hash
            if digest in self._known_hashes:
                return self.profile.per_object_storage_overhead
            self._known_hashes.add(digest)
        payload = self._payload_bytes(content)
        return (
            int(payload * self.profile.storage_inflation)
            + self.profile.per_object_storage_overhead
        )

    def _update_cost(self, path: str, new_content: bytes) -> "tuple[int, int]":
        """Returns (storage_bytes, extra_control_bytes) for an UPDATE."""
        old_content = self._previous_contents.get(path)
        if not self.profile.delta_updates or old_content is None:
            return self._upload_cost(path, new_content), 0
        signature = compute_signature(old_content, self.DELTA_BLOCK_SIZE)
        delta = compute_delta(signature, new_content)
        # The signature travels server->client on the control path; the
        # delta is the data payload.
        storage = (
            int(delta.wire_size * self.profile.storage_inflation)
            + self.profile.per_object_storage_overhead
        )
        return storage, signature.wire_size
