"""The Indexer (§4.1): change detection → chunking → dedup → proposal.

"Every time a change in any workspace is detected by the OS, the Indexer
component will look up the local database to identify the affected
chunks.  Concretely, the Indexer will call the Chunker, which will
partition the modified file into chunks and calculate the hash values for
each chunk.  Then, the Indexer will compare the hashes of the new chunks
with those in the local database.  If some of the chunks already exist,
only the new ones will be uploaded."
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import List

from repro.client.chunker import Chunk, FixedChunker
from repro.client.compression import Compressor, GzipCompressor
from repro.client.local_db import LocalDatabase
from repro.sync.models import (
    STATUS_CHANGED,
    STATUS_DELETED,
    STATUS_NEW,
    ItemMetadata,
)


@dataclass
class IndexResult:
    """Outcome of indexing one file change."""

    proposal: ItemMetadata
    #: Chunks that must be uploaded (not known to this user's dedup index),
    #: already compressed for transmission.
    uploads: List[tuple] = field(default_factory=list)  # (fingerprint, payload)
    #: Fingerprints that were deduplicated away.
    deduplicated: List[str] = field(default_factory=list)
    #: Raw (uncompressed) size of the uploads, for traffic accounting.
    upload_raw_bytes: int = 0

    @property
    def upload_bytes(self) -> int:
        return sum(len(payload) for _fp, payload in self.uploads)


class Indexer:
    """Turns detected file changes into commit proposals + upload lists."""

    def __init__(
        self,
        local_db: LocalDatabase,
        chunker=None,
        compressor: Compressor = None,
    ):
        self.local_db = local_db
        self.chunker = chunker if chunker is not None else FixedChunker()
        self.compressor = compressor if compressor is not None else GzipCompressor()

    def index_change(
        self,
        workspace_id: str,
        device_id: str,
        path: str,
        content: bytes,
    ) -> IndexResult:
        """Index an added or modified file.

        Deduplication is strictly per-user (§4.1): only this local
        database's fingerprint index decides whether a chunk is uploaded,
        never another user's data.
        """
        item_id = make_item_id(workspace_id, path)
        record = self.local_db.get_by_path(path)
        if record is None:
            version = 1
            status = STATUS_NEW
        else:
            base = record.pending_version or record.version
            version = base + 1
            status = STATUS_CHANGED

        chunks: List[Chunk] = self.chunker.chunk(content)
        uploads: List[tuple] = []
        deduplicated: List[str] = []
        raw = 0
        seen_in_this_file = set()
        for chunk in chunks:
            if chunk.fingerprint in seen_in_this_file or self.local_db.knows_fingerprint(
                chunk.fingerprint
            ):
                deduplicated.append(chunk.fingerprint)
                continue
            seen_in_this_file.add(chunk.fingerprint)
            payload = self.compressor.compress(chunk.data)
            uploads.append((chunk.fingerprint, payload))
            raw += chunk.size

        proposal = ItemMetadata(
            item_id=item_id,
            workspace_id=workspace_id,
            version=version,
            filename=path,
            status=status,
            size=len(content),
            checksum=hashlib.sha1(content).hexdigest(),
            chunks=[c.fingerprint for c in chunks],
            modified_at=time.time(),
            device_id=device_id,
        )
        return IndexResult(
            proposal=proposal,
            uploads=uploads,
            deduplicated=deduplicated,
            upload_raw_bytes=raw,
        )

    def index_delete(
        self, workspace_id: str, device_id: str, path: str
    ) -> IndexResult:
        """Index a removal: a DELETED version with no chunks."""
        record = self.local_db.get_by_path(path)
        item_id = record.item_id if record else make_item_id(workspace_id, path)
        base = 0
        if record is not None:
            base = record.pending_version or record.version
        proposal = ItemMetadata(
            item_id=item_id,
            workspace_id=workspace_id,
            version=base + 1,
            filename=path,
            status=STATUS_DELETED,
            size=0,
            checksum="",
            chunks=[],
            modified_at=time.time(),
            device_id=device_id,
        )
        return IndexResult(proposal=proposal)


def make_item_id(workspace_id: str, path: str) -> str:
    """Stable item identity shared by every device syncing the workspace."""
    return f"{workspace_id}:{path}"
