"""Chunk fingerprinting (§4.1).

"Each chunk is identified by a fingerprint, which by default is the 20
bytes of its SHA1 hash."  The fingerprinter is pluggable so deployments
can move to SHA-256 without touching the chunking or dedup layers.
"""

from __future__ import annotations

import hashlib
from typing import Callable

#: Fingerprint function type: bytes -> hex digest string.
Fingerprinter = Callable[[bytes], str]


def sha1_fingerprint(data: bytes) -> str:
    """The paper's default: 20-byte SHA-1, as lowercase hex."""
    return hashlib.sha1(data).hexdigest()


def sha256_fingerprint(data: bytes) -> str:
    """Stronger alternative fingerprint."""
    return hashlib.sha256(data).hexdigest()


FINGERPRINTERS = {
    "sha1": sha1_fingerprint,
    "sha256": sha256_fingerprint,
}


def make_fingerprinter(name: str) -> Fingerprinter:
    try:
        return FINGERPRINTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown fingerprinter {name!r}; available: {sorted(FINGERPRINTERS)}"
        ) from None
