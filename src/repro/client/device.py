"""Multi-workspace device: the full desktop-client startup flow (§4.2.1).

"Clients can request the list of workspaces they have access to with the
getWorkspaces operation" — a device may sync several workspaces (its own
plus shared ones), each mapped to its own folder.  :class:`StackSyncDevice`
performs the discovery step and manages one
:class:`~repro.client.sync_client.StackSyncClient` per accessible
workspace, sharing the device identity.

Workspaces granted *after* start-up are picked up by :meth:`refresh`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.client.fs import Filesystem, VirtualFilesystem
from repro.client.sync_client import StackSyncClient
from repro.objectmq.broker import Broker
from repro.storage.object_store import SwiftLikeStore
from repro.sync.interface import SYNC_SERVICE_OID, SyncServiceApi
from repro.sync.models import Workspace


class StackSyncDevice:
    """One physical device syncing every workspace its user can access."""

    def __init__(
        self,
        user_id: str,
        device_id: str,
        mom,
        storage: SwiftLikeStore,
        fs_factory: Optional[Callable[[Workspace], Filesystem]] = None,
        client_options: Optional[dict] = None,
        call_context: Optional[dict] = None,
    ):
        """
        Args:
            fs_factory: Builds the local filesystem for each workspace
                (e.g. one real directory per workspace).  Defaults to a
                fresh in-memory filesystem per workspace.
            client_options: Extra keyword arguments forwarded to every
                underlying StackSyncClient (chunker, compressor, ...).
            call_context: ObjectMQ context headers (e.g. ``auth_token``)
                attached to every RPC this device issues — both the
                discovery connection and every workspace client.
        """
        self.user_id = user_id
        self.device_id = device_id
        self.mom = mom
        self.storage = storage
        self.fs_factory = fs_factory or (lambda _ws: VirtualFilesystem())
        self.client_options = dict(client_options or {})
        self.call_context = dict(call_context or {})
        self._lock = threading.Lock()
        self._clients: Dict[str, StackSyncClient] = {}
        # One control connection for discovery; each workspace client has
        # its own broker (its own response queue), as per Fig 5.
        self._broker = Broker(mom, environment={"client_id": f"{device_id}.ctl"})
        self._broker.call_context.update(self.call_context)
        self._proxy = self._broker.lookup(SYNC_SERVICE_OID, SyncServiceApi)
        self.started = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> List[str]:
        """Discover workspaces and start syncing each; returns their ids."""
        self.started = True
        return self.refresh()

    def refresh(self) -> List[str]:
        """Re-run discovery, attaching newly granted workspaces."""
        if not self.started:
            raise RuntimeError("device not started")
        workspaces = self._proxy.get_workspaces(self.user_id)
        added = []
        with self._lock:
            for workspace in workspaces:
                if workspace.workspace_id in self._clients:
                    continue
                client = StackSyncClient(
                    self.user_id,
                    workspace,
                    self.mom,
                    self.storage,
                    device_id=f"{self.device_id}.{workspace.workspace_id}",
                    fs=self.fs_factory(workspace),
                    **self.client_options,
                )
                client.broker.call_context.update(self.call_context)
                client.start()
                self._clients[workspace.workspace_id] = client
                added.append(workspace.workspace_id)
        return sorted(self._clients)

    def stop(self) -> None:
        with self._lock:
            clients = list(self._clients.values())
            self._clients.clear()
        for client in clients:
            client.stop()
        self._broker.close()
        self.started = False

    # -- access --------------------------------------------------------------------

    def workspace_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._clients)

    def client_for(self, workspace_id: str) -> StackSyncClient:
        with self._lock:
            try:
                return self._clients[workspace_id]
            except KeyError:
                raise KeyError(
                    f"device {self.device_id!r} does not sync {workspace_id!r}"
                ) from None

    def fs_for(self, workspace_id: str) -> Filesystem:
        return self.client_for(workspace_id).fs

    def scan_all(self) -> int:
        """Run one watcher scan on every workspace; returns event count."""
        with self._lock:
            clients = list(self._clients.values())
        return sum(len(client.scan()) for client in clients)
