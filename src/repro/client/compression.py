"""Chunk compression (§4.1).

"The chunks are always compressed before transmission using Gzip or
Bzip2, albeit other compression algorithms can be easily plugged into the
system."  Codecs share a two-method protocol and register by name.
"""

from __future__ import annotations

import bz2
import zlib
from typing import Protocol


class Compressor(Protocol):
    name: str

    def compress(self, data: bytes) -> bytes: ...

    def decompress(self, data: bytes) -> bytes: ...


class GzipCompressor:
    """zlib/DEFLATE — the default, favouring speed (level 1-6)."""

    name = "gzip"

    def __init__(self, level: int = 1):
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class Bzip2Compressor:
    """bzip2 — better ratio, markedly slower."""

    name = "bzip2"

    def __init__(self, level: int = 9):
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return bz2.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        return bz2.decompress(data)


class NullCompressor:
    """Identity codec, for ablations isolating compression effects."""

    name = "null"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


COMPRESSORS = {
    "gzip": GzipCompressor,
    "bzip2": Bzip2Compressor,
    "null": NullCompressor,
}


def make_compressor(name: str) -> Compressor:
    try:
        return COMPRESSORS[name]()
    except KeyError:
        raise ValueError(
            f"unknown compressor {name!r}; available: {sorted(COMPRESSORS)}"
        ) from None
