"""The StackSync desktop client (§4.1): the full Watcher→Indexer→commit loop.

A :class:`StackSyncClient` owns:

* a local :class:`~repro.client.fs.Filesystem` (the synced folder),
* a :class:`~repro.client.watcher.PollingWatcher` detecting changes,
* an :class:`~repro.client.indexer.Indexer` (chunker + compressor + per-user
  dedup against the local database),
* a direct connection to the Storage back-end for chunk upload/download
  (data flow), and
* an ObjectMQ proxy to the SyncService plus a bound receiver on the
  workspace fanout for push notifications (control flow).

Control and data flows are fully decoupled, mirroring Fig 4.
"""

from __future__ import annotations

import logging
import os
import threading
import time
import uuid
from typing import Callable, Dict, List, Optional, Tuple

from repro.client.chunker import FixedChunker
from repro.client.compression import Compressor, GzipCompressor
from repro.client.fs import Filesystem, VirtualFilesystem
from repro.client.indexer import Indexer, IndexResult, make_item_id
from repro.client.local_db import LocalDatabase, LocalFileRecord
from repro.client.transfer import (
    DEFAULT_POOL_SIZE,
    ChunkTransferManager,
    TransferRecord,
)
from repro.client.watcher import (
    EVENT_ADD,
    EVENT_REMOVE,
    EVENT_UPDATE,
    FileEvent,
    PollingWatcher,
)
from repro.errors import ObjectNotFound, SyncError
from repro.objectmq.broker import Broker
from repro.storage.object_store import SwiftLikeStore
from repro.telemetry.registry import REGISTRY
from repro.telemetry.trace import TRACER
from repro.sync.interface import (
    SYNC_SERVICE_OID,
    SyncServiceApi,
    workspace_oid,
)
from repro.sync.models import (
    STATUS_DELETED,
    CommitNotification,
    CommitResult,
    ItemMetadata,
    Workspace,
)

logger = logging.getLogger(__name__)


class _WorkspaceReceiver:
    """The remote object bound to the workspace fanout (RemoteWorkspaceApi)."""

    def __init__(self, client: "StackSyncClient"):
        self._client = client

    def notify_commit(self, notification: CommitNotification) -> None:
        self._client._on_notification(notification)


class ClientTrafficStats:
    """Per-client control/storage traffic accounting (thread-safe).

    Inspection happens through the unified metrics registry (the client
    registers :meth:`scrape` as a source labeled by device); per-transfer
    latency distributions live on the manager's ``TransferStats`` and in
    trace spans, so no transfer history is retained here.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.storage_up = 0
        self.storage_down = 0
        self.commits_sent = 0
        self.notifications_received = 0
        self.conflicts = 0
        # Per-transfer metrics fed by the ChunkTransferManager.
        self.chunk_uploads = 0
        self.chunk_downloads = 0
        self.upload_seconds = 0.0
        self.download_seconds = 0.0
        self.transfer_retries = 0
        self.transfers_coalesced = 0

    def add_up(self, nbytes: int) -> None:
        with self._lock:
            self.storage_up += nbytes

    def add_down(self, nbytes: int) -> None:
        with self._lock:
            self.storage_down += nbytes

    def add_commit(self) -> None:
        with self._lock:
            self.commits_sent += 1

    def record_transfer(self, record: TransferRecord) -> None:
        """Account one chunk transfer (called from pool worker threads)."""
        with self._lock:
            if record.coalesced:
                self.transfers_coalesced += 1
                return
            self.transfer_retries += record.attempts - 1
            if record.direction == "up":
                self.chunk_uploads += 1
                self.storage_up += record.nbytes
                self.upload_seconds += record.elapsed
            else:
                self.chunk_downloads += 1
                self.storage_down += record.nbytes
                self.download_seconds += record.elapsed

    def scrape(self) -> Dict[str, float]:
        """Registry-source view (see :mod:`repro.telemetry.registry`)."""
        with self._lock:
            return {
                "storage_up_bytes": self.storage_up,
                "storage_down_bytes": self.storage_down,
                "commits_sent": self.commits_sent,
                "notifications_received": self.notifications_received,
                "conflicts": self.conflicts,
                "chunk_uploads": self.chunk_uploads,
                "chunk_downloads": self.chunk_downloads,
                "upload_seconds": self.upload_seconds,
                "download_seconds": self.download_seconds,
                "transfer_retries": self.transfer_retries,
                "transfers_coalesced": self.transfers_coalesced,
            }


class StackSyncClient:
    """One device syncing one workspace."""

    def __init__(
        self,
        user_id: str,
        workspace: Workspace,
        mom,
        storage: SwiftLikeStore,
        device_id: Optional[str] = None,
        fs: Optional[Filesystem] = None,
        chunker=None,
        compressor: Optional[Compressor] = None,
        codec: str = "pickle",
        sync_oid: str = SYNC_SERVICE_OID,
        shards: int = 1,
        batch_size: int = 1,
        local_db: Optional[LocalDatabase] = None,
        transfer: Optional[ChunkTransferManager] = None,
        transfer_pool_size: int = DEFAULT_POOL_SIZE,
    ):
        self.user_id = user_id
        self.workspace = workspace
        self.device_id = device_id or f"dev-{uuid.uuid4().hex[:8]}"
        self.fs = fs if fs is not None else VirtualFilesystem()
        self.storage = storage
        self.container = f"u-{workspace.owner}"
        # Any object with the LocalDatabase surface works, notably the
        # durable SqliteLocalDatabase (repro.client.persistent_db).
        self.local_db = local_db if local_db is not None else LocalDatabase()
        self.indexer = Indexer(
            self.local_db,
            chunker=chunker or FixedChunker(),
            compressor=compressor or GzipCompressor(),
        )
        self.watcher = PollingWatcher(self.fs, on_event=self._on_watch_event)
        self.broker = Broker(mom, environment={"codec": codec, "client_id": self.device_id})
        # shards > 1 selects the partitioned commit path: every
        # SyncServiceApi method leads with its routing key (workspace or
        # user id), so a ShardedProxy drops in transparently.  The count
        # must match the server deployment; 1 is the paper's layout.
        if shards > 1:
            self.sync_service = self.broker.lookup_sharded(
                sync_oid, SyncServiceApi, shards
            )
        else:
            self.sync_service = self.broker.lookup(sync_oid, SyncServiceApi)
        self.stats = ClientTrafficStats()
        self._metrics_token = REGISTRY.register_source(
            "client_traffic",
            self.stats,
            ClientTrafficStats.scrape,
            device=self.device_id,
        )
        # The chunk data plane: a caller-provided manager is shared (and
        # owned) by the caller; otherwise the client runs its own pool.
        self._owns_transfer = transfer is None
        self.transfer = (
            transfer
            if transfer is not None
            else ChunkTransferManager(pool_size=transfer_pool_size)
        )

        self._lock = threading.RLock()
        self._applied = threading.Condition(self._lock)
        self._applied_versions: Dict[Tuple[str, int], float] = {}
        self._receiver_skeleton = None
        self.on_conflict: Optional[Callable[[str, str], None]] = None
        self.started = False
        # File bundling (Table 2): group this many proposals per
        # commitRequest; 1 reproduces the paper's one-at-a-time setup.
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._pending_proposals: List[ItemMetadata] = []

        if not self.storage.container_exists(self.container):
            self.storage.create_container(self.container)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> List[ItemMetadata]:
        """Startup protocol: getWorkspaces, getChanges, subscribe to pushes.

        Returns the workspace state that was applied locally.
        """
        self.sync_service.register_device(self.user_id, self.device_id)
        workspaces = self.sync_service.get_workspaces(self.user_id)
        if not any(w.workspace_id == self.workspace.workspace_id for w in workspaces):
            raise SyncError(
                f"user {self.user_id!r} has no access to workspace "
                f"{self.workspace.workspace_id!r}"
            )
        state = self.sync_service.get_changes(self.workspace.workspace_id)
        for metadata in state:
            self._apply_remote_change(metadata)
        # Register interest in committed updates only after the initial
        # state is applied, as in the paper's startup sequence.
        self._receiver_skeleton = self.broker.bind(
            workspace_oid(self.workspace.workspace_id), _WorkspaceReceiver(self)
        )
        self.watcher.prime()
        self.started = True
        return state

    def stop(self) -> None:
        self.flush()
        self.watcher.stop()
        if self._receiver_skeleton is not None:
            self.broker.unbind(self._receiver_skeleton)
            self._receiver_skeleton = None
        self.broker.close()
        if self._owns_transfer:
            self.transfer.close()
        REGISTRY.unregister_source(self._metrics_token)
        self.started = False

    # -- user-facing operations ----------------------------------------------------

    def put_file(self, path: str, content: bytes) -> ItemMetadata:
        """Write *path* locally and propagate it (ADD or UPDATE)."""
        with TRACER.span(
            "client.put_file",
            layer="client",
            attrs={"path": path, "nbytes": len(content), "device": self.device_id},
        ):
            self.fs.write(path, content)
            self.watcher.ignore(path)
            return self._index_and_commit(path, content)

    def delete_file(self, path: str) -> ItemMetadata:
        """Delete *path* locally and propagate the removal."""
        with TRACER.span(
            "client.delete_file",
            layer="client",
            attrs={"path": path, "device": self.device_id},
        ):
            self.fs.delete(path)
            self.watcher.ignore(path)
            result = self.indexer.index_delete(
                self.workspace.workspace_id, self.device_id, path
            )
            self._send_commit(result)
            return result.proposal

    def scan(self) -> List[FileEvent]:
        """Run one watcher scan, indexing and committing what it finds."""
        return self.watcher.scan_once()

    # -- sync-time instrumentation ------------------------------------------------------

    def wait_for_version(
        self, item_id: str, version: int, timeout: float = 30.0
    ) -> Optional[float]:
        """Block until (item, version) is applied locally; returns apply time."""
        deadline = time.monotonic() + timeout
        key = (item_id, version)
        with self._applied:
            while key not in self._applied_versions:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._applied.wait(remaining)
            return self._applied_versions[key]

    def applied_at(self, item_id: str, version: int) -> Optional[float]:
        with self._lock:
            return self._applied_versions.get((item_id, version))

    # -- internals: outbound -------------------------------------------------------------

    def _on_watch_event(self, event: FileEvent) -> None:
        if event.kind in (EVENT_ADD, EVENT_UPDATE):
            try:
                content = self.fs.read(event.path)
            except FileNotFoundError:
                return
            self._index_and_commit(event.path, content)
        elif event.kind == EVENT_REMOVE:
            result = self.indexer.index_delete(
                self.workspace.workspace_id, self.device_id, event.path
            )
            self._send_commit(result)

    def _index_and_commit(self, path: str, content: bytes) -> ItemMetadata:
        result = self.indexer.index_change(
            self.workspace.workspace_id, self.device_id, path, content
        )
        self._upload_chunks(result)
        self._send_commit(result)
        return result.proposal

    def _upload_chunks(self, result: IndexResult) -> None:
        """Upload the unique chunks *before* proposing the commit (§4.1).

        Chunks go through the transfer manager's worker pool: parallel
        PUTs with retry, coalesced with any identical in-flight upload.
        """
        if not result.uploads:
            return
        self.transfer.upload_chunks(
            self.storage,
            self.container,
            result.uploads,
            on_uploaded=self.local_db.cache_chunk,
            record=self.stats.record_transfer,
        )

    def _send_commit(self, result: IndexResult) -> None:
        proposal = result.proposal
        record = self.local_db.get_by_path(proposal.filename)
        if record is None:
            record = LocalFileRecord(
                item_id=proposal.item_id,
                path=proposal.filename,
                version=0,
            )
        record.pending_version = proposal.version
        record.chunks = list(proposal.chunks)
        record.checksum = proposal.checksum
        record.size = proposal.size
        self.local_db.upsert(record)
        with self._lock:
            self._pending_proposals.append(proposal)
            ready = len(self._pending_proposals) >= self.batch_size
        if ready:
            self.flush()

    def flush(self) -> None:
        """Send all pending proposals as one bundled commitRequest."""
        with self._lock:
            proposals, self._pending_proposals = self._pending_proposals, []
        if not proposals:
            return
        self.stats.add_commit()
        with TRACER.span(
            "client.flush",
            layer="client",
            attrs={"device": self.device_id, "proposals": len(proposals)},
        ):
            self.sync_service.commit_request(
                self.workspace.workspace_id,
                self.device_id,
                proposals,
                request_id=uuid.uuid4().hex,
            )

    # -- internals: inbound ---------------------------------------------------------------

    def _on_notification(self, notification: CommitNotification) -> None:
        self.stats.notifications_received += 1
        for result in notification.results:
            try:
                self._handle_result(result)
            except Exception:  # noqa: BLE001 - one bad item must not stop the rest
                logger.exception(
                    "%s failed applying %s", self.device_id, result.metadata.item_id
                )

    def _handle_result(self, result: CommitResult) -> None:
        metadata = result.metadata
        ours = metadata.device_id == self.device_id
        if result.confirmed:
            if ours:
                self._confirm_own_commit(metadata)
            else:
                self._apply_remote_change(metadata)
            self._mark_applied(metadata.item_id, metadata.version)
        else:
            if ours:
                self.stats.conflicts += 1
                self._resolve_conflict(result)

    def _confirm_own_commit(self, metadata: ItemMetadata) -> None:
        with self._lock:
            record = self.local_db.get(metadata.item_id)
            if record is None:
                return
            record.version = metadata.version
            if record.pending_version == metadata.version:
                record.pending_version = None
            if metadata.status == STATUS_DELETED:
                self.local_db.remove(metadata.item_id)
            else:
                self.local_db.upsert(record)

    def _apply_remote_change(self, metadata: ItemMetadata) -> None:
        """Materialize a change committed elsewhere onto the local fs."""
        if metadata.status == STATUS_DELETED:
            with self._lock:
                self.fs.delete(metadata.filename)
                self.watcher.ignore(metadata.filename)
                self.local_db.remove(metadata.item_id)
            return
        content = self._fetch_content(metadata)
        with self._lock:
            self.fs.write(metadata.filename, content)
            self.watcher.ignore(metadata.filename)
            self.local_db.upsert(
                LocalFileRecord(
                    item_id=metadata.item_id,
                    path=metadata.filename,
                    version=metadata.version,
                    chunks=list(metadata.chunks),
                    checksum=metadata.checksum,
                    size=metadata.size,
                )
            )

    def _fetch_content(self, metadata: ItemMetadata) -> bytes:
        """Download missing chunks, verify integrity, reassemble the file.

        Every downloaded chunk is re-fingerprinted after decompression;
        a mismatch (bit rot, a corrupted replica, a tampered store) raises
        :class:`~repro.errors.SyncError` instead of silently writing bad
        data into the user's workspace.
        """
        with TRACER.span(
            "client.fetch_content",
            layer="client",
            attrs={
                "device": self.device_id,
                "path": metadata.filename,
                "chunks": len(metadata.chunks),
            },
        ):
            return self._fetch_content_inner(metadata)

    def _fetch_content_inner(self, metadata: ItemMetadata) -> bytes:
        fingerprinter = self.indexer.chunker.fingerprinter

        def decode(fingerprint: str, payload: bytes) -> bytes:
            plain = self.indexer.compressor.decompress(payload)
            if fingerprinter(plain) != fingerprint:
                raise SyncError(
                    f"integrity check failed for chunk {fingerprint} of "
                    f"{metadata.filename!r}"
                )
            return plain

        # Parallel fetch with ordered reassembly: results come back in
        # metadata.chunks order no matter which worker finishes first, and
        # a chunk is cached (and charged) only after decode accepted it.
        pieces = self.transfer.fetch_chunks(
            self.storage,
            self.container,
            metadata.chunks,
            lookup=self.local_db.cached_chunk,
            decode=decode,
            on_fetched=self.local_db.cache_chunk,
            record=self.stats.record_transfer,
        )
        return b"".join(pieces)

    def _resolve_conflict(self, result: CommitResult) -> None:
        """Dropbox-style resolution (§4.2.1): keep a conflicted copy.

        The losing local content is renamed to a conflicted copy (and
        proposed as a brand-new item), then the winning server version is
        materialized under the original name.
        """
        metadata = result.metadata
        path = metadata.filename
        conflicted_path = conflicted_copy_name(path, self.device_id)
        try:
            local_content = self.fs.read(path)
        except FileNotFoundError:
            local_content = None

        if result.current is not None:
            self._apply_remote_change(result.current)
        if self.on_conflict is not None:
            self.on_conflict(path, conflicted_path)
        if local_content is not None and metadata.status != STATUS_DELETED:
            self.put_file(conflicted_path, local_content)

    def _mark_applied(self, item_id: str, version: int) -> None:
        with self._applied:
            self._applied_versions[(item_id, version)] = time.time()
            self._applied.notify_all()


def conflicted_copy_name(path: str, device_id: str) -> str:
    """'report.txt' -> 'report (conflicted copy dev-x).txt'."""
    stem, ext = os.path.splitext(path)
    return f"{stem} (conflicted copy {device_id}){ext}"
