"""File chunking (§4.1): fixed-size and content-defined strategies.

StackSync "does not use the notion of file, but rather operates on a
lower level by splitting files into chunks of 512 KB".  The Chunker
supports both strategies of the paper:

* :class:`FixedChunker` — the default static chunking.  Cheap, but it
  suffers from the *boundary-shifting problem*: inserting bytes at the
  beginning of a file shifts every later boundary, so every chunk
  changes — this is exactly why the paper's UPDATE traffic and sync time
  are skewed (Fig 7c-e).
* :class:`ContentDefinedChunker` — buzhash (cyclic-polynomial) rolling
  hash with min/target/max sizes.  Boundaries follow content, so a
  prepend only rewrites the first chunk(s).  Slower; included because the
  paper keeps it as a pluggable alternative and we ablate the trade-off.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List

from repro.client.fingerprint import Fingerprinter, sha1_fingerprint

#: The paper's default chunk size.
DEFAULT_CHUNK_SIZE = 512 * 1024


@dataclass(frozen=True)
class Chunk:
    """One chunk of a file: payload, position, and its fingerprint."""

    data: bytes
    offset: int
    fingerprint: str

    @property
    def size(self) -> int:
        return len(self.data)


class FixedChunker:
    """Static chunking into fixed-size blocks (default 512 KB)."""

    name = "fixed"

    def __init__(
        self,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        fingerprinter: Fingerprinter = sha1_fingerprint,
    ):
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.fingerprinter = fingerprinter

    def chunk(self, data: bytes) -> List[Chunk]:
        chunks = []
        for offset in range(0, len(data), self.chunk_size):
            payload = data[offset : offset + self.chunk_size]
            chunks.append(
                Chunk(data=payload, offset=offset, fingerprint=self.fingerprinter(payload))
            )
        if not chunks:
            # An empty file is a single empty chunk, so it still has a
            # fingerprint and can round-trip through storage.
            chunks.append(Chunk(data=b"", offset=0, fingerprint=self.fingerprinter(b"")))
        return chunks


def _buzhash_table(seed: int = 0x5AC5) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(256)]


_BUZ_TABLE = _buzhash_table()
_MASK64 = (1 << 64) - 1


def _rotl(value: int, amount: int) -> int:
    amount %= 64
    return ((value << amount) | (value >> (64 - amount))) & _MASK64


class ContentDefinedChunker:
    """Buzhash-based content-defined chunking.

    A 64-bit cyclic-polynomial rolling hash is computed over a sliding
    window; a chunk boundary is declared whenever ``hash & mask == magic``
    (expected chunk length = ``target``), subject to ``minimum`` and
    ``maximum`` bounds.  Deterministic across runs and processes.
    """

    name = "cdc"

    def __init__(
        self,
        minimum: int = 128 * 1024,
        target: int = 512 * 1024,
        maximum: int = 1024 * 1024,
        window: int = 48,
        fingerprinter: Fingerprinter = sha1_fingerprint,
    ):
        if not 0 < minimum <= target <= maximum:
            raise ValueError("need 0 < minimum <= target <= maximum")
        self.minimum = minimum
        self.target = target
        self.maximum = maximum
        self.window = window
        self.fingerprinter = fingerprinter
        # mask with log2(target) low bits set: boundary prob 1/target
        self._mask = (1 << max(1, target.bit_length() - 1)) - 1
        self._magic = 0x78 & self._mask

    def chunk(self, data: bytes) -> List[Chunk]:
        if not data:
            return [Chunk(data=b"", offset=0, fingerprint=self.fingerprinter(b""))]
        boundaries = self._find_boundaries(data)
        chunks = []
        start = 0
        for end in boundaries:
            payload = data[start:end]
            chunks.append(
                Chunk(data=payload, offset=start, fingerprint=self.fingerprinter(payload))
            )
            start = end
        return chunks

    def _find_boundaries(self, data: bytes) -> List[int]:
        boundaries: List[int] = []
        length = len(data)
        start = 0
        while start < length:
            end = min(start + self.maximum, length)
            cut = end
            pos = start + self.minimum
            if pos < end:
                digest = 0
                window_start = max(start, pos - self.window)
                for byte in data[window_start:pos]:
                    digest = (_rotl(digest, 1) ^ _BUZ_TABLE[byte]) & _MASK64
                while pos < end:
                    entering = data[pos]
                    digest = (_rotl(digest, 1) ^ _BUZ_TABLE[entering]) & _MASK64
                    leaving_index = pos - self.window
                    if leaving_index >= start:
                        digest ^= _rotl(
                            _BUZ_TABLE[data[leaving_index]], self.window
                        )
                    pos += 1
                    if (digest & self._mask) == self._magic:
                        cut = pos
                        break
            boundaries.append(cut)
            start = cut
        return boundaries


ChunkerFactory = Callable[[], object]

CHUNKERS = {
    "fixed": FixedChunker,
    "cdc": ContentDefinedChunker,
}


def make_chunker(name: str, **kwargs):
    try:
        return CHUNKERS[name](**kwargs)
    except KeyError:
        raise ValueError(
            f"unknown chunker {name!r}; available: {sorted(CHUNKERS)}"
        ) from None
