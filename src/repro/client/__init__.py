"""StackSync desktop client (§4.1): watcher, indexer, chunker, local DB."""

from repro.client.chunker import (
    Chunk,
    ContentDefinedChunker,
    DEFAULT_CHUNK_SIZE,
    FixedChunker,
    make_chunker,
)
from repro.client.compression import (
    Bzip2Compressor,
    COMPRESSORS,
    Compressor,
    GzipCompressor,
    NullCompressor,
    make_compressor,
)
from repro.client.fingerprint import (
    FINGERPRINTERS,
    make_fingerprinter,
    sha1_fingerprint,
    sha256_fingerprint,
)
from repro.client.device import StackSyncDevice
from repro.client.fs import DirectoryFilesystem, Filesystem, VirtualFilesystem
from repro.client.indexer import Indexer, IndexResult, make_item_id
from repro.client.local_db import LocalDatabase, LocalFileRecord
from repro.client.sync_client import (
    ClientTrafficStats,
    StackSyncClient,
    conflicted_copy_name,
)
from repro.client.persistent_db import SqliteLocalDatabase
from repro.client.transfer import (
    ChunkTransferManager,
    DEFAULT_POOL_SIZE,
    TransferRecord,
    TransferStats,
)
from repro.client.watcher import (
    DEFAULT_EXCLUDES,
    EVENT_ADD,
    EVENT_REMOVE,
    EVENT_UPDATE,
    FileEvent,
    PollingWatcher,
)

__all__ = [
    "COMPRESSORS",
    "DEFAULT_EXCLUDES",
    "DEFAULT_CHUNK_SIZE",
    "EVENT_ADD",
    "EVENT_REMOVE",
    "EVENT_UPDATE",
    "FINGERPRINTERS",
    "Bzip2Compressor",
    "Chunk",
    "ChunkTransferManager",
    "ClientTrafficStats",
    "DEFAULT_POOL_SIZE",
    "Compressor",
    "ContentDefinedChunker",
    "DirectoryFilesystem",
    "FileEvent",
    "Filesystem",
    "FixedChunker",
    "GzipCompressor",
    "Indexer",
    "IndexResult",
    "LocalDatabase",
    "LocalFileRecord",
    "NullCompressor",
    "PollingWatcher",
    "SqliteLocalDatabase",
    "StackSyncClient",
    "StackSyncDevice",
    "TransferRecord",
    "TransferStats",
    "VirtualFilesystem",
    "conflicted_copy_name",
    "make_chunker",
    "make_compressor",
    "make_fingerprinter",
    "make_item_id",
    "sha1_fingerprint",
    "sha256_fingerprint",
]
