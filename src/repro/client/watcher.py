"""The Watcher (§4.1): detects workspace changes on the local filesystem.

A polling watcher that snapshots (size, mtime) per path and diffs
successive scans into ADD / UPDATE / REMOVE events.  ``scan_once`` makes
detection deterministic for tests and benches; ``start`` runs the same
scan on a background thread for the interactive examples.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.client.fs import Filesystem

#: Patterns real sync clients never upload: editor droppings, OS noise.
DEFAULT_EXCLUDES = (
    "*.tmp",
    "*.swp",
    "*~",
    ".DS_Store",
    "Thumbs.db",
    ".stacksync/*",
)

EVENT_ADD = "ADD"
EVENT_UPDATE = "UPDATE"
EVENT_REMOVE = "REMOVE"


@dataclass(frozen=True)
class FileEvent:
    """One detected workspace change."""

    kind: str
    path: str
    detected_at: float


class PollingWatcher:
    """Diff-based change detection over any :class:`Filesystem`."""

    def __init__(
        self,
        fs: Filesystem,
        on_event: Optional[Callable[[FileEvent], None]] = None,
        interval: float = 0.5,
        excludes: Iterable[str] = DEFAULT_EXCLUDES,
    ):
        self.fs = fs
        self.on_event = on_event
        self.interval = interval
        self.excludes: Tuple[str, ...] = tuple(excludes)
        self._snapshot: Dict[str, Tuple[int, float]] = {}
        # path -> (size, mtime) expected at next scan, or None for "absent".
        self._ignored: Dict[str, Optional[Tuple[int, float]]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def ignore(self, path: str) -> None:
        """Suppress the echo of a self-inflicted change to *path*.

        Call *after* mutating the filesystem: the watcher snapshots the
        path's current state and suppresses the next event **only if the
        file still looks exactly like this snapshot** at scan time.  A
        user edit racing in before the next scan changes the stat, so it
        is correctly reported instead of being swallowed.
        """
        with self._lock:
            try:
                expected: Optional[Tuple[int, float]] = self.fs.stat(path)
            except FileNotFoundError:
                expected = None
            self._ignored[path] = expected

    def prime(self) -> None:
        """Take the initial snapshot without emitting events."""
        with self._lock:
            self._snapshot = self._take_snapshot()

    def scan_once(self) -> List[FileEvent]:
        """Diff the filesystem against the last snapshot; emit events."""
        now = time.time()
        events: List[FileEvent] = []
        with self._lock:
            current = self._take_snapshot()
            previous = self._snapshot
            self._snapshot = current
            for path, stat in current.items():
                if path not in previous:
                    events.append(FileEvent(EVENT_ADD, path, now))
                elif previous[path] != stat:
                    events.append(FileEvent(EVENT_UPDATE, path, now))
            for path in previous:
                if path not in current:
                    events.append(FileEvent(EVENT_REMOVE, path, now))
            kept = []
            for event in events:
                if event.path in self._ignored:
                    expected = self._ignored.pop(event.path)
                    if current.get(event.path) == expected:
                        continue  # the echo of our own write/delete
                kept.append(event)
        if self.on_event is not None:
            for event in kept:
                self.on_event(event)
        return kept

    def is_excluded(self, path: str) -> bool:
        """True when *path* matches an exclusion pattern (never synced)."""
        name = path.rsplit("/", 1)[-1]
        return any(
            fnmatch.fnmatch(path, pattern) or fnmatch.fnmatch(name, pattern)
            for pattern in self.excludes
        )

    def _take_snapshot(self) -> Dict[str, Tuple[int, float]]:
        snapshot = {}
        for path in self.fs.list_paths():
            if self.is_excluded(path):
                continue
            try:
                snapshot[path] = self.fs.stat(path)
            except FileNotFoundError:
                continue
        return snapshot

    # -- background operation -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self.prime()
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.scan_once()
                except Exception:  # pragma: no cover - defensive
                    pass

        self._thread = threading.Thread(target=run, name="watcher", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
