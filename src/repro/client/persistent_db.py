"""SQLite-backed client local database (§4.1).

The paper's desktop client keeps its local database on disk so a restart
resumes synchronization without a full re-scan.  This engine implements
the exact :class:`~repro.client.local_db.LocalDatabase` surface over
``sqlite3``: file records, the per-user dedup index, and the chunk cache
all survive process restarts.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import List, Optional, Set

from repro.client.local_db import LocalFileRecord

_SCHEMA = """
CREATE TABLE IF NOT EXISTS files (
    item_id TEXT PRIMARY KEY,
    path TEXT NOT NULL,
    version INTEGER NOT NULL,
    chunks TEXT NOT NULL,
    checksum TEXT NOT NULL,
    size INTEGER NOT NULL,
    pending_version INTEGER
);
CREATE INDEX IF NOT EXISTS idx_files_path ON files(path);
CREATE TABLE IF NOT EXISTS fingerprints (
    fingerprint TEXT PRIMARY KEY
);
CREATE TABLE IF NOT EXISTS chunk_cache (
    fingerprint TEXT PRIMARY KEY,
    payload BLOB NOT NULL
);
"""


class SqliteLocalDatabase:
    """Durable drop-in replacement for the in-memory LocalDatabase."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.isolation_level = None
        with self._lock:
            self._conn.executescript(_SCHEMA)

    # -- file records -----------------------------------------------------------

    def get(self, item_id: str) -> Optional[LocalFileRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM files WHERE item_id = ?", (item_id,)
            ).fetchone()
        return self._row_to_record(row) if row else None

    def get_by_path(self, path: str) -> Optional[LocalFileRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM files WHERE path = ? ORDER BY rowid DESC LIMIT 1",
                (path,),
            ).fetchone()
        return self._row_to_record(row) if row else None

    def upsert(self, record: LocalFileRecord) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT INTO files(item_id, path, version, chunks, checksum,"
                " size, pending_version) VALUES (?, ?, ?, ?, ?, ?, ?)"
                " ON CONFLICT(item_id) DO UPDATE SET path=excluded.path,"
                " version=excluded.version, chunks=excluded.chunks,"
                " checksum=excluded.checksum, size=excluded.size,"
                " pending_version=excluded.pending_version",
                (
                    record.item_id,
                    record.path,
                    record.version,
                    json.dumps(record.chunks),
                    record.checksum,
                    record.size,
                    record.pending_version,
                ),
            )

    def remove(self, item_id: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM files WHERE item_id = ?", (item_id,))

    def list_records(self) -> List[LocalFileRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM files ORDER BY item_id"
            ).fetchall()
        return [self._row_to_record(r) for r in rows]

    # -- dedup index ----------------------------------------------------------------

    def knows_fingerprint(self, fingerprint: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM fingerprints WHERE fingerprint = ?", (fingerprint,)
            ).fetchone()
        return row is not None

    def remember_fingerprints(self, fingerprints) -> None:
        with self._lock:
            self._conn.executemany(
                "INSERT OR IGNORE INTO fingerprints(fingerprint) VALUES (?)",
                ((fp,) for fp in fingerprints),
            )

    def fingerprint_count(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM fingerprints"
            ).fetchone()[0]

    # -- chunk cache ------------------------------------------------------------------

    def cache_chunk(self, fingerprint: str, payload: bytes) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO chunk_cache(fingerprint, payload)"
                " VALUES (?, ?)",
                (fingerprint, payload),
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO fingerprints(fingerprint) VALUES (?)",
                (fingerprint,),
            )

    def cached_chunk(self, fingerprint: str) -> Optional[bytes]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM chunk_cache WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
        return bytes(row[0]) if row else None

    def evict_chunks(self, keep: Set[str]) -> int:
        with self._lock:
            rows = self._conn.execute(
                "SELECT fingerprint FROM chunk_cache"
            ).fetchall()
            victims = [r[0] for r in rows if r[0] not in keep]
            self._conn.executemany(
                "DELETE FROM chunk_cache WHERE fingerprint = ?",
                ((fp,) for fp in victims),
            )
            return len(victims)

    def cache_size_bytes(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM chunk_cache"
            ).fetchone()
        return row[0]

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _row_to_record(row) -> LocalFileRecord:
        return LocalFileRecord(
            item_id=row[0],
            path=row[1],
            version=row[2],
            chunks=json.loads(row[3]),
            checksum=row[4],
            size=row[5],
            pending_version=row[6],
        )
