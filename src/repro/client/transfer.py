"""Bounded-concurrency chunk transfer manager — the parallel data plane.

The paper's sync-time results (Fig 7e/f) are dominated by per-chunk
round-trips to the Storage back-end.  The serial client paid one full
latency floor per chunk; chunk transfers are independent, so a 10 MB ADD
(~20 chunks) can overlap nearly all of them.  :class:`ChunkTransferManager`
is the client-side data plane that makes this happen:

* a **shared worker pool** (one manager can serve many clients/devices)
  with a configurable ``pool_size`` — size 1 reproduces the serial client;
* **per-transfer retry** with exponential backoff on transient
  :class:`~repro.errors.StorageError` (a missing object is permanent and
  is never retried);
* **in-flight deduplication**: two concurrent transfers of the same
  (container, fingerprint) coalesce onto one storage operation — two files
  sharing a chunk upload it once, a file repeating a chunk downloads it
  once;
* **ordered reassembly**: :meth:`fetch_chunks` returns results in input
  order regardless of completion order, so file reconstruction and the
  integrity check are unchanged;
* **per-transfer metrics** (:class:`TransferRecord`) fed back to the
  caller's :class:`~repro.client.sync_client.ClientTrafficStats`.

Parallelism changes *when* bytes move, never *what* moves: traffic
counters under the manager are byte-identical to the serial client's
(asserted by ``benchmarks/test_ablation_parallel_transfer.py``).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObjectNotFound, StorageError
from repro.telemetry.registry import REGISTRY
from repro.telemetry.trace import TRACER, TraceContext

#: Default worker-pool width; 1 degenerates to the serial data plane.
DEFAULT_POOL_SIZE = 4
#: Total attempts per transfer (1 initial + retries on transient errors).
DEFAULT_MAX_ATTEMPTS = 3
#: First backoff sleep; doubles per retry up to :data:`DEFAULT_BACKOFF_CAP`.
DEFAULT_BACKOFF = 0.02
DEFAULT_BACKOFF_CAP = 1.0

UP = "up"
DOWN = "down"


@dataclass(frozen=True)
class TransferRecord:
    """Outcome of one chunk transfer through the manager."""

    fingerprint: str
    direction: str  # UP or DOWN
    nbytes: int
    elapsed: float
    attempts: int = 1
    #: True when this request coalesced onto an identical in-flight
    #: transfer (or a cache hit for downloads) and moved no bytes itself.
    coalesced: bool = False


class TransferStats:
    """Aggregate counters across everything a manager moved (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.chunks_up = 0
        self.chunks_down = 0
        self.bytes_up = 0
        self.bytes_down = 0
        self.seconds_up = 0.0
        self.seconds_down = 0.0
        self.retries = 0
        self.coalesced = 0

    def record(self, record: TransferRecord) -> None:
        with self._lock:
            if record.coalesced:
                self.coalesced += 1
                return
            self.retries += record.attempts - 1
            if record.direction == UP:
                self.chunks_up += 1
                self.bytes_up += record.nbytes
                self.seconds_up += record.elapsed
            else:
                self.chunks_down += 1
                self.bytes_down += record.nbytes
                self.seconds_down += record.elapsed

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "chunks_up": self.chunks_up,
                "chunks_down": self.chunks_down,
                "bytes_up": self.bytes_up,
                "bytes_down": self.bytes_down,
                "seconds_up": self.seconds_up,
                "seconds_down": self.seconds_down,
                "retries": self.retries,
                "coalesced": self.coalesced,
            }


#: Distinguishes the registry series of coexisting managers.
_POOL_SEQ = itertools.count(1)


class ChunkTransferManager:
    """Shared bounded worker pool for chunk uploads and downloads."""

    def __init__(
        self,
        pool_size: int = DEFAULT_POOL_SIZE,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff: float = DEFAULT_BACKOFF,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.pool_size = pool_size
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self.stats = TransferStats()
        self._metrics_token = REGISTRY.register_source(
            "transfer_pool",
            self.stats,
            TransferStats.snapshot,
            pool=f"ctm-{next(_POOL_SEQ)}",
            size=pool_size,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="chunk-transfer"
        )
        self._lock = threading.Lock()
        # (direction, store id, container, fingerprint) -> in-flight future.
        self._in_flight: Dict[Tuple[str, int, str, str], Future] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=True)
        REGISTRY.unregister_source(self._metrics_token)

    def __enter__(self) -> "ChunkTransferManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public API ---------------------------------------------------------------

    def upload_chunks(
        self,
        store,
        container: str,
        items: Sequence[Tuple[str, bytes]],
        on_uploaded: Optional[Callable[[str, bytes], None]] = None,
        record: Optional[Callable[[TransferRecord], None]] = None,
    ) -> List[TransferRecord]:
        """PUT every (fingerprint, payload) in parallel; block until done.

        ``on_uploaded(fingerprint, payload)`` fires once per chunk that was
        actually stored (coalesced duplicates skip it).  Raises the first
        failure after all transfers settle.
        """
        # Captured on the caller's thread so pool workers join its trace.
        parent = TRACER.current() if TRACER.enabled else None
        jobs = [
            self._submit(
                (UP, id(store), container, fingerprint),
                lambda fp=fingerprint, data=payload: self._upload_one(
                    store, container, fp, data, on_uploaded, parent
                ),
            )
            for fingerprint, payload in items
        ]
        outcomes = self._settle(jobs)
        return self._collect(outcomes, record)

    def fetch_chunks(
        self,
        store,
        container: str,
        fingerprints: Sequence[str],
        lookup: Optional[Callable[[str], Optional[bytes]]] = None,
        decode: Optional[Callable[[str, bytes], bytes]] = None,
        on_fetched: Optional[Callable[[str, bytes], None]] = None,
        record: Optional[Callable[[TransferRecord], None]] = None,
    ) -> List[bytes]:
        """GET (or serve from ``lookup``) every fingerprint, in input order.

        ``decode(fingerprint, payload)`` runs on the worker (decompression
        plus the integrity check) and its result is what the caller gets;
        ``on_fetched(fingerprint, payload)`` fires only for chunks actually
        downloaded, *after* decode accepted them — exactly the serial
        client's verify-then-cache order.
        """
        parent = TRACER.current() if TRACER.enabled else None
        jobs = [
            self._submit(
                (DOWN, id(store), container, fingerprint),
                lambda fp=fingerprint: self._fetch_one(
                    store, container, fp, lookup, decode, on_fetched, parent
                ),
            )
            for fingerprint in fingerprints
        ]
        outcomes = self._settle(jobs)
        self._collect(outcomes, record)
        return [plain for _rec, plain in outcomes]

    # -- workers ------------------------------------------------------------------

    def _upload_one(
        self,
        store,
        container: str,
        fingerprint: str,
        payload: bytes,
        on_uploaded: Optional[Callable[[str, bytes], None]],
        parent: Optional[TraceContext] = None,
    ) -> Tuple[TransferRecord, None]:
        started = time.perf_counter()
        with TRACER.span(
            "storage.put_chunk",
            layer="storage",
            parent=parent,
            attrs={"fingerprint": fingerprint, "nbytes": len(payload)},
        ) as span:
            attempts = self._with_retry(
                lambda: store.put_object(container, fingerprint, payload)
            )
            if span is not None:
                span.set_attr("attempts", attempts)
        if on_uploaded is not None:
            on_uploaded(fingerprint, payload)
        rec = TransferRecord(
            fingerprint=fingerprint,
            direction=UP,
            nbytes=len(payload),
            elapsed=time.perf_counter() - started,
            attempts=attempts,
        )
        return rec, None

    def _fetch_one(
        self,
        store,
        container: str,
        fingerprint: str,
        lookup: Optional[Callable[[str], Optional[bytes]]],
        decode: Optional[Callable[[str, bytes], bytes]],
        on_fetched: Optional[Callable[[str, bytes], None]],
        parent: Optional[TraceContext] = None,
    ) -> Tuple[TransferRecord, bytes]:
        started = time.perf_counter()
        payload = lookup(fingerprint) if lookup is not None else None
        cached = payload is not None
        attempts = 1
        if payload is None:
            box: List[bytes] = []

            def fetch() -> None:
                box.append(store.get_object(container, fingerprint))

            # Only genuine downloads get a storage span; cache hits never
            # touch the back-end.
            with TRACER.span(
                "storage.get_chunk",
                layer="storage",
                parent=parent,
                attrs={"fingerprint": fingerprint},
            ) as span:
                attempts = self._with_retry(fetch)
                payload = box[-1]
                if span is not None:
                    span.set_attr("nbytes", len(payload))
                    span.set_attr("attempts", attempts)
        plain = decode(fingerprint, payload) if decode is not None else payload
        if not cached and on_fetched is not None:
            on_fetched(fingerprint, payload)
        rec = TransferRecord(
            fingerprint=fingerprint,
            direction=DOWN,
            nbytes=len(payload),
            elapsed=time.perf_counter() - started,
            attempts=attempts,
            coalesced=cached,
        )
        return rec, plain

    def _with_retry(self, op: Callable[[], None]) -> int:
        """Run *op*, retrying transient StorageErrors; returns attempt count."""
        for attempt in range(1, self.max_attempts + 1):
            try:
                op()
                return attempt
            except ObjectNotFound:
                raise  # permanent: the object does not exist anywhere
            except StorageError:
                if attempt == self.max_attempts:
                    raise
                delay = min(self.backoff * (2 ** (attempt - 1)), self.backoff_cap)
                if delay > 0:
                    self._sleep(delay)
        raise AssertionError("unreachable")

    # -- pool + coalescing machinery ----------------------------------------------

    def _submit(
        self, key: Tuple[str, int, str, str], fn: Callable[[], Tuple]
    ) -> Tuple[Future, bool]:
        """Submit *fn* under *key*, coalescing onto an identical in-flight job.

        Returns ``(future, owner)`` — ``owner`` is False for coalesced
        followers, whose TransferRecord must not charge bytes again.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("transfer manager is closed")
            existing = self._in_flight.get(key)
            if existing is not None:
                return existing, False
            future: Future = Future()
            self._in_flight[key] = future
            self._executor.submit(self._run_job, key, fn, future)
            return future, True

    def _run_job(self, key, fn: Callable[[], Tuple], future: Future) -> None:
        try:
            result = fn()
        except BaseException as exc:  # noqa: BLE001 - relayed to every waiter
            with self._lock:
                self._in_flight.pop(key, None)
            future.set_exception(exc)
        else:
            # Unregister only after side effects (caching) ran, so a chunk
            # requested again immediately hits the caller's cache lookup.
            with self._lock:
                self._in_flight.pop(key, None)
            future.set_result(result)

    def _settle(self, jobs: Sequence[Tuple[Future, bool]]) -> List[Tuple]:
        """Wait for every job; re-raise the first failure after all settle."""
        outcomes: List[Tuple] = []
        first_error: Optional[BaseException] = None
        for future, owner in jobs:
            try:
                rec, value = future.result()
            except BaseException as exc:  # noqa: BLE001 - deferred re-raise
                if first_error is None:
                    first_error = exc
                continue
            if not owner:
                rec = TransferRecord(
                    fingerprint=rec.fingerprint,
                    direction=rec.direction,
                    nbytes=rec.nbytes,
                    elapsed=rec.elapsed,
                    attempts=rec.attempts,
                    coalesced=True,
                )
            outcomes.append((rec, value))
        if first_error is not None:
            raise first_error
        return outcomes

    def _collect(
        self,
        outcomes: Sequence[Tuple],
        record: Optional[Callable[[TransferRecord], None]],
    ) -> List[TransferRecord]:
        records = [rec for rec, _value in outcomes]
        for rec in records:
            self.stats.record(rec)
            if record is not None:
                record(rec)
        return records
