"""Filesystem abstractions the desktop client synchronizes.

Two interchangeable implementations:

* :class:`VirtualFilesystem` — an in-memory path→bytes map used by the
  benchmarks and simulations (deterministic, no disk I/O);
* :class:`DirectoryFilesystem` — a real directory on disk, used by the
  runnable examples so a user can watch actual folders converge.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional, Protocol, Tuple


class Filesystem(Protocol):
    """Minimal surface the Watcher/Indexer need."""

    def write(self, path: str, data: bytes) -> None: ...

    def read(self, path: str) -> bytes: ...

    def delete(self, path: str) -> None: ...

    def exists(self, path: str) -> bool: ...

    def list_paths(self) -> List[str]: ...

    def stat(self, path: str) -> Tuple[int, float]:
        """Return (size, mtime)."""
        ...


class VirtualFilesystem:
    """In-memory filesystem with mtimes, safe for concurrent use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._files: Dict[str, bytes] = {}
        self._mtimes: Dict[str, float] = {}

    def write(self, path: str, data: bytes) -> None:
        with self._lock:
            self._files[path] = bytes(data)
            self._mtimes[path] = time.time()

    def read(self, path: str) -> bytes:
        with self._lock:
            try:
                return self._files[path]
            except KeyError:
                raise FileNotFoundError(path) from None

    def delete(self, path: str) -> None:
        with self._lock:
            self._files.pop(path, None)
            self._mtimes.pop(path, None)

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._files

    def list_paths(self) -> List[str]:
        with self._lock:
            return sorted(self._files)

    def stat(self, path: str) -> Tuple[int, float]:
        with self._lock:
            try:
                return len(self._files[path]), self._mtimes[path]
            except KeyError:
                raise FileNotFoundError(path) from None

    def total_bytes(self) -> int:
        with self._lock:
            return sum(len(d) for d in self._files.values())


class DirectoryFilesystem:
    """A real directory; paths are relative, nested dirs created on demand."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _full(self, path: str) -> str:
        full = os.path.normpath(os.path.join(self.root, path))
        if not full.startswith(self.root):
            raise ValueError(f"path {path!r} escapes the workspace root")
        return full

    def write(self, path: str, data: bytes) -> None:
        full = self._full(path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "wb") as fh:
            fh.write(data)

    def read(self, path: str) -> bytes:
        with open(self._full(path), "rb") as fh:
            return fh.read()

    def delete(self, path: str) -> None:
        full = self._full(path)
        if os.path.exists(full):
            os.remove(full)

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._full(path))

    def list_paths(self) -> List[str]:
        paths = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                full = os.path.join(dirpath, name)
                paths.append(os.path.relpath(full, self.root))
        return sorted(paths)

    def stat(self, path: str) -> Tuple[int, float]:
        st = os.stat(self._full(path))
        return st.st_size, st.st_mtime
