"""The client's local database (§4.1).

"Every desktop client has a local database ... The local database maps the
fingerprints to the corresponding files."  It holds, per synced item, the
last server-acknowledged version and its chunk list, plus the per-user
deduplication index (every fingerprint this user has ever stored) and a
chunk cache with the payloads needed to reconstruct remote changes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class LocalFileRecord:
    """What the client knows about one synced item."""

    item_id: str
    path: str
    version: int
    chunks: List[str] = field(default_factory=list)
    checksum: str = ""
    size: int = 0
    #: Version currently proposed to the server but not yet confirmed.
    pending_version: Optional[int] = None


class LocalDatabase:
    """Thread-safe client-side metadata + dedup index + chunk cache."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._files: Dict[str, LocalFileRecord] = {}  # item_id -> record
        self._by_path: Dict[str, str] = {}  # path -> item_id
        self._fingerprints: Set[str] = set()  # per-user dedup index
        self._chunk_cache: Dict[str, bytes] = {}  # fingerprint -> compressed payload

    # -- file records -----------------------------------------------------------

    def get(self, item_id: str) -> Optional[LocalFileRecord]:
        with self._lock:
            return self._files.get(item_id)

    def get_by_path(self, path: str) -> Optional[LocalFileRecord]:
        with self._lock:
            item_id = self._by_path.get(path)
            return self._files.get(item_id) if item_id else None

    def upsert(self, record: LocalFileRecord) -> None:
        with self._lock:
            self._files[record.item_id] = record
            self._by_path[record.path] = record.item_id

    def remove(self, item_id: str) -> None:
        with self._lock:
            record = self._files.pop(item_id, None)
            if record is not None and self._by_path.get(record.path) == item_id:
                del self._by_path[record.path]

    def list_records(self) -> List[LocalFileRecord]:
        with self._lock:
            return sorted(self._files.values(), key=lambda r: r.item_id)

    # -- dedup index ----------------------------------------------------------------

    def knows_fingerprint(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._fingerprints

    def remember_fingerprints(self, fingerprints) -> None:
        with self._lock:
            self._fingerprints.update(fingerprints)

    def fingerprint_count(self) -> int:
        with self._lock:
            return len(self._fingerprints)

    # -- chunk cache ------------------------------------------------------------------

    def cache_chunk(self, fingerprint: str, payload: bytes) -> None:
        with self._lock:
            self._chunk_cache[fingerprint] = payload
            self._fingerprints.add(fingerprint)

    def cached_chunk(self, fingerprint: str) -> Optional[bytes]:
        with self._lock:
            return self._chunk_cache.get(fingerprint)

    def evict_chunks(self, keep: Set[str]) -> int:
        """Drop cached payloads not in *keep*; returns number evicted."""
        with self._lock:
            victims = [fp for fp in self._chunk_cache if fp not in keep]
            for fp in victims:
                del self._chunk_cache[fp]
            return len(victims)

    def cache_size_bytes(self) -> int:
        with self._lock:
            return sum(len(p) for p in self._chunk_cache.values())
