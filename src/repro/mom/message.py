"""Message envelope used by the AMQP-like broker.

A :class:`Message` carries an opaque byte payload plus a small set of
AMQP-style properties (routing key, reply-to queue, correlation id,
headers, delivery mode).  The broker never inspects the payload; codecs
live one layer up, in :mod:`repro.serialization`.

Payloads may be ``bytes`` or ``memoryview``: a memoryview-backed body
travels through exchange → queue → consumer without the broker ever
materializing a private copy, so a chunk-sized payload delivered to one
queue is handed over zero-copy.  Only two paths force bytes: the durable
message store (:meth:`Message.materialize`, the journal needs a stable
snapshot) and true fanout (each destination queue gets its own
:class:`Message` envelope — though even then the *buffer* is shared,
because payload bytes are immutable by contract).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

#: Delivery mode constants mirroring AMQP basic.properties.delivery-mode.
TRANSIENT = 1
PERSISTENT = 2

_message_ids = itertools.count(1)


def _next_message_id() -> int:
    # next() on an itertools.count is atomic under CPython — no lock on
    # this per-message hot path.
    return next(_message_ids)


@dataclass
class Message:
    """An immutable-by-convention broker message.

    Attributes:
        body: Opaque payload — ``bytes`` or a ``memoryview`` over caller
            memory (zero-copy handoff; the caller must not mutate the
            underlying buffer after publishing).
        routing_key: Key used by exchanges to select destination queues.
        reply_to: Name of the queue where a reply should be published.
        correlation_id: Opaque id used to pair requests with replies.
        headers: Free-form application headers.
        delivery_mode: TRANSIENT (lost on broker restart) or PERSISTENT.
        message_id: Unique id assigned at construction time.
        redelivered: True when the broker re-queued this message after a
            consumer died without acking it.
    """

    body: Union[bytes, memoryview]
    routing_key: str = ""
    reply_to: Optional[str] = None
    correlation_id: Optional[str] = None
    headers: Dict[str, Any] = field(default_factory=dict)
    delivery_mode: int = TRANSIENT
    message_id: int = field(default_factory=_next_message_id)
    redelivered: bool = False

    def copy_for_queue(self) -> "Message":
        """Return an independent envelope, used when fanning out to many queues.

        Each destination queue must track its own delivery state (acks,
        redelivery flag, broker timestamps in ``headers``), so fanout
        publishes one envelope per queue.  The payload *buffer* is shared,
        not copied — bodies are immutable by contract.
        """
        return Message(
            body=self.body,
            routing_key=self.routing_key,
            reply_to=self.reply_to,
            correlation_id=self.correlation_id,
            headers=dict(self.headers),
            delivery_mode=self.delivery_mode,
        )

    def materialize(self) -> bytes:
        """Force the payload to ``bytes`` in place and return it.

        The durable message store journals payloads and must therefore
        hold a stable snapshot even if the publisher recycles the buffer
        behind a memoryview.  Already-bytes bodies are returned as-is, so
        the common path stays copy-free.
        """
        if not isinstance(self.body, bytes):
            self.body = bytes(self.body)
        return self.body

    @property
    def size(self) -> int:
        """Payload size in bytes (used by traffic meters)."""
        return len(self.body)


@dataclass(frozen=True)
class Delivery:
    """A message handed to a specific consumer, awaiting ack/nack.

    The broker tracks deliveries per consumer so that, if the consumer is
    cancelled or crashes, unacked messages are re-queued — this is the
    at-least-once guarantee ObjectMQ's fault tolerance (paper §3.4) relies
    on.
    """

    delivery_tag: int
    queue_name: str
    consumer_tag: str
    message: Message
