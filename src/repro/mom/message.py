"""Message envelope used by the AMQP-like broker.

A :class:`Message` carries an opaque byte payload plus a small set of
AMQP-style properties (routing key, reply-to queue, correlation id,
headers, delivery mode).  The broker never inspects the payload; codecs
live one layer up, in :mod:`repro.serialization`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Delivery mode constants mirroring AMQP basic.properties.delivery-mode.
TRANSIENT = 1
PERSISTENT = 2

_message_ids = itertools.count(1)
_message_ids_lock = threading.Lock()


def _next_message_id() -> int:
    with _message_ids_lock:
        return next(_message_ids)


@dataclass
class Message:
    """An immutable-by-convention broker message.

    Attributes:
        body: Opaque payload bytes.
        routing_key: Key used by exchanges to select destination queues.
        reply_to: Name of the queue where a reply should be published.
        correlation_id: Opaque id used to pair requests with replies.
        headers: Free-form application headers.
        delivery_mode: TRANSIENT (lost on broker restart) or PERSISTENT.
        message_id: Unique id assigned at construction time.
        redelivered: True when the broker re-queued this message after a
            consumer died without acking it.
    """

    body: bytes
    routing_key: str = ""
    reply_to: Optional[str] = None
    correlation_id: Optional[str] = None
    headers: Dict[str, Any] = field(default_factory=dict)
    delivery_mode: int = TRANSIENT
    message_id: int = field(default_factory=_next_message_id)
    redelivered: bool = False

    def copy_for_queue(self) -> "Message":
        """Return an independent copy, used when fanning out to many queues.

        Each destination queue must track its own delivery state (acks,
        redelivery flag), so fanout publishes one copy per queue.
        """
        return Message(
            body=self.body,
            routing_key=self.routing_key,
            reply_to=self.reply_to,
            correlation_id=self.correlation_id,
            headers=dict(self.headers),
            delivery_mode=self.delivery_mode,
        )

    @property
    def size(self) -> int:
        """Payload size in bytes (used by traffic meters)."""
        return len(self.body)


@dataclass(frozen=True)
class Delivery:
    """A message handed to a specific consumer, awaiting ack/nack.

    The broker tracks deliveries per consumer so that, if the consumer is
    cancelled or crashes, unacked messages are re-queued — this is the
    at-least-once guarantee ObjectMQ's fault tolerance (paper §3.4) relies
    on.
    """

    delivery_tag: int
    queue_name: str
    consumer_tag: str
    message: Message
