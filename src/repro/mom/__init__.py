"""AMQP-semantics message-oriented middleware (the RabbitMQ stand-in).

Public surface::

    from repro.mom import MessageBroker, Message, PERSISTENT

    broker = MessageBroker()
    broker.declare_queue("work")
    broker.publish("", "work", Message(b"payload"))
    msg = broker.get("work", timeout=1.0)
"""

from repro.mom.broker_server import DEFAULT_EXCHANGE, BrokerStats, MessageBroker
from repro.mom.cluster import BrokerCluster
from repro.mom.exchange import DirectExchange, Exchange, FanoutExchange, TopicExchange
from repro.mom.message import PERSISTENT, TRANSIENT, Delivery, Message
from repro.mom.persistence import FileMessageStore, InMemoryMessageStore
from repro.mom.queue import Consumer, MessageQueue
from repro.mom.sqs import SqsBrokerAdapter, SqsQueue, SqsService

__all__ = [
    "DEFAULT_EXCHANGE",
    "PERSISTENT",
    "TRANSIENT",
    "BrokerCluster",
    "BrokerStats",
    "Consumer",
    "Delivery",
    "DirectExchange",
    "Exchange",
    "FanoutExchange",
    "FileMessageStore",
    "InMemoryMessageStore",
    "Message",
    "MessageBroker",
    "MessageQueue",
    "SqsBrokerAdapter",
    "SqsQueue",
    "SqsService",
    "TopicExchange",
]
