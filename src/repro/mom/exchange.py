"""AMQP-style exchanges: direct, fanout, and topic routing.

The paper's ObjectMQ uses two routing behaviours (§3):

* unicast RPCs go through the *default direct exchange* — routing key equals
  the target queue name (the remote object's ``oid`` queue);
* multicast RPCs go through a *fanout exchange* named after the ``oid``,
  which copies the message to every bound private queue.

A topic exchange is included because it falls out of the same structure and
is convenient for tests and extensions (e.g. routing notifications by
workspace hierarchy), though the core protocol does not need it.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from repro.telemetry.profiling import TimedLock


class Exchange:
    """Base exchange: a named router from routing keys to queue names."""

    type_name = "base"

    def __init__(self, name: str):
        self.name = name
        self._lock = TimedLock(f"mom.exchange.{name or 'default'}")
        # binding key -> set of queue names
        self._bindings: Dict[str, Set[str]] = {}

    def bind(self, queue_name: str, binding_key: str = "") -> None:
        with self._lock:
            self._bindings.setdefault(binding_key, set()).add(queue_name)

    def unbind(self, queue_name: str, binding_key: str = "") -> None:
        with self._lock:
            queues = self._bindings.get(binding_key)
            if queues is not None:
                queues.discard(queue_name)
                if not queues:
                    del self._bindings[binding_key]

    def unbind_queue_everywhere(self, queue_name: str) -> None:
        """Drop *queue_name* from every binding (queue deletion path)."""
        with self._lock:
            empty_keys = []
            for key, queues in self._bindings.items():
                queues.discard(queue_name)
                if not queues:
                    empty_keys.append(key)
            for key in empty_keys:
                del self._bindings[key]

    def route(self, routing_key: str) -> List[str]:
        """Return destination queue names for *routing_key*."""
        raise NotImplementedError

    def bound_queues(self) -> Set[str]:
        with self._lock:
            result: Set[str] = set()
            for queues in self._bindings.values():
                result |= queues
            return result

    def binding_count(self) -> int:
        with self._lock:
            return sum(len(queues) for queues in self._bindings.values())


class DirectExchange(Exchange):
    """Route to queues whose binding key exactly matches the routing key."""

    type_name = "direct"

    def route(self, routing_key: str) -> List[str]:
        with self._lock:
            return sorted(self._bindings.get(routing_key, ()))


class FanoutExchange(Exchange):
    """Route every message to every bound queue, ignoring the routing key.

    This is the primitive behind ObjectMQ's @MultiMethod: each remote object
    instance binds its private queue to the fanout exchange named after the
    shared ``oid``, so one publish reaches all instances (Fig 1 / Fig 5).
    """

    type_name = "fanout"

    def route(self, routing_key: str) -> List[str]:
        with self._lock:
            result: Set[str] = set()
            for queues in self._bindings.values():
                result |= queues
            return sorted(result)


class TopicExchange(Exchange):
    """Route on dotted patterns with AMQP wildcards.

    ``*`` matches exactly one word; ``#`` matches zero or more words.
    """

    type_name = "topic"

    @staticmethod
    def _pattern_to_regex(pattern: str) -> "re.Pattern[str]":
        parts = []
        for token in pattern.split("."):
            if token == "*":
                parts.append(r"[^.]+")
            elif token == "#":
                parts.append(r".*")
            else:
                parts.append(re.escape(token))
        # '#' may legitimately match an empty segment sequence; collapsing
        # the resulting empty-separator cases keeps the regex simple.
        regex = r"\.".join(parts)
        regex = regex.replace(r"\..*", r"(?:\..*)?").replace(r".*\.", r"(?:.*\.)?")
        return re.compile(f"^{regex}$")

    def route(self, routing_key: str) -> List[str]:
        with self._lock:
            result: Set[str] = set()
            for pattern, queues in self._bindings.items():
                if self._pattern_to_regex(pattern).match(routing_key):
                    result |= queues
            return sorted(result)


EXCHANGE_TYPES = {
    "direct": DirectExchange,
    "fanout": FanoutExchange,
    "topic": TopicExchange,
}
