"""AMQP-style exchanges: direct, fanout, and topic routing.

The paper's ObjectMQ uses two routing behaviours (§3):

* unicast RPCs go through the *default direct exchange* — routing key equals
  the target queue name (the remote object's ``oid`` queue);
* multicast RPCs go through a *fanout exchange* named after the ``oid``,
  which copies the message to every bound private queue.

A topic exchange is included because it falls out of the same structure and
is convenient for tests and extensions (e.g. routing notifications by
workspace hierarchy), though the core protocol does not need it.

Routing is memoized: bindings change rarely (instance churn) while
publishes are the hot path, so every exchange caches
``routing_key → destination list`` and invalidates the memo on
bind/unbind.  The topic exchange additionally compiles each binding
pattern once at bind time instead of per publish.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

from repro.telemetry.profiling import TimedLock


class Exchange:
    """Base exchange: a named router from routing keys to queue names."""

    type_name = "base"

    def __init__(self, name: str):
        self.name = name
        self._lock = TimedLock(f"mom.exchange.{name or 'default'}")
        # binding key -> set of queue names
        self._bindings: Dict[str, Set[str]] = {}
        # routing key -> resolved destination list; rebuilt lazily after
        # any binding mutation.  Hit on every publish, so misses are the
        # exception once a topology settles.
        self._route_cache: Dict[str, List[str]] = {}

    def bind(self, queue_name: str, binding_key: str = "") -> None:
        with self._lock:
            self._bindings.setdefault(binding_key, set()).add(queue_name)
            self._on_bindings_changed_locked()

    def unbind(self, queue_name: str, binding_key: str = "") -> None:
        with self._lock:
            queues = self._bindings.get(binding_key)
            if queues is not None:
                queues.discard(queue_name)
                if not queues:
                    del self._bindings[binding_key]
                self._on_bindings_changed_locked()

    def unbind_queue_everywhere(self, queue_name: str) -> None:
        """Drop *queue_name* from every binding (queue deletion path)."""
        with self._lock:
            empty_keys = []
            for key, queues in self._bindings.items():
                queues.discard(queue_name)
                if not queues:
                    empty_keys.append(key)
            for key in empty_keys:
                del self._bindings[key]
            self._on_bindings_changed_locked()

    def _on_bindings_changed_locked(self) -> None:
        """Invalidate memoized routing state; subclasses may extend."""
        self._route_cache.clear()

    def route(self, routing_key: str) -> List[str]:
        """Return destination queue names for *routing_key* (memoized)."""
        with self._lock:
            cached = self._route_cache.get(routing_key)
            if cached is None:
                cached = self._route_locked(routing_key)
                self._route_cache[routing_key] = cached
            # Hand out a copy: the memo must stay immutable to callers.
            return list(cached)

    def _route_locked(self, routing_key: str) -> List[str]:
        """Resolve *routing_key* with ``self._lock`` held (cache miss)."""
        raise NotImplementedError

    def bound_queues(self) -> Set[str]:
        with self._lock:
            result: Set[str] = set()
            for queues in self._bindings.values():
                result |= queues
            return result

    def binding_count(self) -> int:
        with self._lock:
            return sum(len(queues) for queues in self._bindings.values())

    def has_bindings(self) -> bool:
        """Cheap emptiness probe — publishers use it to skip dead fanouts.

        Reads the binding table without the exchange lock: dict emptiness
        is an atomic read under CPython, and the probe's contract already
        tolerates racing a concurrent (un)bind.
        """
        return bool(self._bindings)

    def route_cache_size(self) -> int:
        """Memoized routing-key entries (introspection/tests)."""
        with self._lock:
            return len(self._route_cache)


class DirectExchange(Exchange):
    """Route to queues whose binding key exactly matches the routing key."""

    type_name = "direct"

    def _route_locked(self, routing_key: str) -> List[str]:
        return sorted(self._bindings.get(routing_key, ()))


class FanoutExchange(Exchange):
    """Route every message to every bound queue, ignoring the routing key.

    This is the primitive behind ObjectMQ's @MultiMethod: each remote object
    instance binds its private queue to the fanout exchange named after the
    shared ``oid``, so one publish reaches all instances (Fig 1 / Fig 5).
    """

    type_name = "fanout"

    def _route_locked(self, routing_key: str) -> List[str]:
        result: Set[str] = set()
        for queues in self._bindings.values():
            result |= queues
        return sorted(result)


class TopicExchange(Exchange):
    """Route on dotted patterns with AMQP wildcards.

    ``*`` matches exactly one word; ``#`` matches zero or more words.
    Patterns are compiled once per binding key (at bind time), and match
    results are memoized per routing key by the base class.
    """

    type_name = "topic"

    def __init__(self, name: str):
        super().__init__(name)
        self._compiled: Dict[str, "re.Pattern[str]"] = {}

    @staticmethod
    def _pattern_to_regex(pattern: str) -> "re.Pattern[str]":
        parts = []
        for token in pattern.split("."):
            if token == "*":
                parts.append(r"[^.]+")
            elif token == "#":
                parts.append(r".*")
            else:
                parts.append(re.escape(token))
        # '#' may legitimately match an empty segment sequence; collapsing
        # the resulting empty-separator cases keeps the regex simple.
        regex = r"\.".join(parts)
        regex = regex.replace(r"\..*", r"(?:\..*)?").replace(r".*\.", r"(?:.*\.)?")
        return re.compile(f"^{regex}$")

    def _on_bindings_changed_locked(self) -> None:
        super()._on_bindings_changed_locked()
        # Drop compilations for vanished patterns; keep live ones (their
        # regex is immutable, only the queue sets behind them change).
        for pattern in list(self._compiled):
            if pattern not in self._bindings:
                del self._compiled[pattern]

    def _route_locked(self, routing_key: str) -> List[str]:
        result: Set[str] = set()
        for pattern, queues in self._bindings.items():
            compiled = self._compiled.get(pattern)
            if compiled is None:
                compiled = self._pattern_to_regex(pattern)
                self._compiled[pattern] = compiled
            if compiled.match(routing_key):
                result |= queues
        return sorted(result)


EXCHANGE_TYPES = {
    "direct": DirectExchange,
    "fanout": FanoutExchange,
    "topic": TopicExchange,
}
