"""Work queues with AMQP semantics: acks, prefetch and round-robin dispatch.

A :class:`MessageQueue` holds ready messages and a set of registered
consumers.  Dispatch follows the AMQP work-queue model the paper relies on
(§3): a message is handed to *one* consumer, chosen round-robin among the
consumers whose number of unacknowledged deliveries is below their prefetch
window.  With ``prefetch=1`` this is exactly the "deliver to the first idle
remote object" behaviour the paper describes, and it is what makes adding a
SyncService instance immediately absorb load.

Reliability: a delivery stays in the consumer's unacked set until it is
acked.  If the consumer is cancelled or its owner crashes, every unacked
message is put back at the head of the queue with ``redelivered=True`` —
the at-least-once guarantee of §3.4.
"""

from __future__ import annotations

import itertools
import logging
import queue as stdlib_queue
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

from repro.errors import DuplicateConsumer
from repro.mom.message import Delivery, Message
from repro.telemetry.profiling import TimedCondition, TimedLock
from repro.telemetry.registry import get_registry
from repro.telemetry.trace import DEQUEUED_AT_KEY, ENQUEUED_AT_KEY, TRACER

logger = logging.getLogger(__name__)

_delivery_tags = itertools.count(1)
_delivery_tags_lock = threading.Lock()

#: Sentinel pushed into a consumer mailbox to terminate its worker thread.
_STOP = object()


def _next_delivery_tag() -> int:
    with _delivery_tags_lock:
        return next(_delivery_tags)


class Consumer:
    """A registered consumer: a callback plus its delivery worker thread.

    Deliveries are executed on a dedicated thread so that one slow consumer
    never blocks the queue's dispatch path or its sibling consumers.  The
    callback receives a :class:`Delivery`; acking is the responsibility of
    the subscriber (normally the ObjectMQ skeleton) via
    :meth:`MessageQueue.ack`.
    """

    def __init__(
        self,
        tag: str,
        callback: Callable[[Delivery], None],
        prefetch: int = 1,
        auto_ack: bool = False,
    ):
        self.tag = tag
        self.callback = callback
        self.prefetch = max(1, prefetch)
        self.auto_ack = auto_ack
        self.unacked: Dict[int, Delivery] = {}
        self._mailbox: "stdlib_queue.SimpleQueue" = stdlib_queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._run, name=f"consumer-{tag}", daemon=True
        )
        self._thread.start()

    def deliver(self, delivery: Delivery) -> None:
        self._mailbox.put(delivery)

    def stop(self) -> None:
        self._mailbox.put(_STOP)

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    def _run(self) -> None:
        while True:
            item = self._mailbox.get()
            if item is _STOP:
                return
            try:
                self.callback(item)
            except Exception:  # noqa: BLE001 - consumer bugs must not kill dispatch
                logger.exception("consumer %s raised while handling delivery", self.tag)


class MessageQueue:
    """A named queue with ready buffer, consumers, and ack bookkeeping."""

    def __init__(self, name: str, durable: bool = False, exclusive: bool = False):
        self.name = name
        self.durable = durable
        self.exclusive = exclusive
        self._ready: deque = deque()
        self._consumers: List[Consumer] = []
        self._rr_index = 0
        # Exclusive queues (per-proxy response queues, per-instance
        # multicast queues) share one contention label so lock-series
        # cardinality stays bounded by the number of queue *roles*.
        lock_label = (
            "mom.queue.<exclusive>" if exclusive else f"mom.queue.{name}"
        )
        self._lock = TimedLock(lock_label)
        self._not_empty = TimedCondition(self._lock)
        # Counters for introspection (HasObjectInfo, paper §3.3).
        self.published_count = 0
        self.delivered_count = 0
        self.acked_count = 0
        self.redelivered_count = 0
        # Hot-path health: deepest the ready buffer ever got, and how
        # many dispatch cycles (lock acquisitions that tried to hand out
        # messages) ran.  Scraped lazily; exclusive queues are transient
        # and numerous, so only named queues register a source.
        self.depth_high_water = 0
        self.dispatch_cycles = 0
        self._source_token: Optional[int] = None
        if not exclusive:
            self._source_token = get_registry().register_source(
                "mom_queue",
                self,
                lambda q: {
                    "depth_high_water": float(q.depth_high_water),
                    "dispatch_cycles": float(q.dispatch_cycles),
                },
                queue=name,
            )

    # -- publishing ---------------------------------------------------------

    def put(self, message: Message, at_head: bool = False) -> None:
        """Enqueue *message* and trigger dispatch."""
        if TRACER.enabled:
            # Broker-clock enqueue stamp: queue-wait spans are derived
            # from these header timestamps, not from endpoint timers.
            message.headers.setdefault(ENQUEUED_AT_KEY, time.time())
        with self._lock:
            if at_head:
                self._ready.appendleft(message)
            else:
                self._ready.append(message)
            self.published_count += 1
            if len(self._ready) > self.depth_high_water:
                self.depth_high_water = len(self._ready)
            self._dispatch_locked()
            self._not_empty.notify_all()

    # -- pull-mode (basic.get) ---------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Synchronously pop one message, waiting up to *timeout* seconds.

        Pull mode auto-acks: the message is not tracked for redelivery.
        Used by ObjectMQ proxies to wait for replies on their private
        response queues.
        """
        with self._not_empty:
            if timeout is None:
                while not self._ready:
                    self._not_empty.wait()
            else:
                # Loop on a monotonic deadline: a single wait() can return
                # early on a spurious wakeup, or after a racing getter
                # stole the message that triggered the notify.
                deadline = time.monotonic() + timeout
                while not self._ready:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._not_empty.wait(remaining)
            self.delivered_count += 1
            self.acked_count += 1
            message = self._ready.popleft()
            if TRACER.enabled:
                message.headers[DEQUEUED_AT_KEY] = time.time()
            return message

    # -- push-mode (basic.consume) -------------------------------------------

    def add_consumer(
        self,
        tag: str,
        callback: Callable[[Delivery], None],
        prefetch: int = 1,
        auto_ack: bool = False,
    ) -> Consumer:
        with self._lock:
            if any(c.tag == tag for c in self._consumers):
                raise DuplicateConsumer(f"consumer tag {tag!r} already on {self.name!r}")
            consumer = Consumer(tag, callback, prefetch=prefetch, auto_ack=auto_ack)
            self._consumers.append(consumer)
            self._dispatch_locked()
        return consumer

    def cancel_consumer(self, tag: str) -> None:
        """Remove a consumer, requeuing all its unacked deliveries.

        This is the crash-recovery path from §3.4: when a SyncService
        instance dies mid-operation, its in-flight commit requests flow back
        to the queue and are redelivered to a surviving instance.
        """
        with self._lock:
            consumer = self._pop_consumer_locked(tag)
            if consumer is None:
                return
            consumer.stop()
            for delivery in sorted(
                consumer.unacked.values(), key=lambda d: d.delivery_tag, reverse=True
            ):
                requeued = delivery.message.copy_for_queue()
                requeued.redelivered = True
                self._ready.appendleft(requeued)
                self.redelivered_count += 1
            consumer.unacked.clear()
            self._dispatch_locked()
            self._not_empty.notify_all()

    def _pop_consumer_locked(self, tag: str) -> Optional[Consumer]:
        for i, consumer in enumerate(self._consumers):
            if consumer.tag == tag:
                return self._consumers.pop(i)
        return None

    # -- acks ----------------------------------------------------------------

    def ack(self, delivery_tag: int) -> bool:
        """Acknowledge a delivery; returns False if the tag is unknown."""
        with self._lock:
            for consumer in self._consumers:
                if delivery_tag in consumer.unacked:
                    del consumer.unacked[delivery_tag]
                    self.acked_count += 1
                    self._dispatch_locked()
                    return True
        return False

    def nack(self, delivery_tag: int, requeue: bool = True) -> bool:
        """Negatively acknowledge; optionally requeue at the head."""
        with self._lock:
            for consumer in self._consumers:
                delivery = consumer.unacked.pop(delivery_tag, None)
                if delivery is not None:
                    if requeue:
                        requeued = delivery.message.copy_for_queue()
                        requeued.redelivered = True
                        self._ready.appendleft(requeued)
                        self.redelivered_count += 1
                    self._dispatch_locked()
                    return True
        return False

    # -- dispatch -------------------------------------------------------------

    def _dispatch_locked(self) -> None:
        """Hand ready messages to eligible consumers, round-robin.

        Must be called with ``self._lock`` held.  A consumer is eligible
        when its unacked window is below its prefetch limit; with the
        default prefetch of 1 this selects only idle consumers, which is the
        transparent load balancing the paper credits the MOM layer with.
        """
        self.dispatch_cycles += 1
        if not self._consumers:
            return
        while self._ready:
            consumer = self._next_eligible_locked()
            if consumer is None:
                return
            message = self._ready.popleft()
            if TRACER.enabled:
                message.headers[DEQUEUED_AT_KEY] = time.time()
            delivery = Delivery(
                delivery_tag=_next_delivery_tag(),
                queue_name=self.name,
                consumer_tag=consumer.tag,
                message=message,
            )
            if not consumer.auto_ack:
                consumer.unacked[delivery.delivery_tag] = delivery
            else:
                self.acked_count += 1
            self.delivered_count += 1
            consumer.deliver(delivery)

    def _next_eligible_locked(self) -> Optional[Consumer]:
        n = len(self._consumers)
        for offset in range(n):
            candidate = self._consumers[(self._rr_index + offset) % n]
            if len(candidate.unacked) < candidate.prefetch:
                self._rr_index = (self._rr_index + offset + 1) % n
                return candidate
        return None

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ready)

    @property
    def consumer_count(self) -> int:
        with self._lock:
            return len(self._consumers)

    @property
    def unacked_count(self) -> int:
        with self._lock:
            return sum(len(c.unacked) for c in self._consumers)

    def consumer_tags(self) -> List[str]:
        with self._lock:
            return [c.tag for c in self._consumers]

    def purge(self) -> int:
        with self._lock:
            n = len(self._ready)
            self._ready.clear()
            return n

    def drain_messages(self) -> List[Message]:
        """Remove and return all ready messages (used by persistence/HA)."""
        with self._lock:
            messages = list(self._ready)
            self._ready.clear()
            return messages

    def close(self) -> None:
        if self._source_token is not None:
            get_registry().unregister_source(self._source_token)
            self._source_token = None
        with self._lock:
            consumers = list(self._consumers)
            self._consumers.clear()
        for consumer in consumers:
            consumer.stop()
        for consumer in consumers:
            consumer.join(timeout=1.0)
