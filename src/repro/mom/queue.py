"""Work queues with AMQP semantics: acks, prefetch and round-robin dispatch.

A :class:`MessageQueue` holds ready messages and a set of registered
consumers.  Dispatch follows the AMQP work-queue model the paper relies on
(§3): a message is handed to *one* consumer, chosen round-robin among the
consumers whose number of unacknowledged deliveries is below their prefetch
window.  With ``prefetch=1`` this is exactly the "deliver to the first idle
remote object" behaviour the paper describes, and it is what makes adding a
SyncService instance immediately absorb load.

The dispatch core is batched: one lock acquisition drains up to
``batch_size`` ready messages *per consumer* into per-consumer mailboxes
(one mailbox handoff per consumer per cycle, not one per message), and
consumers with ``prefetch > 1`` have their whole window filled in a single
cycle.  Pull-mode waiters are woken with *targeted* notifies — exactly as
many waiters as there are messages to take — never a ``notify_all``
stampede.

Reliability: a delivery stays in the consumer's unacked set until it is
acked.  If the consumer is cancelled or its owner crashes, every unacked
message is put back at the head of the queue with ``redelivered=True`` —
the at-least-once guarantee of §3.4.  Requeue re-enqueues the *same*
message object (payload untouched, same ``message_id`` so the durable
journal's ack bookkeeping still matches) in one batched splice.
"""

from __future__ import annotations

import itertools
import logging
import queue as stdlib_queue
import threading
import time
from collections import deque
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import DuplicateConsumer
from repro.mom.message import Delivery, Message
from repro.telemetry.profiling import TimedCondition, TimedLock
from repro.telemetry.registry import get_registry
from repro.telemetry.trace import DEQUEUED_AT_KEY, ENQUEUED_AT_KEY, TRACER

logger = logging.getLogger(__name__)

#: Sentinel pushed into a consumer mailbox to terminate its worker thread.
_STOP = object()

#: Most messages one dispatch cycle hands a single consumer.  Prefetch
#: already bounds un-acked consumers; this bounds auto-ack consumers (and
#: the mailbox burst size) so one drain cannot monopolize the lock.
DEFAULT_BATCH_SIZE = 64


class Consumer:
    """A registered consumer: a callback plus its delivery worker thread.

    Deliveries are executed on a dedicated thread so that one slow consumer
    never blocks the queue's dispatch path or its sibling consumers.  The
    callback receives a :class:`Delivery`; acking is the responsibility of
    the subscriber (normally the ObjectMQ skeleton) via
    :meth:`MessageQueue.ack`.

    The mailbox carries *batches*: the dispatch loop hands over a list of
    deliveries per cycle, and the worker unpacks it — so a burst of N
    messages costs one queue handoff, not N.  A subscriber that can
    exploit whole batches (e.g. to ack them in one broker round trip)
    registers a *batch_callback*, which then receives the full list and
    owns per-delivery error handling; otherwise the per-delivery
    ``callback`` is invoked for each element.
    """

    def __init__(
        self,
        tag: str,
        callback: Callable[[Delivery], None],
        prefetch: int = 1,
        auto_ack: bool = False,
        batch_callback: Optional[Callable[[List[Delivery]], None]] = None,
    ):
        self.tag = tag
        self.callback = callback
        self.batch_callback = batch_callback
        self.prefetch = max(1, prefetch)
        self.auto_ack = auto_ack
        self.unacked: Dict[int, Delivery] = {}
        self._mailbox: "stdlib_queue.SimpleQueue" = stdlib_queue.SimpleQueue()
        self._thread = threading.Thread(
            target=self._run, name=f"consumer-{tag}", daemon=True
        )
        self._thread.start()

    def deliver(self, delivery: Delivery) -> None:
        self._mailbox.put((delivery,))

    def deliver_batch(self, deliveries: List[Delivery]) -> None:
        """Hand a whole dispatch-cycle batch over in one mailbox put."""
        self._mailbox.put(deliveries)

    def stop(self) -> None:
        self._mailbox.put(_STOP)

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    def _run(self) -> None:
        while True:
            item = self._mailbox.get()
            if item is _STOP:
                return
            if self.batch_callback is not None:
                try:
                    self.batch_callback(list(item))
                except Exception:  # noqa: BLE001 - consumer bugs must not kill dispatch
                    logger.exception(
                        "consumer %s raised while handling batch", self.tag
                    )
                continue
            for delivery in item:
                try:
                    self.callback(delivery)
                except Exception:  # noqa: BLE001 - consumer bugs must not kill dispatch
                    logger.exception(
                        "consumer %s raised while handling delivery", self.tag
                    )


class MessageQueue:
    """A named queue with ready buffer, consumers, and ack bookkeeping.

    Args:
        name: Queue name (routing target on the default exchange).
        durable: Survive broker restarts (persistent messages replayed).
        exclusive: Private single-owner queue (response/multicast queues).
        batch_size: Max messages one dispatch cycle hands a single
            consumer; see :data:`DEFAULT_BATCH_SIZE`.
    """

    def __init__(
        self,
        name: str,
        durable: bool = False,
        exclusive: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        self.name = name
        self.durable = durable
        self.exclusive = exclusive
        self.batch_size = max(1, batch_size)
        self._ready: deque = deque()
        self._consumers: List[Consumer] = []
        self._rr_index = 0
        # Delivery tags are queue-scoped (AMQP: channel-scoped) — handing
        # one out is a plain next() under the queue lock, not a trip
        # through a process-wide counter lock.
        self._delivery_tags = itertools.count(1)
        # Pull-mode waiters currently blocked in get(); the publish path
        # wakes at most this many — and at most one per ready message.
        self._pull_waiters = 0
        # Exclusive queues (per-proxy response queues, per-instance
        # multicast queues) share one contention label so lock-series
        # cardinality stays bounded by the number of queue *roles*.
        lock_label = (
            "mom.queue.<exclusive>" if exclusive else f"mom.queue.{name}"
        )
        self._lock = TimedLock(lock_label)
        self._not_empty = TimedCondition(self._lock)
        # Counters for introspection (HasObjectInfo, paper §3.3).
        self.published_count = 0
        self.delivered_count = 0
        self.acked_count = 0
        self.redelivered_count = 0
        # Hot-path health: deepest the ready buffer ever got, and how
        # many dispatch cycles (lock acquisitions that tried to hand out
        # messages) ran.  Scraped lazily; exclusive queues are transient
        # and numerous, so only named queues register a source.
        self.depth_high_water = 0
        self.dispatch_cycles = 0
        self.batched_deliveries = 0
        self._source_token: Optional[int] = None
        if not exclusive:
            self._source_token = get_registry().register_source(
                "mom_queue",
                self,
                lambda q: {
                    "depth_high_water": float(q.depth_high_water),
                    "dispatch_cycles": float(q.dispatch_cycles),
                    "batched_deliveries": float(q.batched_deliveries),
                },
                queue=name,
            )

    # -- publishing ---------------------------------------------------------

    def put(self, message: Message, at_head: bool = False) -> None:
        """Enqueue *message* and trigger dispatch."""
        if TRACER.enabled:
            # Broker-clock enqueue stamp: queue-wait spans are derived
            # from these header timestamps, not from endpoint timers.
            message.headers.setdefault(ENQUEUED_AT_KEY, time.time())
        with self._lock:
            if at_head:
                self._ready.appendleft(message)
            else:
                self._ready.append(message)
            self.published_count += 1
            if len(self._ready) > self.depth_high_water:
                self.depth_high_water = len(self._ready)
            self._dispatch_locked()
            self._notify_pull_waiters_locked()

    def put_many(self, messages: Iterable[Message]) -> int:
        """Enqueue a batch of messages under one lock acquisition.

        This is the broker-side half of publisher buffering: a flushed
        publish buffer lands its whole run of same-queue messages through
        a single lock cycle and a single dispatch pass, instead of paying
        the acquire/dispatch/notify cost per message.  Returns the number
        of messages enqueued.
        """
        batch = list(messages)
        if not batch:
            return 0
        if TRACER.enabled:
            now = time.time()
            for message in batch:
                message.headers.setdefault(ENQUEUED_AT_KEY, now)
        with self._lock:
            self._ready.extend(batch)
            self.published_count += len(batch)
            if len(self._ready) > self.depth_high_water:
                self.depth_high_water = len(self._ready)
            self._dispatch_locked()
            self._notify_pull_waiters_locked()
        return len(batch)

    def _notify_pull_waiters_locked(self) -> None:
        """Wake exactly as many pull-mode getters as can make progress.

        Replaces the ``notify_all`` stampede: each ready message wakes at
        most one waiter, and waiters that cannot take a message are left
        asleep instead of burning a wakeup/re-wait cycle.
        """
        if self._pull_waiters and self._ready:
            self._not_empty.notify(min(len(self._ready), self._pull_waiters))

    # -- pull-mode (basic.get) ---------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Synchronously pop one message, waiting up to *timeout* seconds.

        Pull mode auto-acks: the message is not tracked for redelivery.
        Used by ObjectMQ proxies to wait for replies on their private
        response queues.
        """
        with self._not_empty:
            if not self._ready:
                self._pull_waiters += 1
                try:
                    if timeout is None:
                        while not self._ready:
                            self._not_empty.wait()
                    else:
                        # Loop on a monotonic deadline: a single wait() can
                        # return early on a spurious wakeup, or after a racing
                        # getter stole the message that triggered the notify.
                        deadline = time.monotonic() + timeout
                        while not self._ready:
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                return None
                            self._not_empty.wait(remaining)
                finally:
                    self._pull_waiters -= 1
            self.delivered_count += 1
            self.acked_count += 1
            message = self._ready.popleft()
            if TRACER.enabled:
                message.headers[DEQUEUED_AT_KEY] = time.time()
            # Cascade: if messages remain and siblings still wait, pass
            # exactly one wakeup on (covers a racing publisher whose
            # notify landed on this getter for a different message).
            self._notify_pull_waiters_locked()
            return message

    # -- push-mode (basic.consume) -------------------------------------------

    def add_consumer(
        self,
        tag: str,
        callback: Callable[[Delivery], None],
        prefetch: int = 1,
        auto_ack: bool = False,
        batch_callback: Optional[Callable[[List[Delivery]], None]] = None,
    ) -> Consumer:
        with self._lock:
            if any(c.tag == tag for c in self._consumers):
                raise DuplicateConsumer(f"consumer tag {tag!r} already on {self.name!r}")
            consumer = Consumer(
                tag,
                callback,
                prefetch=prefetch,
                auto_ack=auto_ack,
                batch_callback=batch_callback,
            )
            self._consumers.append(consumer)
            self._dispatch_locked()
        return consumer

    def cancel_consumer(self, tag: str) -> None:
        """Remove a consumer, requeuing all its unacked deliveries.

        This is the crash-recovery path from §3.4: when a SyncService
        instance dies mid-operation, its in-flight commit requests flow back
        to the queue and are redelivered to a surviving instance.

        Requeue is batched: the consumer's unacked messages are spliced
        back onto the head of the ready buffer in one ``extendleft``, in
        their original delivery order, as the *same* message objects
        (flagged ``redelivered=True``; no payload or envelope copies).
        """
        with self._lock:
            consumer = self._pop_consumer_locked(tag)
            if consumer is None:
                return
            consumer.stop()
            requeued = self._requeue_unacked_locked(consumer)
            self._dispatch_locked()
            if requeued:
                self._notify_pull_waiters_locked()

    def _requeue_unacked_locked(self, consumer: Consumer) -> int:
        """Splice *consumer*'s unacked messages back head-of-queue.

        Returns the number of requeued messages.  Must be called with the
        queue lock held.
        """
        if not consumer.unacked:
            return 0
        deliveries = sorted(consumer.unacked.values(), key=lambda d: d.delivery_tag)
        consumer.unacked.clear()
        for delivery in deliveries:
            delivery.message.redelivered = True
        # extendleft reverses, so feed it newest-first to land the batch
        # ahead of the ready buffer in original (oldest-first) order.
        self._ready.extendleft(d.message for d in reversed(deliveries))
        self.redelivered_count += len(deliveries)
        return len(deliveries)

    def _pop_consumer_locked(self, tag: str) -> Optional[Consumer]:
        for i, consumer in enumerate(self._consumers):
            if consumer.tag == tag:
                return self._consumers.pop(i)
        return None

    # -- acks ----------------------------------------------------------------

    def ack(self, delivery_tag: int) -> bool:
        """Acknowledge a delivery; returns False if the tag is unknown."""
        with self._lock:
            for consumer in self._consumers:
                if delivery_tag in consumer.unacked:
                    del consumer.unacked[delivery_tag]
                    self.acked_count += 1
                    self._dispatch_locked()
                    return True
        return False

    def ack_many(self, delivery_tags: List[int]) -> List[int]:
        """Acknowledge a batch of deliveries in one lock cycle.

        Returns the tags that were actually acked (unknown tags — e.g.
        already requeued after a consumer crash — are skipped, exactly as
        :meth:`ack` would report False for them).  Dispatch runs once at
        the end: freeing N prefetch slots triggers one drain, not N.
        """
        acked: List[int] = []
        with self._lock:
            for delivery_tag in delivery_tags:
                for consumer in self._consumers:
                    if delivery_tag in consumer.unacked:
                        del consumer.unacked[delivery_tag]
                        acked.append(delivery_tag)
                        break
            if acked:
                self.acked_count += len(acked)
                self._dispatch_locked()
        return acked

    def nack(self, delivery_tag: int, requeue: bool = True) -> bool:
        """Negatively acknowledge; optionally requeue at the head."""
        with self._lock:
            for consumer in self._consumers:
                delivery = consumer.unacked.pop(delivery_tag, None)
                if delivery is not None:
                    if requeue:
                        delivery.message.redelivered = True
                        self._ready.appendleft(delivery.message)
                        self.redelivered_count += 1
                    self._dispatch_locked()
                    if requeue:
                        self._notify_pull_waiters_locked()
                    return True
        return False

    # -- dispatch -------------------------------------------------------------

    def _dispatch_locked(self) -> None:
        """Drain ready messages to eligible consumers in per-consumer batches.

        Must be called with ``self._lock`` held.  A consumer is eligible
        while its unacked window is below its prefetch limit; with the
        default prefetch of 1 this selects only idle consumers, which is
        the transparent load balancing the paper credits the MOM layer
        with.  Consumers with wider windows (or ``auto_ack``) have up to
        ``batch_size`` messages drained into their mailbox in this one
        lock cycle — one mailbox handoff per consumer, not per message.
        """
        self.dispatch_cycles += 1
        if not self._consumers or not self._ready:
            return
        stamp = time.time() if TRACER.enabled else None
        # Rounds of capped batches: each round hands every consumer at
        # most batch_size messages in one mailbox put, and rounds repeat
        # until nothing more can move — a burst larger than batch_size is
        # chunked, never stranded waiting for the next put/ack.
        while self._ready:
            batches: "Dict[Consumer, List[Delivery]]" = {}
            while self._ready:
                consumer = self._next_eligible_locked(batches)
                if consumer is None:
                    break
                message = self._ready.popleft()
                if stamp is not None:
                    message.headers[DEQUEUED_AT_KEY] = stamp
                delivery = Delivery(
                    delivery_tag=next(self._delivery_tags),
                    queue_name=self.name,
                    consumer_tag=consumer.tag,
                    message=message,
                )
                if not consumer.auto_ack:
                    consumer.unacked[delivery.delivery_tag] = delivery
                else:
                    self.acked_count += 1
                self.delivered_count += 1
                batches.setdefault(consumer, []).append(delivery)
            if not batches:
                break
            for consumer, batch in batches.items():
                if len(batch) > 1:
                    self.batched_deliveries += len(batch)
                consumer.deliver_batch(batch)

    def _next_eligible_locked(
        self, batches: Optional["Dict[Consumer, List[Delivery]]"] = None
    ) -> Optional[Consumer]:
        n = len(self._consumers)
        for offset in range(n):
            candidate = self._consumers[(self._rr_index + offset) % n]
            if len(candidate.unacked) >= candidate.prefetch:
                continue
            if batches is not None and len(batches.get(candidate, ())) >= self.batch_size:
                continue
            self._rr_index = (self._rr_index + offset + 1) % n
            return candidate
        return None

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ready)

    @property
    def consumer_count(self) -> int:
        with self._lock:
            return len(self._consumers)

    @property
    def unacked_count(self) -> int:
        with self._lock:
            return sum(len(c.unacked) for c in self._consumers)

    def consumer_tags(self) -> List[str]:
        with self._lock:
            return [c.tag for c in self._consumers]

    def purge(self) -> int:
        with self._lock:
            n = len(self._ready)
            self._ready.clear()
            return n

    def drain_messages(self) -> List[Message]:
        """Remove and return all ready messages (used by persistence/HA)."""
        with self._lock:
            messages = list(self._ready)
            self._ready.clear()
            return messages

    def close(self) -> None:
        if self._source_token is not None:
            get_registry().unregister_source(self._source_token)
            self._source_token = None
        with self._lock:
            consumers = list(self._consumers)
            self._consumers.clear()
        for consumer in consumers:
            consumer.stop()
        for consumer in consumers:
            consumer.join(timeout=1.0)
