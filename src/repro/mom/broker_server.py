"""The message broker: the in-process stand-in for RabbitMQ.

:class:`MessageBroker` owns named queues and exchanges and exposes the
narrow AMQP-shaped surface ObjectMQ needs:

* ``declare_queue`` / ``delete_queue`` / ``declare_exchange``
* ``bind_queue(exchange, queue, key)``
* ``publish(exchange, routing_key, message)``
* ``consume`` / ``cancel`` (push) and ``get`` (pull)
* ``ack`` / ``nack``

It also implements the reliability behaviours the paper leans on:
unacked messages are redelivered when a consumer is cancelled
(:meth:`MessageQueue.cancel_consumer`), persistent messages on durable
queues survive :meth:`restart`, and a per-call latency model lets the
benchmarks charge realistic network costs to every broker hop.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.errors import BrokerClosed, DeliveryError, ExchangeNotFound, QueueNotFound
from repro.mom.exchange import EXCHANGE_TYPES, DirectExchange, Exchange
from repro.mom.message import Delivery, Message
from repro.mom.persistence import InMemoryMessageStore
from repro.mom.queue import Consumer, MessageQueue
from repro.telemetry.control import HEALTH
from repro.telemetry.profiling import TimedLock
from repro.telemetry.registry import REGISTRY

#: Name of the implicit default exchange (direct; routing key == queue name).
DEFAULT_EXCHANGE = ""


class BrokerStats:
    """Aggregate counters exposed for provisioners and tests."""

    def __init__(self, broker_name: str = "broker") -> None:
        # Taken on every publish/ack — the second-hottest lock in the
        # broker after the queue lock, so it is contention-metered too.
        self._lock = TimedLock(f"mom.broker.{broker_name}.stats")
        self.publishes = 0
        self.deliveries = 0
        self.acks = 0
        self.bytes_published = 0

    def on_publish(self, message: Message, queue_count: int) -> None:
        with self._lock:
            self.publishes += 1
            self.deliveries += queue_count
            self.bytes_published += message.size * max(1, queue_count)

    def on_ack(self) -> None:
        with self._lock:
            self.acks += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "publishes": self.publishes,
                "deliveries": self.deliveries,
                "acks": self.acks,
                "bytes_published": self.bytes_published,
            }


class MessageBroker:
    """An AMQP-semantics message broker running inside the process.

    Args:
        store: Durable message store; defaults to a fresh in-memory store.
        publish_latency: Callable returning the seconds to sleep on every
            publish — used by live benchmarks to model broker RTT.  Defaults
            to no latency.
    """

    def __init__(
        self,
        store: Optional[InMemoryMessageStore] = None,
        publish_latency: Optional[Callable[[], float]] = None,
        name: str = "broker",
    ):
        self.name = name
        self.store = store if store is not None else InMemoryMessageStore()
        self._publish_latency = publish_latency
        self._lock = TimedLock(f"mom.broker.{name}")
        self._queues: Dict[str, MessageQueue] = {}
        self._exchanges: Dict[str, Exchange] = {DEFAULT_EXCHANGE: DirectExchange("")}
        self._closed = False
        self.stats = BrokerStats(name)
        # Scrape-time wiring into the unified registry: evaluated only on
        # snapshot, weakly held, so the publish hot path is untouched.
        REGISTRY.register_source(
            "mom_broker", self.stats, BrokerStats.snapshot, broker=name
        )
        self._health_token = HEALTH.register(
            f"mom:{name}", self, MessageBroker._health_probe
        )

    def _health_probe(self) -> Dict[str, object]:
        """Ops-endpoint probe: the broker accepts publishes."""
        with self._lock:
            return {
                "ok": not self._closed,
                "queues": len(self._queues),
                "exchanges": len(self._exchanges),
            }

    # -- topology -------------------------------------------------------------

    def declare_queue(
        self, name: str, durable: bool = False, exclusive: bool = False
    ) -> MessageQueue:
        """Declare (idempotently) and return the queue called *name*."""
        self._check_open()
        with self._lock:
            queue = self._queues.get(name)
            if queue is None:
                queue = MessageQueue(name, durable=durable, exclusive=exclusive)
                self._queues[name] = queue
                if durable:
                    for message in self.store.pending_for(name):
                        queue.put(message)
            return queue

    def delete_queue(self, name: str) -> None:
        with self._lock:
            queue = self._queues.pop(name, None)
            for exchange in self._exchanges.values():
                exchange.unbind_queue_everywhere(name)
        if queue is not None:
            queue.close()

    def declare_exchange(self, name: str, type_name: str = "direct") -> Exchange:
        self._check_open()
        if type_name not in EXCHANGE_TYPES:
            raise ExchangeNotFound(f"unknown exchange type {type_name!r}")
        with self._lock:
            exchange = self._exchanges.get(name)
            if exchange is None:
                exchange = EXCHANGE_TYPES[type_name](name)
                self._exchanges[name] = exchange
            return exchange

    def delete_exchange(self, name: str) -> None:
        if name == DEFAULT_EXCHANGE:
            return
        with self._lock:
            self._exchanges.pop(name, None)

    def bind_queue(self, exchange_name: str, queue_name: str, binding_key: str = "") -> None:
        exchange = self._get_exchange(exchange_name)
        self._get_queue(queue_name)  # existence check
        exchange.bind(queue_name, binding_key)

    def unbind_queue(self, exchange_name: str, queue_name: str, binding_key: str = "") -> None:
        exchange = self._get_exchange(exchange_name)
        exchange.unbind(queue_name, binding_key)

    def queue_exists(self, name: str) -> bool:
        with self._lock:
            return name in self._queues

    def queue_names(self) -> List[str]:
        with self._lock:
            return sorted(self._queues)

    # -- publish / consume ------------------------------------------------------

    def publish(
        self, exchange_name: str, routing_key: str, message: Message
    ) -> int:
        """Route *message* and return the number of queues it reached.

        The default exchange routes to the queue named exactly like the
        routing key, declaring it lazily — this matches the paper's model
        where ``bind(oid, obj)`` creates the ``oid`` queue and clients
        simply publish to it by name.
        """
        self._check_open()
        if self._publish_latency is not None:
            delay = self._publish_latency()
            if delay > 0:
                time.sleep(delay)

        if exchange_name == DEFAULT_EXCHANGE:
            queue = self.declare_queue(routing_key)
            destinations = [queue.name]
        else:
            exchange = self._get_exchange(exchange_name)
            destinations = exchange.route(routing_key)

        routed = 0
        for queue_name in destinations:
            with self._lock:
                queue = self._queues.get(queue_name)
            if queue is None:
                continue
            copy = message.copy_for_queue() if routed else message
            if queue.durable:
                self.store.record_publish(queue_name, copy)
            queue.put(copy)
            routed += 1
        self.stats.on_publish(message, routed)
        if routed == 0 and exchange_name != DEFAULT_EXCHANGE:
            raise DeliveryError(
                f"message with key {routing_key!r} matched no queue on "
                f"exchange {exchange_name!r}"
            )
        return routed

    def consume(
        self,
        queue_name: str,
        callback: Callable[[Delivery], None],
        consumer_tag: str,
        prefetch: int = 1,
        auto_ack: bool = False,
    ) -> Consumer:
        self._check_open()
        queue = self._get_queue(queue_name)
        return queue.add_consumer(consumer_tag, callback, prefetch=prefetch, auto_ack=auto_ack)

    def cancel(self, queue_name: str, consumer_tag: str) -> None:
        with self._lock:
            queue = self._queues.get(queue_name)
        if queue is not None:
            queue.cancel_consumer(consumer_tag)

    def get(self, queue_name: str, timeout: Optional[float] = None) -> Optional[Message]:
        queue = self._get_queue(queue_name)
        return queue.get(timeout=timeout)

    def ack(self, delivery: Delivery) -> None:
        with self._lock:
            queue = self._queues.get(delivery.queue_name)
        if queue is None:
            return
        if queue.ack(delivery.delivery_tag):
            self.stats.on_ack()
            if queue.durable:
                self.store.record_ack(delivery.queue_name, delivery.message)

    def nack(self, delivery: Delivery, requeue: bool = True) -> None:
        with self._lock:
            queue = self._queues.get(delivery.queue_name)
        if queue is not None:
            queue.nack(delivery.delivery_tag, requeue=requeue)

    # -- lifecycle -----------------------------------------------------------------

    def restart(self) -> None:
        """Simulate a broker crash + recovery.

        All queues and consumers are destroyed; durable queues are then
        re-declared and refilled with the persistent messages that were
        never acked (§3.4).  Consumers must re-subscribe, exactly as real
        AMQP clients must re-open channels after a broker restart.
        """
        with self._lock:
            queues = list(self._queues.values())
            durable_names = [q.name for q in queues if q.durable]
            self._queues.clear()
            self._exchanges = {DEFAULT_EXCHANGE: DirectExchange("")}
        for queue in queues:
            queue.close()
        for name in durable_names:
            self.declare_queue(name, durable=True)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues.values())
            self._queues.clear()
        for queue in queues:
            queue.close()
        # A deliberately closed broker is decommissioned, not unhealthy:
        # leaving the probe registered would poison /health for the rest
        # of the process (the owner may stay referenced long after close).
        HEALTH.unregister(self._health_token)

    # -- helpers --------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise BrokerClosed(f"broker {self.name!r} is closed")

    def _get_queue(self, name: str) -> MessageQueue:
        with self._lock:
            queue = self._queues.get(name)
        if queue is None:
            raise QueueNotFound(f"queue {name!r} has not been declared")
        return queue

    def _get_exchange(self, name: str) -> Exchange:
        with self._lock:
            exchange = self._exchanges.get(name)
        if exchange is None:
            raise ExchangeNotFound(f"exchange {name!r} has not been declared")
        return exchange

    def queue_depth(self, name: str) -> int:
        """Number of ready (undelivered) messages in *name*."""
        return len(self._get_queue(name))

    def queue_stats(self, name: str) -> Dict[str, int]:
        queue = self._get_queue(name)
        return {
            "ready": len(queue),
            "unacked": queue.unacked_count,
            "consumers": queue.consumer_count,
            "published": queue.published_count,
            "delivered": queue.delivered_count,
            "acked": queue.acked_count,
            "redelivered": queue.redelivered_count,
        }
