"""The message broker: the in-process stand-in for RabbitMQ.

:class:`MessageBroker` owns named queues and exchanges and exposes the
narrow AMQP-shaped surface ObjectMQ needs:

* ``declare_queue`` / ``delete_queue`` / ``declare_exchange``
* ``bind_queue(exchange, queue, key)``
* ``publish(exchange, routing_key, message)``
* ``consume`` / ``cancel`` (push) and ``get`` (pull)
* ``ack`` / ``nack``

It also implements the reliability behaviours the paper leans on:
unacked messages are redelivered when a consumer is cancelled
(:meth:`MessageQueue.cancel_consumer`), persistent messages on durable
queues survive :meth:`restart`, and a per-call latency model lets the
benchmarks charge realistic network costs to every broker hop.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import BrokerClosed, DeliveryError, ExchangeNotFound, QueueNotFound
from repro.mom.exchange import EXCHANGE_TYPES, DirectExchange, Exchange
from repro.mom.message import Delivery, Message
from repro.mom.persistence import InMemoryMessageStore
from repro.mom.queue import Consumer, MessageQueue
from repro.telemetry.control import HEALTH
from repro.telemetry.profiling import TimedLock
from repro.telemetry.registry import REGISTRY

#: Name of the implicit default exchange (direct; routing key == queue name).
DEFAULT_EXCHANGE = ""


class BrokerStats:
    """Aggregate counters exposed for provisioners and tests."""

    def __init__(self, broker_name: str = "broker") -> None:
        # Taken on every publish/ack — the second-hottest lock in the
        # broker after the queue lock, so it is contention-metered too.
        self._lock = TimedLock(f"mom.broker.{broker_name}.stats")
        self.publishes = 0
        self.deliveries = 0
        self.acks = 0
        self.bytes_published = 0

    def on_publish(self, message: Message, queue_count: int) -> None:
        with self._lock:
            self.publishes += 1
            self.deliveries += queue_count
            self.bytes_published += message.size * max(1, queue_count)

    def on_publish_many(self, accounted: Iterable[Tuple[int, int]]) -> None:
        """Record a batch of publishes under one stats-lock acquisition.

        *accounted* yields ``(payload_size, queue_count)`` pairs — the
        batched counterpart of :meth:`on_publish`.
        """
        publishes = deliveries = total_bytes = 0
        for size, queue_count in accounted:
            publishes += 1
            deliveries += queue_count
            total_bytes += size * max(1, queue_count)
        if not publishes:
            return
        with self._lock:
            self.publishes += publishes
            self.deliveries += deliveries
            self.bytes_published += total_bytes

    def on_ack(self) -> None:
        with self._lock:
            self.acks += 1

    def on_ack_many(self, count: int) -> None:
        """Record *count* acks under one stats-lock acquisition."""
        if count <= 0:
            return
        with self._lock:
            self.acks += count

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "publishes": self.publishes,
                "deliveries": self.deliveries,
                "acks": self.acks,
                "bytes_published": self.bytes_published,
            }


class MessageBroker:
    """An AMQP-semantics message broker running inside the process.

    Args:
        store: Durable message store; defaults to a fresh in-memory store.
        publish_latency: Callable returning the seconds to sleep on every
            publish — used by live benchmarks to model broker RTT.  Defaults
            to no latency.
    """

    #: Capability flag: subscribers may pass ``batch_callback`` to
    #: :meth:`consume` and settle whole batches via :meth:`ack_many`.
    #: Adapters without the batched plane (e.g. SQS) leave this False.
    supports_batch_consume = True

    def __init__(
        self,
        store: Optional[InMemoryMessageStore] = None,
        publish_latency: Optional[Callable[[], float]] = None,
        name: str = "broker",
    ):
        self.name = name
        self.store = store if store is not None else InMemoryMessageStore()
        self._publish_latency = publish_latency
        self._lock = TimedLock(f"mom.broker.{name}")
        self._queues: Dict[str, MessageQueue] = {}
        self._exchanges: Dict[str, Exchange] = {DEFAULT_EXCHANGE: DirectExchange("")}
        self._closed = False
        self.stats = BrokerStats(name)
        # Scrape-time wiring into the unified registry: evaluated only on
        # snapshot, weakly held, so the publish hot path is untouched.
        REGISTRY.register_source(
            "mom_broker", self.stats, BrokerStats.snapshot, broker=name
        )
        self._health_token = HEALTH.register(
            f"mom:{name}", self, MessageBroker._health_probe
        )

    def _health_probe(self) -> Dict[str, object]:
        """Ops-endpoint probe: the broker accepts publishes."""
        with self._lock:
            return {
                "ok": not self._closed,
                "queues": len(self._queues),
                "exchanges": len(self._exchanges),
            }

    # -- topology -------------------------------------------------------------

    def declare_queue(
        self, name: str, durable: bool = False, exclusive: bool = False
    ) -> MessageQueue:
        """Declare (idempotently) and return the queue called *name*."""
        self._check_open()
        with self._lock:
            queue = self._queues.get(name)
            if queue is None:
                queue = MessageQueue(name, durable=durable, exclusive=exclusive)
                self._queues[name] = queue
                if durable:
                    for message in self.store.pending_for(name):
                        queue.put(message)
            return queue

    def delete_queue(self, name: str) -> None:
        with self._lock:
            queue = self._queues.pop(name, None)
            for exchange in self._exchanges.values():
                exchange.unbind_queue_everywhere(name)
        if queue is not None:
            queue.close()

    def declare_exchange(self, name: str, type_name: str = "direct") -> Exchange:
        self._check_open()
        if type_name not in EXCHANGE_TYPES:
            raise ExchangeNotFound(f"unknown exchange type {type_name!r}")
        with self._lock:
            exchange = self._exchanges.get(name)
            if exchange is None:
                exchange = EXCHANGE_TYPES[type_name](name)
                self._exchanges[name] = exchange
            return exchange

    def delete_exchange(self, name: str) -> None:
        if name == DEFAULT_EXCHANGE:
            return
        with self._lock:
            self._exchanges.pop(name, None)

    def bind_queue(self, exchange_name: str, queue_name: str, binding_key: str = "") -> None:
        exchange = self._get_exchange(exchange_name)
        self._get_queue(queue_name)  # existence check
        exchange.bind(queue_name, binding_key)

    def unbind_queue(self, exchange_name: str, queue_name: str, binding_key: str = "") -> None:
        exchange = self._get_exchange(exchange_name)
        exchange.unbind(queue_name, binding_key)

    def queue_exists(self, name: str) -> bool:
        with self._lock:
            return name in self._queues

    def exchange_has_bindings(self, name: str) -> bool:
        """True when exchange *name* exists and has at least one binding.

        Publishers use this to skip serializing multicasts that would
        route nowhere (an empty group is a no-op by contract); racing a
        concurrent bind is benign — the same message could equally have
        been published just before the bind.  Lock-free on purpose: this
        probe runs once per commit on the notification hot path, and a
        bare dict read is atomic under CPython.
        """
        exchange = self._exchanges.get(name)
        return exchange is not None and exchange.has_bindings()

    def queue_names(self) -> List[str]:
        with self._lock:
            return sorted(self._queues)

    # -- publish / consume ------------------------------------------------------

    def publish(
        self, exchange_name: str, routing_key: str, message: Message
    ) -> int:
        """Route *message* and return the number of queues it reached.

        The default exchange routes to the queue named exactly like the
        routing key, declaring it lazily — this matches the paper's model
        where ``bind(oid, obj)`` creates the ``oid`` queue and clients
        simply publish to it by name.

        Zero-copy contract: delivered to a single queue (the unicast RPC
        hot path), the message object — and therefore its payload buffer,
        which may be a ``memoryview`` — is handed through untouched.
        Envelope copies happen only on true fanout (per-queue delivery
        state), and payload bytes are materialized only for the durable
        journal.
        """
        self._check_open()
        if self._publish_latency is not None:
            delay = self._publish_latency()
            if delay > 0:
                time.sleep(delay)
        routed = self._route_one(exchange_name, routing_key, message)
        self.stats.on_publish(message, routed)
        if routed == 0 and exchange_name != DEFAULT_EXCHANGE:
            raise DeliveryError(
                f"message with key {routing_key!r} matched no queue on "
                f"exchange {exchange_name!r}"
            )
        return routed

    def publish_many(
        self, items: Iterable[Tuple[str, str, Message]]
    ) -> int:
        """Publish a batch of ``(exchange, routing_key, message)`` at once.

        The broker-side half of publisher buffering: the latency model is
        charged **once** for the whole batch (that is the point — one
        broker round trip amortized over N messages), messages bound for
        the same queue are enqueued through a single
        :meth:`MessageQueue.put_many` lock cycle, and the stats lock is
        taken once.  Per-message routing semantics (lazy default-exchange
        declaration, fanout copies, durable journalling) are identical to
        :meth:`publish`.  Returns total queues reached; a non-default
        exchange item that matches no queue raises :class:`DeliveryError`
        *after* the rest of the batch has been delivered, preserving
        at-least-once for every routable message.
        """
        batch = list(items)
        if not batch:
            return 0
        self._check_open()
        if self._publish_latency is not None:
            delay = self._publish_latency()
            if delay > 0:
                time.sleep(delay)

        # Group by (exchange, routing key) so routing is resolved once per
        # distinct destination set, then group by queue so each
        # destination pays one lock/dispatch cycle for the whole flush.
        groups: Dict[Tuple[str, str], List[Message]] = {}
        for exchange_name, routing_key, message in batch:
            groups.setdefault((exchange_name, routing_key), []).append(message)
        per_queue: Dict[str, Tuple[MessageQueue, List[Message]]] = {}
        accounted: List[Tuple[int, int]] = []
        unroutable: Optional[Tuple[str, str]] = None
        total = 0
        for (exchange_name, routing_key), messages in groups.items():
            queues = self._resolve_queues(exchange_name, routing_key)
            routed = len(queues)
            total += routed * len(messages)
            for message in messages:
                accounted.append((message.size, routed))
            if routed == 0:
                if exchange_name != DEFAULT_EXCHANGE and unroutable is None:
                    unroutable = (exchange_name, routing_key)
                continue
            for message in messages:
                for index, queue in enumerate(queues):
                    copy = message.copy_for_queue() if index else message
                    if queue.durable:
                        copy.materialize()
                        self.store.record_publish(queue.name, copy)
                    entry = per_queue.get(queue.name)
                    if entry is None:
                        per_queue[queue.name] = (queue, [copy])
                    else:
                        entry[1].append(copy)
        for queue, messages in per_queue.values():
            queue.put_many(messages)
        self.stats.on_publish_many(accounted)
        if unroutable is not None:
            raise DeliveryError(
                f"message with key {unroutable[1]!r} matched no queue on "
                f"exchange {unroutable[0]!r}"
            )
        return total

    def _resolve_queues(
        self, exchange_name: str, routing_key: str
    ) -> List[MessageQueue]:
        """Live destination queues for one (exchange, routing key) pair."""
        if exchange_name == DEFAULT_EXCHANGE:
            destinations = [self.declare_queue(routing_key).name]
        else:
            exchange = self._get_exchange(exchange_name)
            destinations = exchange.route(routing_key)
        with self._lock:
            return [
                queue
                for queue in (self._queues.get(name) for name in destinations)
                if queue is not None
            ]

    def _resolve_destinations(
        self, exchange_name: str, routing_key: str, message: Message
    ) -> List[Tuple[MessageQueue, Message]]:
        """Route *message*, pairing each destination queue with the envelope
        it should enqueue (the original for the first queue, copies for
        fanout siblings)."""
        resolved: List[Tuple[MessageQueue, Message]] = []
        for queue in self._resolve_queues(exchange_name, routing_key):
            copy = message.copy_for_queue() if resolved else message
            if queue.durable:
                # The journal snapshots payloads; force bytes exactly once
                # here so memoryview publishers stay copy-free elsewhere.
                copy.materialize()
            resolved.append((queue, copy))
        return resolved

    def _route_one(
        self, exchange_name: str, routing_key: str, message: Message
    ) -> int:
        routed = 0
        for queue, copy in self._resolve_destinations(
            exchange_name, routing_key, message
        ):
            if queue.durable:
                self.store.record_publish(queue.name, copy)
            queue.put(copy)
            routed += 1
        return routed

    def consume(
        self,
        queue_name: str,
        callback: Callable[[Delivery], None],
        consumer_tag: str,
        prefetch: int = 1,
        auto_ack: bool = False,
        batch_callback: Optional[Callable[[List[Delivery]], None]] = None,
    ) -> Consumer:
        self._check_open()
        queue = self._get_queue(queue_name)
        return queue.add_consumer(
            consumer_tag,
            callback,
            prefetch=prefetch,
            auto_ack=auto_ack,
            batch_callback=batch_callback,
        )

    def cancel(self, queue_name: str, consumer_tag: str) -> None:
        with self._lock:
            queue = self._queues.get(queue_name)
        if queue is not None:
            queue.cancel_consumer(consumer_tag)

    def get(self, queue_name: str, timeout: Optional[float] = None) -> Optional[Message]:
        queue = self._get_queue(queue_name)
        return queue.get(timeout=timeout)

    def ack(self, delivery: Delivery) -> None:
        with self._lock:
            queue = self._queues.get(delivery.queue_name)
        if queue is None:
            return
        if queue.ack(delivery.delivery_tag):
            self.stats.on_ack()
            if queue.durable:
                self.store.record_ack(delivery.queue_name, delivery.message)

    def ack_many(self, deliveries: List[Delivery]) -> int:
        """Acknowledge a batch of deliveries; returns how many were acked.

        The batched counterpart of :meth:`ack`: one queue-lock cycle per
        destination queue, one stats update, and one journal sweep for
        durable queues — a consumer that just processed a prefetch batch
        settles the whole window in a handful of lock trips instead of
        4 × N.  Unknown tags are skipped, exactly as :meth:`ack` ignores
        them.
        """
        if not deliveries:
            return 0
        by_queue: Dict[str, List[Delivery]] = {}
        for delivery in deliveries:
            by_queue.setdefault(delivery.queue_name, []).append(delivery)
        total = 0
        for queue_name, queue_deliveries in by_queue.items():
            with self._lock:
                queue = self._queues.get(queue_name)
            if queue is None:
                continue
            acked_tags = queue.ack_many(
                [d.delivery_tag for d in queue_deliveries]
            )
            if not acked_tags:
                continue
            total += len(acked_tags)
            self.stats.on_ack_many(len(acked_tags))
            if queue.durable:
                tag_set = set(acked_tags)
                self.store.record_ack_many(
                    queue_name,
                    [
                        d.message
                        for d in queue_deliveries
                        if d.delivery_tag in tag_set
                    ],
                )
        return total

    def nack(self, delivery: Delivery, requeue: bool = True) -> None:
        with self._lock:
            queue = self._queues.get(delivery.queue_name)
        if queue is not None:
            queue.nack(delivery.delivery_tag, requeue=requeue)

    # -- lifecycle -----------------------------------------------------------------

    def restart(self) -> None:
        """Simulate a broker crash + recovery.

        All queues and consumers are destroyed; durable queues are then
        re-declared and refilled with the persistent messages that were
        never acked (§3.4).  Consumers must re-subscribe, exactly as real
        AMQP clients must re-open channels after a broker restart.
        """
        with self._lock:
            queues = list(self._queues.values())
            durable_names = [q.name for q in queues if q.durable]
            self._queues.clear()
            self._exchanges = {DEFAULT_EXCHANGE: DirectExchange("")}
        for queue in queues:
            queue.close()
        for name in durable_names:
            self.declare_queue(name, durable=True)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues.values())
            self._queues.clear()
        for queue in queues:
            queue.close()
        # A deliberately closed broker is decommissioned, not unhealthy:
        # leaving the probe registered would poison /health for the rest
        # of the process (the owner may stay referenced long after close).
        HEALTH.unregister(self._health_token)

    # -- helpers --------------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise BrokerClosed(f"broker {self.name!r} is closed")

    def _get_queue(self, name: str) -> MessageQueue:
        with self._lock:
            queue = self._queues.get(name)
        if queue is None:
            raise QueueNotFound(f"queue {name!r} has not been declared")
        return queue

    def _get_exchange(self, name: str) -> Exchange:
        with self._lock:
            exchange = self._exchanges.get(name)
        if exchange is None:
            raise ExchangeNotFound(f"exchange {name!r} has not been declared")
        return exchange

    def queue_depth(self, name: str) -> int:
        """Number of ready (undelivered) messages in *name*."""
        return len(self._get_queue(name))

    def queue_stats(self, name: str) -> Dict[str, int]:
        queue = self._get_queue(name)
        return {
            "ready": len(queue),
            "unacked": queue.unacked_count,
            "consumers": queue.consumer_count,
            "published": queue.published_count,
            "delivered": queue.delivered_count,
            "acked": queue.acked_count,
            "redelivered": queue.redelivered_count,
        }
