"""SQS-semantics message service + adapter for ObjectMQ.

The paper closes §3.4 noting that ObjectMQ's architecture "is generic so
that we could use other cloud scalable messaging services such as Amazon
SQS or Microsoft Service Bus".  This module substantiates that claim:

* :class:`SqsService` implements the Amazon SQS *model* — named queues,
  pull-based ``receive_message`` with **visibility timeout**, explicit
  ``delete_message`` (the ack), automatic reappearance of unacked
  messages, long polling, and approximate-count introspection.  There is
  no exchange concept and no push delivery, exactly like the real thing.
* :class:`SqsBrokerAdapter` exposes the :class:`~repro.mom.MessageBroker`
  surface ObjectMQ expects on top of an :class:`SqsService`: fanout
  exchanges become client-side lists of destination queues, push
  consumers become poller threads, acks become deletes.

The adapter passes the same ObjectMQ test matrix as the AMQP-style
broker, demonstrating that the middleware is MOM-agnostic.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.errors import BrokerClosed, DeliveryError, ExchangeNotFound, QueueNotFound
from repro.mom.broker_server import BrokerStats
from repro.mom.message import Delivery, Message

#: Default visibility timeout, seconds (SQS default is 30 s).
DEFAULT_VISIBILITY_TIMEOUT = 30.0


@dataclass(order=True)
class _InFlight:
    """A received-but-undeleted message, keyed by visibility deadline."""

    deadline: float
    receipt_handle: str = field(compare=False)
    message: Message = field(compare=False)


class SqsQueue:
    """One SQS queue: visible heap + in-flight set with visibility timeout."""

    def __init__(self, name: str, visibility_timeout: float = DEFAULT_VISIBILITY_TIMEOUT):
        self.name = name
        self.visibility_timeout = visibility_timeout
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._visible: List = []  # heap of (enqueue_seq, Message)
        self._seq = itertools.count()
        self._in_flight: Dict[str, _InFlight] = {}
        self._receipt_counter = itertools.count(1)
        self.sent_count = 0
        self.deleted_count = 0
        self.reappeared_count = 0

    # -- producer ----------------------------------------------------------------

    def send(self, message: Message) -> None:
        with self._lock:
            heapq.heappush(self._visible, (next(self._seq), message))
            self.sent_count += 1
            self._not_empty.notify()

    # -- consumer -----------------------------------------------------------------

    def receive(
        self, wait_seconds: float = 0.0, visibility_timeout: Optional[float] = None
    ) -> Optional[tuple]:
        """Receive one message; returns (receipt_handle, message) or None.

        The message becomes invisible for the visibility timeout; unless
        deleted before the deadline it reappears for other consumers —
        SQS's at-least-once contract.
        """
        deadline = time.monotonic() + max(0.0, wait_seconds)
        with self._not_empty:
            while True:
                self._requeue_expired_locked()
                if self._visible:
                    _seq, message = heapq.heappop(self._visible)
                    timeout = (
                        self.visibility_timeout
                        if visibility_timeout is None
                        else visibility_timeout
                    )
                    handle = f"{self.name}-rh-{next(self._receipt_counter)}"
                    self._in_flight[handle] = _InFlight(
                        deadline=time.monotonic() + timeout,
                        receipt_handle=handle,
                        message=message,
                    )
                    return handle, message
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                # Wake up early enough to catch visibility expirations.
                next_expiry = min(
                    (f.deadline for f in self._in_flight.values()),
                    default=deadline,
                )
                self._not_empty.wait(
                    max(0.001, min(remaining, next_expiry - time.monotonic()))
                )

    def delete(self, receipt_handle: str) -> bool:
        """Acknowledge (delete) a received message."""
        with self._lock:
            entry = self._in_flight.pop(receipt_handle, None)
            if entry is not None:
                self.deleted_count += 1
                return True
            return False

    def change_visibility(self, receipt_handle: str, timeout: float) -> bool:
        """Extend or shrink a message's invisibility window (SQS API)."""
        with self._lock:
            entry = self._in_flight.get(receipt_handle)
            if entry is None:
                return False
            entry.deadline = time.monotonic() + max(0.0, timeout)
            self._not_empty.notify()
            return True

    def _requeue_expired_locked(self) -> None:
        now = time.monotonic()
        expired = [h for h, f in self._in_flight.items() if f.deadline <= now]
        for handle in expired:
            entry = self._in_flight.pop(handle)
            requeued = entry.message.copy_for_queue()
            requeued.redelivered = True
            heapq.heappush(self._visible, (next(self._seq), requeued))
            self.reappeared_count += 1
        if expired:
            self._not_empty.notify_all()

    # -- introspection ------------------------------------------------------------

    @property
    def approximate_visible(self) -> int:
        with self._lock:
            self._requeue_expired_locked()
            return len(self._visible)

    @property
    def approximate_in_flight(self) -> int:
        with self._lock:
            return len(self._in_flight)


class SqsService:
    """The queue service itself: create/delete/list/send/receive."""

    def __init__(self, visibility_timeout: float = DEFAULT_VISIBILITY_TIMEOUT):
        self.visibility_timeout = visibility_timeout
        self._lock = threading.Lock()
        self._queues: Dict[str, SqsQueue] = {}

    def create_queue(self, name: str) -> SqsQueue:
        with self._lock:
            queue = self._queues.get(name)
            if queue is None:
                queue = SqsQueue(name, visibility_timeout=self.visibility_timeout)
                self._queues[name] = queue
            return queue

    def delete_queue(self, name: str) -> None:
        with self._lock:
            self._queues.pop(name, None)

    def get_queue(self, name: str) -> SqsQueue:
        with self._lock:
            queue = self._queues.get(name)
        if queue is None:
            raise QueueNotFound(f"SQS queue {name!r} does not exist")
        return queue

    def queue_exists(self, name: str) -> bool:
        with self._lock:
            return name in self._queues

    def list_queues(self) -> List[str]:
        with self._lock:
            return sorted(self._queues)


class _Poller:
    """Background receive-loop emulating a push consumer over SQS."""

    def __init__(
        self,
        queue: SqsQueue,
        callback: Callable[[Delivery], None],
        consumer_tag: str,
        auto_ack: bool,
        adapter: "SqsBrokerAdapter",
    ):
        self.queue = queue
        self.callback = callback
        self.consumer_tag = consumer_tag
        self.auto_ack = auto_ack
        self.adapter = adapter
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"sqs-poller-{consumer_tag}", daemon=True
        )
        self._tag_counter = itertools.count(1)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    def _run(self) -> None:
        while not self._stop.is_set():
            received = self.queue.receive(wait_seconds=0.1)
            if received is None:
                continue
            handle, message = received
            delivery_tag = next(self._tag_counter)
            delivery = Delivery(
                delivery_tag=delivery_tag,
                queue_name=self.queue.name,
                consumer_tag=self.consumer_tag,
                message=message,
            )
            self.adapter.register_receipt(self.queue.name, delivery_tag, handle)
            try:
                self.callback(delivery)
            except Exception:  # noqa: BLE001 - consumer bugs must not kill polling
                pass
            if self.auto_ack:
                self.adapter.ack(delivery)


class SqsBrokerAdapter:
    """Presents the MessageBroker surface over an SqsService.

    Differences handled here so ObjectMQ needs no changes:

    * *fanout exchanges* — SQS has none; the adapter keeps a binding table
      and sends one copy per bound queue (what SNS→SQS fanout does);
    * *push consumers* — emulated with per-consumer poller threads;
    * *ack/nack* — mapped to ``delete_message`` / visibility reset.
    """

    def __init__(
        self,
        service: Optional[SqsService] = None,
        visibility_timeout: float = 5.0,
    ):
        self.service = service if service is not None else SqsService(
            visibility_timeout=visibility_timeout
        )
        self._lock = threading.Lock()
        self._fanouts: Dict[str, Set[str]] = {}
        self._pollers: Dict[tuple, _Poller] = {}
        # (queue, delivery_tag) -> receipt handle, for ack mapping.
        self._receipts: Dict[tuple, str] = {}
        self._closed = False
        self.stats = BrokerStats()

    # -- topology ------------------------------------------------------------------

    def declare_queue(self, name: str, durable: bool = False, exclusive: bool = False):
        self._check_open()
        return self.service.create_queue(name)

    def delete_queue(self, name: str) -> None:
        with self._lock:
            for queues in self._fanouts.values():
                queues.discard(name)
            pollers = [key for key in self._pollers if key[0] == name]
            for key in pollers:
                self._pollers.pop(key).stop()
        self.service.delete_queue(name)

    def declare_exchange(self, name: str, type_name: str = "direct"):
        self._check_open()
        if type_name == "fanout":
            with self._lock:
                self._fanouts.setdefault(name, set())
        # Direct exchanges other than the default are not needed by
        # ObjectMQ; the default exchange is implicit.
        return name

    def bind_queue(self, exchange_name: str, queue_name: str, binding_key: str = "") -> None:
        with self._lock:
            if exchange_name not in self._fanouts:
                raise ExchangeNotFound(
                    f"exchange {exchange_name!r} has not been declared"
                )
            self._fanouts[exchange_name].add(queue_name)

    def unbind_queue(self, exchange_name: str, queue_name: str, binding_key: str = "") -> None:
        with self._lock:
            queues = self._fanouts.get(exchange_name)
            if queues is not None:
                queues.discard(queue_name)

    def queue_exists(self, name: str) -> bool:
        return self.service.queue_exists(name)

    # -- publish / consume ----------------------------------------------------------

    def publish(self, exchange_name: str, routing_key: str, message: Message) -> int:
        self._check_open()
        if exchange_name == "":
            self.service.create_queue(routing_key).send(message)
            self.stats.on_publish(message, 1)
            return 1
        with self._lock:
            destinations = sorted(self._fanouts.get(exchange_name, ()))
        if exchange_name not in self._fanouts:
            raise ExchangeNotFound(f"exchange {exchange_name!r} has not been declared")
        routed = 0
        for queue_name in destinations:
            if not self.service.queue_exists(queue_name):
                continue
            copy = message.copy_for_queue() if routed else message
            self.service.get_queue(queue_name).send(copy)
            routed += 1
        self.stats.on_publish(message, routed)
        if routed == 0:
            raise DeliveryError(
                f"message with key {routing_key!r} matched no queue on "
                f"exchange {exchange_name!r}"
            )
        return routed

    def consume(
        self,
        queue_name: str,
        callback: Callable[[Delivery], None],
        consumer_tag: str,
        prefetch: int = 1,
        auto_ack: bool = False,
    ):
        self._check_open()
        queue = self.service.get_queue(queue_name)
        poller = _Poller(queue, callback, consumer_tag, auto_ack, adapter=self)
        with self._lock:
            self._pollers[(queue_name, consumer_tag)] = poller
        return poller

    def cancel(self, queue_name: str, consumer_tag: str) -> None:
        with self._lock:
            poller = self._pollers.pop((queue_name, consumer_tag), None)
        if poller is not None:
            poller.stop()
            # Unacked receipts of this consumer reappear after their
            # visibility timeout — SQS's (slower) analogue of AMQP's
            # immediate requeue-on-cancel.

    def get(self, queue_name: str, timeout: Optional[float] = None) -> Optional[Message]:
        queue = self.service.get_queue(queue_name)
        received = queue.receive(wait_seconds=timeout or 0.0)
        if received is None:
            return None
        handle, message = received
        queue.delete(handle)  # pull-mode auto-ack
        return message

    # -- acks ------------------------------------------------------------------------

    def register_receipt(self, queue_name: str, delivery_tag: int, handle: str) -> None:
        with self._lock:
            self._receipts[(queue_name, delivery_tag)] = handle

    def ack(self, delivery: Delivery) -> None:
        with self._lock:
            handle = self._receipts.pop(
                (delivery.queue_name, delivery.delivery_tag), None
            )
        if handle is None:
            return
        try:
            if self.service.get_queue(delivery.queue_name).delete(handle):
                self.stats.on_ack()
        except QueueNotFound:
            pass

    def nack(self, delivery: Delivery, requeue: bool = True) -> None:
        with self._lock:
            handle = self._receipts.pop(
                (delivery.queue_name, delivery.delivery_tag), None
            )
        if handle is None:
            return
        try:
            queue = self.service.get_queue(delivery.queue_name)
        except QueueNotFound:
            return
        if requeue:
            queue.change_visibility(handle, 0.0)  # reappear immediately
        else:
            queue.delete(handle)

    # -- introspection ------------------------------------------------------------------

    def queue_depth(self, name: str) -> int:
        return self.service.get_queue(name).approximate_visible

    def queue_stats(self, name: str) -> Dict[str, int]:
        queue = self.service.get_queue(name)
        return {
            "ready": queue.approximate_visible,
            "unacked": queue.approximate_in_flight,
            "consumers": sum(1 for key in self._pollers if key[0] == name),
            "published": queue.sent_count,
            "delivered": queue.sent_count - queue.approximate_visible,
            "acked": queue.deleted_count,
            "redelivered": queue.reappeared_count,
        }

    # -- lifecycle -------------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pollers = list(self._pollers.values())
            self._pollers.clear()
        for poller in pollers:
            poller.stop()
        for poller in pollers:
            poller.join(timeout=1.0)

    def _check_open(self) -> None:
        if self._closed:
            raise BrokerClosed("SQS adapter is closed")
