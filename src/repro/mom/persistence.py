"""Durable message store backing broker restarts.

The paper (§3.4) notes that "the messaging system can be instrumented to
store all the messages present in the queues, so that when the system is
restarted, the unprocessed messages can be recovered".  This module
provides that instrumentation: persistent messages published to durable
queues are journalled, removed on ack, and replayed into freshly declared
queues after a restart.

Two store implementations share one interface:

* :class:`InMemoryMessageStore` — survives *broker* restarts within one
  process (the scenario the experiments exercise);
* :class:`FileMessageStore` — additionally survives process restarts by
  journalling to an append-only file.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, Iterable, List, Tuple

from repro.mom.message import Message, PERSISTENT


class InMemoryMessageStore:
    """Journal of persistent messages keyed by (queue, message_id)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, int], Message] = {}

    def record_publish(self, queue_name: str, message: Message) -> None:
        if message.delivery_mode != PERSISTENT:
            return
        with self._lock:
            self._entries[(queue_name, message.message_id)] = message

    def record_ack(self, queue_name: str, message: Message) -> None:
        with self._lock:
            self._entries.pop((queue_name, message.message_id), None)

    def record_ack_many(self, queue_name: str, messages: Iterable[Message]) -> None:
        """Drop a batch of journal entries under one store-lock cycle."""
        with self._lock:
            for message in messages:
                self._entries.pop((queue_name, message.message_id), None)

    def pending_for(self, queue_name: str) -> List[Message]:
        """Messages published to *queue_name* but never acked, in id order."""
        with self._lock:
            items = [
                (mid, msg)
                for (qname, mid), msg in self._entries.items()
                if qname == queue_name
            ]
        items.sort(key=lambda pair: pair[0])
        return [msg.copy_for_queue() for _, msg in items]

    def queue_names(self) -> List[str]:
        with self._lock:
            return sorted({qname for (qname, _mid) in self._entries})

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class FileMessageStore(InMemoryMessageStore):
    """Append-only JSON-lines journal; compacted on load.

    Record format: one JSON object per line, ``op`` is ``pub`` or ``ack``.
    Payload bytes are stored latin-1-escaped, which round-trips arbitrary
    bytes without a base64 dependency.
    """

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        self._file_lock = threading.Lock()
        if os.path.exists(path):
            self._load()

    def _load(self) -> None:
        pending: Dict[Tuple[str, int], Message] = {}
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                key = (record["queue"], record["message_id"])
                if record["op"] == "pub":
                    pending[key] = Message(
                        body=record["body"].encode("latin-1"),
                        routing_key=record["routing_key"],
                        reply_to=record.get("reply_to"),
                        correlation_id=record.get("correlation_id"),
                        headers=record.get("headers", {}),
                        delivery_mode=PERSISTENT,
                    )
                else:
                    pending.pop(key, None)
        with self._lock:
            # Re-key under the freshly assigned message ids so acks recorded
            # after the reload match.
            self._entries = {
                (qname, msg.message_id): msg for (qname, _), msg in pending.items()
            }
        self._compact()

    def _append(self, record: dict) -> None:
        with self._file_lock:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record) + "\n")

    def _compact(self) -> None:
        with self._lock:
            entries = list(self._entries.items())
        with self._file_lock:
            with open(self.path, "w", encoding="utf-8") as fh:
                for (qname, mid), msg in entries:
                    fh.write(json.dumps(self._pub_record(qname, mid, msg)) + "\n")

    @staticmethod
    def _pub_record(queue_name: str, message_id: int, message: Message) -> dict:
        return {
            "op": "pub",
            "queue": queue_name,
            "message_id": message_id,
            "body": message.body.decode("latin-1"),
            "routing_key": message.routing_key,
            "reply_to": message.reply_to,
            "correlation_id": message.correlation_id,
            "headers": message.headers,
        }

    def record_publish(self, queue_name: str, message: Message) -> None:
        if message.delivery_mode != PERSISTENT:
            return
        super().record_publish(queue_name, message)
        self._append(self._pub_record(queue_name, message.message_id, message))

    def record_ack(self, queue_name: str, message: Message) -> None:
        had = (queue_name, message.message_id) in self._entries
        super().record_ack(queue_name, message)
        if had:
            self._append(
                {"op": "ack", "queue": queue_name, "message_id": message.message_id}
            )

    def record_ack_many(self, queue_name: str, messages: Iterable[Message]) -> None:
        # The journal needs one ack record per message, so the file store
        # cannot use the base class's single-lock bulk pop.
        for message in messages:
            self.record_ack(queue_name, message)
