"""High-availability broker clustering.

The paper closes §3.4 with: "high availability can be achieved by using
clusters of messaging brokers".  :class:`BrokerCluster` reproduces the
standard mirrored-queue deployment: a primary broker serves all traffic
while its durable state (the persistent-message journal) is shared with the
standby nodes.  When the primary fails, the next standby is promoted and
re-hydrates every durable queue from the shared journal, so no persistent
message that was published-but-unacked is lost across the failover.

Consumers must re-subscribe after failover (as with real AMQP clients); the
cluster exposes ``generation`` so ObjectMQ brokers can detect that and
re-bind their remote objects.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import BrokerClosed
from repro.mom.broker_server import MessageBroker
from repro.mom.message import Delivery, Message
from repro.mom.persistence import InMemoryMessageStore
from repro.telemetry.profiling import TimedLock


class BrokerCluster:
    """A primary/standby group of :class:`MessageBroker` nodes.

    Args:
        size: Total number of nodes (1 primary + size-1 standbys).
        publish_latency: Optional latency model passed to every node.
    """

    def __init__(
        self,
        size: int = 2,
        publish_latency: Optional[Callable[[], float]] = None,
    ):
        if size < 1:
            raise ValueError("cluster size must be >= 1")
        self._store = InMemoryMessageStore()
        self._publish_latency = publish_latency
        # Every facade call resolves `active` through this lock: on the
        # hot path it guards one list index, so its hold time should be
        # negligible — the contention series proves (or disproves) that.
        self._lock = TimedLock("mom.cluster")
        self._nodes: List[MessageBroker] = [
            MessageBroker(
                store=self._store,
                publish_latency=publish_latency,
                name=f"node-{i}",
            )
            for i in range(size)
        ]
        self._active_index = 0
        self.generation = 0
        self._failover_listeners: List[Callable[[int], None]] = []
        # Durable queue *definitions* survive failover even when empty
        # (mirrored-queue semantics): track them cluster-side.
        self._durable_queues: set = set()

    # -- membership -------------------------------------------------------------

    @property
    def active(self) -> MessageBroker:
        """The broker node currently serving traffic."""
        with self._lock:
            return self._nodes[self._active_index]

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._nodes)

    def on_failover(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with the new generation after failover."""
        self._failover_listeners.append(listener)

    def fail_primary(self) -> MessageBroker:
        """Kill the active node and promote the next standby.

        Returns the newly active broker.  Raises :class:`BrokerClosed` when
        no standby remains.
        """
        with self._lock:
            dead = self._nodes.pop(self._active_index)
            if not self._nodes:
                self._nodes.append(dead)  # keep invariants for repr/debug
                raise BrokerClosed("no standby broker left to promote")
            self._active_index = 0
            promoted = self._nodes[0]
            self.generation += 1
            generation = self.generation
        dead.close()
        # Re-hydrate durable queues on the promoted node: queue definitions
        # from the cluster-side registry, contents from the shared journal.
        for queue_name in sorted(self._durable_queues | set(self._store.queue_names())):
            if not promoted.queue_exists(queue_name):
                promoted.declare_queue(queue_name, durable=True)
        for listener in list(self._failover_listeners):
            listener(generation)
        return promoted

    def add_standby(self) -> MessageBroker:
        """Grow the cluster with a fresh standby sharing the journal."""
        with self._lock:
            node = MessageBroker(
                store=self._store,
                publish_latency=self._publish_latency,
                name=f"node-{self.generation}-{len(self._nodes)}",
            )
            self._nodes.append(node)
            return node

    # -- broker facade ------------------------------------------------------------
    # The cluster quacks like a MessageBroker so ObjectMQ can be pointed at
    # either interchangeably.

    def declare_queue(self, name: str, durable: bool = False, exclusive: bool = False):
        if durable:
            self._durable_queues.add(name)
        return self.active.declare_queue(name, durable=durable, exclusive=exclusive)

    def delete_queue(self, name: str) -> None:
        self.active.delete_queue(name)

    def declare_exchange(self, name: str, type_name: str = "direct"):
        return self.active.declare_exchange(name, type_name)

    def bind_queue(self, exchange_name: str, queue_name: str, binding_key: str = "") -> None:
        self.active.bind_queue(exchange_name, queue_name, binding_key)

    def unbind_queue(self, exchange_name: str, queue_name: str, binding_key: str = "") -> None:
        self.active.unbind_queue(exchange_name, queue_name, binding_key)

    def publish(self, exchange_name: str, routing_key: str, message: Message) -> int:
        return self.active.publish(exchange_name, routing_key, message)

    def publish_many(self, items) -> int:
        """Batched publish on the active node (see
        :meth:`MessageBroker.publish_many`).  A failover between flushes
        simply lands the next batch on the promoted node — the shared
        durable journal carries persistent messages across."""
        return self.active.publish_many(items)

    #: The facade inherits the batched consume/ack plane from its nodes.
    supports_batch_consume = True

    def consume(
        self,
        queue_name,
        callback,
        consumer_tag,
        prefetch: int = 1,
        auto_ack: bool = False,
        batch_callback=None,
    ):
        return self.active.consume(
            queue_name,
            callback,
            consumer_tag,
            prefetch=prefetch,
            auto_ack=auto_ack,
            batch_callback=batch_callback,
        )

    def cancel(self, queue_name: str, consumer_tag: str) -> None:
        self.active.cancel(queue_name, consumer_tag)

    def get(self, queue_name: str, timeout: Optional[float] = None) -> Optional[Message]:
        return self.active.get(queue_name, timeout=timeout)

    def ack(self, delivery: Delivery) -> None:
        self.active.ack(delivery)

    def ack_many(self, deliveries: List[Delivery]) -> int:
        return self.active.ack_many(deliveries)

    def nack(self, delivery: Delivery, requeue: bool = True) -> None:
        self.active.nack(delivery, requeue=requeue)

    def queue_exists(self, name: str) -> bool:
        return self.active.queue_exists(name)

    def exchange_has_bindings(self, name: str) -> bool:
        return self.active.exchange_has_bindings(name)

    def queue_depth(self, name: str) -> int:
        return self.active.queue_depth(name)

    def queue_stats(self, name: str):
        return self.active.queue_stats(name)

    def close(self) -> None:
        with self._lock:
            nodes = list(self._nodes)
        for node in nodes:
            node.close()
