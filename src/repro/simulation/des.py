"""Discrete-event simulation core: clock + event heap.

A minimal, dependency-free DES kernel: events are (time, seq, callback)
tuples on a heap; ``run_until`` drains them in order.  The auto-scaling
experiments build a G/G/c queueing simulation on top of it
(:mod:`repro.simulation.server`).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventLoop:
    """Monotonic simulated clock with an ordered event queue."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._stopped = False

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run *callback* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run *callback* at absolute simulated time *when*."""
        if when < self.now:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._heap, (when, next(self._seq), callback))

    def stop(self) -> None:
        self._stopped = True

    @property
    def pending(self) -> int:
        return len(self._heap)

    def run_until(self, end_time: Optional[float] = None) -> float:
        """Process events until the heap drains or *end_time* is reached.

        Returns the final clock value.  The clock advances to *end_time*
        even if the heap drains earlier.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            when, _seq, callback = self._heap[0]
            if end_time is not None and when > end_time:
                break
            heapq.heappop(self._heap)
            self.now = when
            callback()
        if end_time is not None and not self._stopped:
            self.now = max(self.now, end_time)
        return self.now
