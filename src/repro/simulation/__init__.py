"""Discrete-event simulation substrate for the auto-scaling experiments."""

from repro.simulation.autoscale import (
    AutoscaleSimulation,
    ControlRecord,
    ShardedAutoscaleSimulation,
    ShardedSimResult,
    SimConfig,
    SimResult,
    split_arrivals,
)
from repro.simulation.des import EventLoop
from repro.simulation.metrics import (
    BoxplotStats,
    boxplot_stats,
    bucket_by_time,
    fraction_above,
    percentile,
)
from repro.simulation.server import (
    CompletedRequest,
    ServerPool,
    ServiceTimeDistribution,
    poisson_arrival_times,
)

__all__ = [
    "AutoscaleSimulation",
    "BoxplotStats",
    "CompletedRequest",
    "ControlRecord",
    "EventLoop",
    "ServerPool",
    "ServiceTimeDistribution",
    "ShardedAutoscaleSimulation",
    "ShardedSimResult",
    "SimConfig",
    "SimResult",
    "boxplot_stats",
    "bucket_by_time",
    "fraction_above",
    "percentile",
    "poisson_arrival_times",
    "split_arrivals",
]
