"""G/G/c queueing simulation of the SyncService pool.

The paper models each synchronization server as a G/G/1 queue fed from a
single shared request queue (Fig 5) — which, for the pool as a whole, is
the classic central-queue multi-server system.  :class:`ServerPool`
simulates it event-by-event on the DES kernel:

* an arrival starts service immediately when a server slot is free,
  otherwise waits FIFO in the shared queue;
* service times are drawn from a Gamma distribution with the configured
  mean and variance (Gamma is the standard maximum-entropy-ish choice for
  positive service times and lets us hit the paper's (s, σ_b²) exactly);
* capacity changes take effect immediately for scale-up (new instances
  start draining the queue) and gracefully for scale-down (busy servers
  finish their current request; the slot then disappears), matching how
  the Supervisor activates and passivates SyncService instances;
* an optional ``spawn_delay`` models instance start-up time, producing
  the short response-time spikes the paper observes at scaling moments.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple

from repro.simulation.des import EventLoop


class ServiceTimeDistribution:
    """Gamma service times with exact mean/variance (Table 3 defaults)."""

    def __init__(
        self,
        mean: float = 0.050,
        variance: float = 200e-6,
        rng: Optional[random.Random] = None,
    ):
        if mean <= 0:
            raise ValueError("mean service time must be positive")
        if variance < 0:
            raise ValueError("variance must be non-negative")
        self.mean = mean
        self.variance = variance
        self._rng = rng if rng is not None else random.Random(0xD15C)
        if variance > 0:
            self._shape = mean * mean / variance
            self._scale = variance / mean
        else:
            self._shape = None
            self._scale = None

    def sample(self) -> float:
        if self._shape is None:
            return self.mean
        return self._rng.gammavariate(self._shape, self._scale)


@dataclass(frozen=True)
class CompletedRequest:
    """One serviced request, for response-time analysis."""

    arrived_at: float
    started_at: float
    completed_at: float

    @property
    def response_time(self) -> float:
        return self.completed_at - self.arrived_at

    @property
    def wait_time(self) -> float:
        return self.started_at - self.arrived_at


class ServerPool:
    """Central-queue G/G/c pool with dynamic capacity."""

    def __init__(
        self,
        loop: EventLoop,
        service_times: ServiceTimeDistribution,
        initial_capacity: int = 1,
        spawn_delay: float = 0.0,
        max_recorded: int = 2_000_000,
    ):
        self.loop = loop
        self.service_times = service_times
        self.capacity = max(0, initial_capacity)
        self.spawn_delay = max(0.0, spawn_delay)
        self.busy = 0
        self._queue: Deque[float] = deque()  # arrival timestamps
        self.completed: List[CompletedRequest] = []
        self._max_recorded = max_recorded
        self.total_arrivals = 0
        self.total_completed = 0
        self.dropped_records = 0
        self.on_completion: Optional[Callable[[CompletedRequest], None]] = None
        # Crash modeling: tokens of in-flight services; a crashed token's
        # completion event is ignored and its request re-queued (the MOM's
        # at-least-once redelivery, §3.4).
        self._service_seq = 0
        self._in_flight: dict = {}  # token -> arrival timestamp
        self._cancelled: set = set()
        self.crash_count = 0
        self.redelivered_count = 0

    # -- workload ----------------------------------------------------------------

    def arrive(self) -> None:
        """One request arrives now."""
        self.total_arrivals += 1
        now = self.loop.now
        if self.busy < self.capacity:
            self._start_service(arrived_at=now)
        else:
            self._queue.append(now)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # -- capacity ------------------------------------------------------------------

    def set_capacity(self, capacity: int) -> None:
        """Change the pool size; scale-ups may be delayed by spawn_delay."""
        capacity = max(0, capacity)
        if capacity > self.capacity and self.spawn_delay > 0:
            added = capacity - self.capacity

            def activate() -> None:
                self.capacity += added
                self._drain()

            self.loop.schedule(self.spawn_delay, activate)
        else:
            self.capacity = capacity
            self._drain()

    def _drain(self) -> None:
        while self._queue and self.busy < self.capacity:
            self._start_service(arrived_at=self._queue.popleft())

    # -- service -------------------------------------------------------------------

    def _start_service(self, arrived_at: float) -> None:
        self.busy += 1
        started_at = self.loop.now
        service_time = self.service_times.sample()
        self._service_seq += 1
        token = self._service_seq
        self._in_flight[token] = arrived_at

        def complete() -> None:
            if token in self._cancelled:
                # The serving instance crashed mid-request: the completion
                # never happens; the request was already redelivered.
                self._cancelled.discard(token)
                return
            self._in_flight.pop(token, None)
            self.busy -= 1
            self.total_completed += 1
            record = CompletedRequest(
                arrived_at=arrived_at,
                started_at=started_at,
                completed_at=self.loop.now,
            )
            if len(self.completed) < self._max_recorded:
                self.completed.append(record)
            else:
                self.dropped_records += 1
            if self.on_completion is not None:
                self.on_completion(record)
            self._drain()

        self.loop.schedule(service_time, complete)

    # -- fault injection ---------------------------------------------------------------

    def crash_one_server(self, recovery_delay: float = 0.0) -> bool:
        """One instance dies abruptly (§3.4 / Fig 8f semantics).

        Capacity drops by one; if the instance was serving a request, that
        request is re-queued at the head with its *original* arrival time
        (at-least-once redelivery — its eventual response time includes
        the crash detour).  After *recovery_delay* the Supervisor's
        replacement instance comes up and capacity is restored.

        Returns False when there is no capacity left to crash.
        """
        if self.capacity <= 0:
            return False
        self.capacity -= 1
        self.crash_count += 1
        in_flight = self._in_flight
        if self.busy > 0 and in_flight:
            # The crashed server was busy: cancel its in-flight request
            # and redeliver it.
            token, arrived_at = next(iter(in_flight.items()))
            del in_flight[token]
            self._cancelled.add(token)
            self.busy -= 1
            self._queue.appendleft(arrived_at)
            self.redelivered_count += 1
        if recovery_delay > 0:

            def recover() -> None:
                self.capacity += 1
                self._drain()

            self.loop.schedule(recovery_delay, recover)
        return True

    # -- analysis --------------------------------------------------------------------

    def response_times(self) -> List[Tuple[float, float]]:
        """(completion time, response time) pairs."""
        return [(r.completed_at, r.response_time) for r in self.completed]


def poisson_arrival_times(
    counts_per_second: List[float],
    rng: Optional[random.Random] = None,
    start: float = 0.0,
) -> List[float]:
    """Expand per-second arrival counts into uniform arrival instants."""
    rng = rng if rng is not None else random.Random(0xA77)
    times: List[float] = []
    for second, count in enumerate(counts_per_second):
        base = start + second
        n = int(count)
        for _ in range(n):
            times.append(base + rng.random())
    times.sort()
    return times
