"""Trace-driven auto-scaling simulation (the Fig 8 experiments).

Wires together:

* a per-second arrival trace (normally from
  :class:`~repro.workload.ubuntuone.UbuntuOneTraceGenerator`),
* the G/G/c :class:`~repro.simulation.server.ServerPool`, and
* any :class:`~repro.objectmq.provisioner.Provisioner` (fixed,
  utilization-threshold, predictive, reactive, or combined),

with a Supervisor-like control loop that observes the arrival rate every
``control_interval`` simulated seconds, asks the provisioner for a pool
size, and applies it.  The result records everything the paper plots:
instance counts over time (Fig 8a/8d), response times (Fig 8b/8e), and
observed vs predicted arrival rates (Fig 8c).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.elasticity.ggone import PAPER_PARAMETERS, SlaParameters
from repro.objectmq.introspection import PoolObservation
from repro.objectmq.provisioner import Provisioner
from repro.simulation.des import EventLoop
from repro.simulation.metrics import boxplot_stats, bucket_by_time, fraction_above
from repro.simulation.server import (
    CompletedRequest,
    ServerPool,
    ServiceTimeDistribution,
    poisson_arrival_times,
)
from repro.telemetry.control import (
    KIND_DECISION,
    KIND_SHUTDOWN,
    KIND_SPAWN,
    REASON_CRASH_REPAIR,
    REASON_SCALE_DOWN,
    REASON_SCALE_UP,
    DecisionJournal,
)


@dataclass(frozen=True)
class SimConfig:
    """Knobs of one auto-scaling simulation run."""

    params: SlaParameters = PAPER_PARAMETERS
    #: Supervisor control period, simulated seconds.
    control_interval: float = 5.0
    #: Window over which λ_obs is measured, simulated seconds.
    observation_window: float = 30.0
    min_instances: int = 1
    max_instances: int = 64
    #: Instance start-up time (produces the paper's scaling spikes).
    spawn_delay: float = 1.0
    #: Added to simulation time before it reaches the provisioner, so a
    #: run can represent e.g. "day 8, hour 20" of the trace.
    time_origin: float = 0.0
    seed: int = 1


@dataclass
class ControlRecord:
    """One control-period decision, for the Fig 8 time series."""

    timestamp: float
    lam_obs: float
    lam_pred: float
    capacity_before: int
    desired: int
    queue_depth: int


@dataclass
class SimResult:
    """Everything a Fig 8 plot needs."""

    config: SimConfig
    control_records: List[ControlRecord] = field(default_factory=list)
    #: (completion time, response time) samples.
    response_samples: List[Tuple[float, float]] = field(default_factory=list)
    total_arrivals: int = 0
    total_completed: int = 0
    #: Structured control-plane log of the run (None when not requested).
    journal: Optional[DecisionJournal] = None

    def capacity_series(self) -> List[Tuple[float, int]]:
        return [(r.timestamp, r.capacity_before) for r in self.control_records]

    def max_capacity(self) -> int:
        return max((r.capacity_before for r in self.control_records), default=0)

    def response_times(self) -> List[float]:
        return [rt for _t, rt in self.response_samples]

    def sla_violation_fraction(self, sla: Optional[float] = None) -> float:
        sla = self.config.params.d if sla is None else sla
        return fraction_above(self.response_times(), sla)

    def response_percentile_series(
        self, bucket: float, fraction: float = 0.95
    ) -> List[Tuple[float, float]]:
        """Per-bucket response-time percentile (the Fig 8b/8e series)."""
        from repro.simulation.metrics import percentile

        grouped = bucket_by_time(self.response_samples, bucket)
        return [
            (index * bucket, percentile(values, fraction))
            for index, values in sorted(grouped.items())
        ]

    def boxplot(self):
        return boxplot_stats(self.response_times())


class AutoscaleSimulation:
    """One trace-driven run of the elastic SyncService pool."""

    def __init__(
        self,
        arrivals_per_second: List[int],
        provisioner: Provisioner,
        config: Optional[SimConfig] = None,
        journal: Optional[DecisionJournal] = None,
    ):
        self.arrivals = list(arrivals_per_second)
        self.provisioner = provisioner
        self.config = config if config is not None else SimConfig()
        #: When set, the control loop journals every decision and
        #: capacity action exactly like the live Supervisor does.
        self.journal = journal

    # -- observation ---------------------------------------------------------------

    def _window_stats(self, now: float) -> Tuple[float, float]:
        """(λ_obs, σ_a²) over the trailing observation window."""
        window = self.config.observation_window
        start = max(0, int(now - window))
        end = max(start + 1, int(now))
        counts = self.arrivals[start:end]
        if not counts:
            return 0.0, 0.0
        lam = sum(counts) / len(counts)
        if lam <= 0:
            return 0.0, 0.0
        mean = lam
        var_counts = sum((c - mean) ** 2 for c in counts) / len(counts)
        mean_interarrival = 1.0 / lam
        sigma_a2 = var_counts * mean_interarrival**3  # window width = 1s
        return lam, sigma_a2

    def _predicted_rate(self, timestamp: float) -> float:
        predictive = getattr(self.provisioner, "predictive", None)
        if predictive is not None and hasattr(predictive, "predicted_rate"):
            return predictive.predicted_rate(timestamp)
        if hasattr(self.provisioner, "predicted_rate"):
            return self.provisioner.predicted_rate(timestamp)
        return 0.0

    def _journal_step(
        self,
        observation: PoolObservation,
        proposal: int,
        desired: int,
        enforced: int,
    ) -> None:
        """Journal one control period exactly like the live Supervisor."""
        census = observation.instance_count
        crash_shortfall = max(0, enforced - census)
        reason = getattr(self.provisioner, "last_reason", "") or (
            f"{self.provisioner.name} proposed {proposal}"
        )
        decision = self.journal.append(
            KIND_DECISION,
            observation.timestamp,
            oid=observation.oid,
            lam_obs=observation.arrival_rate,
            lam_pred=self._predicted_rate(observation.timestamp),
            interarrival_variance=observation.interarrival_variance,
            queue_depth=observation.queue_depth,
            census=census,
            census_shortfall=crash_shortfall,
            policy=self.provisioner.name,
            proposal=proposal,
            desired=desired,
            threshold=getattr(self.provisioner, "last_threshold", None),
            reason=reason,
        )
        for index in range(max(0, desired - census)):
            repair = index < min(crash_shortfall, desired - census)
            self.journal.append(
                KIND_SPAWN,
                observation.timestamp,
                oid=observation.oid,
                reason=REASON_CRASH_REPAIR if repair else REASON_SCALE_UP,
                policy_reason=reason,
                decision_seq=decision.seq,
            )
        for _ in range(max(0, census - desired)):
            self.journal.append(
                KIND_SHUTDOWN,
                observation.timestamp,
                oid=observation.oid,
                reason=REASON_SCALE_DOWN,
                policy_reason=reason,
                decision_seq=decision.seq,
            )

    # -- run --------------------------------------------------------------------------

    def run(self) -> SimResult:
        config = self.config
        loop = EventLoop()
        rng = random.Random(config.seed)
        service = ServiceTimeDistribution(
            mean=config.params.s,
            variance=config.params.sigma_b2,
            rng=random.Random(rng.getrandbits(64)),
        )
        pool = ServerPool(
            loop,
            service,
            initial_capacity=config.min_instances,
            spawn_delay=config.spawn_delay,
        )
        result = SimResult(config=config, journal=self.journal)

        for when in poisson_arrival_times(
            self.arrivals, rng=random.Random(rng.getrandbits(64))
        ):
            loop.schedule_at(when, pool.arrive)

        duration = float(len(self.arrivals))
        # Pool size commanded by the previous control period; a census
        # below it means servers crashed in between, so the replacement
        # portion of any growth is journaled as crash repair (Fig 8(f)).
        enforced = [pool.capacity]

        def control_step() -> None:
            now = loop.now
            timestamp = config.time_origin + now
            lam_obs, sigma_a2 = self._window_stats(now)
            census = pool.capacity
            observation = PoolObservation(
                oid="syncservice",
                timestamp=timestamp,
                instance_count=census,
                queue_depth=pool.queue_depth,
                arrival_rate=lam_obs,
                interarrival_variance=sigma_a2,
                mean_service_time=config.params.s,
                service_time_variance=config.params.sigma_b2,
            )
            proposal = self.provisioner.propose(observation)
            desired = min(config.max_instances, max(config.min_instances, proposal))
            result.control_records.append(
                ControlRecord(
                    timestamp=now,
                    lam_obs=lam_obs,
                    lam_pred=self._predicted_rate(timestamp),
                    capacity_before=census,
                    desired=desired,
                    queue_depth=pool.queue_depth,
                )
            )
            if self.journal is not None:
                self._journal_step(observation, proposal, desired, enforced[0])
            if desired != pool.capacity:
                pool.set_capacity(desired)
            enforced[0] = desired
            if now + config.control_interval <= duration:
                loop.schedule(config.control_interval, control_step)

        loop.schedule_at(0.0, control_step)
        # Let in-flight work finish after the trace ends (small grace).
        loop.run_until(duration + 30.0)

        result.response_samples = pool.response_times()
        result.total_arrivals = pool.total_arrivals
        result.total_completed = pool.total_completed
        return result
