"""Trace-driven auto-scaling simulation (the Fig 8 experiments).

Wires together:

* a per-second arrival trace (normally from
  :class:`~repro.workload.ubuntuone.UbuntuOneTraceGenerator`),
* the G/G/c :class:`~repro.simulation.server.ServerPool`, and
* any :class:`~repro.objectmq.provisioner.Provisioner` (fixed,
  utilization-threshold, predictive, reactive, or combined),

with a Supervisor-like control loop that observes the arrival rate every
``control_interval`` simulated seconds, asks the provisioner for a pool
size, and applies it.  The result records everything the paper plots:
instance counts over time (Fig 8a/8d), response times (Fig 8b/8e), and
observed vs predicted arrival rates (Fig 8c).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.elasticity.ggone import PAPER_PARAMETERS, SlaParameters
from repro.objectmq.introspection import PoolObservation
from repro.objectmq.naming import parse_shard_oid, shard_oid
from repro.objectmq.provisioner import Provisioner
from repro.simulation.des import EventLoop
from repro.simulation.metrics import boxplot_stats, bucket_by_time, fraction_above
from repro.simulation.server import (
    CompletedRequest,
    ServerPool,
    ServiceTimeDistribution,
    poisson_arrival_times,
)
from repro.telemetry.control import (
    KIND_DECISION,
    KIND_SHUTDOWN,
    KIND_SPAWN,
    REASON_CRASH_REPAIR,
    REASON_SCALE_DOWN,
    REASON_SCALE_UP,
    DecisionJournal,
)


@dataclass(frozen=True)
class SimConfig:
    """Knobs of one auto-scaling simulation run."""

    params: SlaParameters = PAPER_PARAMETERS
    #: Supervisor control period, simulated seconds.
    control_interval: float = 5.0
    #: Window over which λ_obs is measured, simulated seconds.
    observation_window: float = 30.0
    min_instances: int = 1
    max_instances: int = 64
    #: Instance start-up time (produces the paper's scaling spikes).
    spawn_delay: float = 1.0
    #: Added to simulation time before it reaches the provisioner, so a
    #: run can represent e.g. "day 8, hour 20" of the trace.
    time_origin: float = 0.0
    seed: int = 1


@dataclass
class ControlRecord:
    """One control-period decision, for the Fig 8 time series."""

    timestamp: float
    lam_obs: float
    lam_pred: float
    capacity_before: int
    desired: int
    queue_depth: int


@dataclass
class SimResult:
    """Everything a Fig 8 plot needs."""

    config: SimConfig
    control_records: List[ControlRecord] = field(default_factory=list)
    #: (completion time, response time) samples.
    response_samples: List[Tuple[float, float]] = field(default_factory=list)
    total_arrivals: int = 0
    total_completed: int = 0
    #: Structured control-plane log of the run (None when not requested).
    journal: Optional[DecisionJournal] = None

    def capacity_series(self) -> List[Tuple[float, int]]:
        return [(r.timestamp, r.capacity_before) for r in self.control_records]

    def max_capacity(self) -> int:
        return max((r.capacity_before for r in self.control_records), default=0)

    def response_times(self) -> List[float]:
        return [rt for _t, rt in self.response_samples]

    def sla_violation_fraction(self, sla: Optional[float] = None) -> float:
        sla = self.config.params.d if sla is None else sla
        return fraction_above(self.response_times(), sla)

    def response_percentile_series(
        self, bucket: float, fraction: float = 0.95
    ) -> List[Tuple[float, float]]:
        """Per-bucket response-time percentile (the Fig 8b/8e series)."""
        from repro.simulation.metrics import percentile

        grouped = bucket_by_time(self.response_samples, bucket)
        return [
            (index * bucket, percentile(values, fraction))
            for index, values in sorted(grouped.items())
        ]

    def boxplot(self):
        return boxplot_stats(self.response_times())


class AutoscaleSimulation:
    """One trace-driven run of the elastic SyncService pool."""

    def __init__(
        self,
        arrivals_per_second: List[int],
        provisioner: Provisioner,
        config: Optional[SimConfig] = None,
        journal: Optional[DecisionJournal] = None,
        oid: str = "syncservice",
        on_control_period: Optional[Callable[[PoolObservation, int], None]] = None,
    ):
        self.arrivals = list(arrivals_per_second)
        self.provisioner = provisioner
        self.config = config if config is not None else SimConfig()
        #: When set, the control loop journals every decision and
        #: capacity action exactly like the live Supervisor does.
        self.journal = journal
        #: Pool identity stamped on observations and journal entries; a
        #: partitioned oid (``syncservice.shard.2``) also yields a shard
        #: field on every entry, mirroring the live Supervisor.
        self.oid = oid
        self.shard = parse_shard_oid(oid)[1]
        #: Optional per-control-period hook ``(observation, desired)``,
        #: invoked after the decision is journaled and before capacity is
        #: applied.  This is the scrape point the soak harness hangs
        #: metrics-registry gauges and SLO evaluation off — the DES
        #: equivalent of a Supervisor heartbeat callback.
        self.on_control_period = on_control_period

    # -- observation ---------------------------------------------------------------

    def _window_stats(self, now: float) -> Tuple[float, float]:
        """(λ_obs, σ_a²) over the trailing observation window."""
        window = self.config.observation_window
        start = max(0, int(now - window))
        end = max(start + 1, int(now))
        counts = self.arrivals[start:end]
        if not counts:
            return 0.0, 0.0
        lam = sum(counts) / len(counts)
        if lam <= 0:
            return 0.0, 0.0
        mean = lam
        var_counts = sum((c - mean) ** 2 for c in counts) / len(counts)
        mean_interarrival = 1.0 / lam
        sigma_a2 = var_counts * mean_interarrival**3  # window width = 1s
        return lam, sigma_a2

    def _predicted_rate(self, timestamp: float) -> float:
        predictive = getattr(self.provisioner, "predictive", None)
        if predictive is not None and hasattr(predictive, "predicted_rate"):
            return predictive.predicted_rate(timestamp)
        if hasattr(self.provisioner, "predicted_rate"):
            return self.provisioner.predicted_rate(timestamp)
        return 0.0

    def _journal_step(
        self,
        observation: PoolObservation,
        proposal: int,
        desired: int,
        enforced: int,
    ) -> None:
        """Journal one control period exactly like the live Supervisor."""
        census = observation.instance_count
        crash_shortfall = max(0, enforced - census)
        reason = getattr(self.provisioner, "last_reason", "") or (
            f"{self.provisioner.name} proposed {proposal}"
        )
        decision = self.journal.append(
            KIND_DECISION,
            observation.timestamp,
            oid=observation.oid,
            shard=self.shard,
            lam_obs=observation.arrival_rate,
            lam_pred=self._predicted_rate(observation.timestamp),
            interarrival_variance=observation.interarrival_variance,
            queue_depth=observation.queue_depth,
            census=census,
            census_shortfall=crash_shortfall,
            policy=self.provisioner.name,
            proposal=proposal,
            desired=desired,
            threshold=getattr(self.provisioner, "last_threshold", None),
            reason=reason,
        )
        for index in range(max(0, desired - census)):
            repair = index < min(crash_shortfall, desired - census)
            self.journal.append(
                KIND_SPAWN,
                observation.timestamp,
                oid=observation.oid,
                shard=self.shard,
                reason=REASON_CRASH_REPAIR if repair else REASON_SCALE_UP,
                policy_reason=reason,
                decision_seq=decision.seq,
            )
        for _ in range(max(0, census - desired)):
            self.journal.append(
                KIND_SHUTDOWN,
                observation.timestamp,
                oid=observation.oid,
                shard=self.shard,
                reason=REASON_SCALE_DOWN,
                policy_reason=reason,
                decision_seq=decision.seq,
            )

    # -- run --------------------------------------------------------------------------

    def run(self) -> SimResult:
        config = self.config
        loop = EventLoop()
        rng = random.Random(config.seed)
        service = ServiceTimeDistribution(
            mean=config.params.s,
            variance=config.params.sigma_b2,
            rng=random.Random(rng.getrandbits(64)),
        )
        pool = ServerPool(
            loop,
            service,
            initial_capacity=config.min_instances,
            spawn_delay=config.spawn_delay,
        )
        result = SimResult(config=config, journal=self.journal)

        for when in poisson_arrival_times(
            self.arrivals, rng=random.Random(rng.getrandbits(64))
        ):
            loop.schedule_at(when, pool.arrive)

        duration = float(len(self.arrivals))
        # Pool size commanded by the previous control period; a census
        # below it means servers crashed in between, so the replacement
        # portion of any growth is journaled as crash repair (Fig 8(f)).
        enforced = [pool.capacity]

        def control_step() -> None:
            now = loop.now
            timestamp = config.time_origin + now
            lam_obs, sigma_a2 = self._window_stats(now)
            census = pool.capacity
            observation = PoolObservation(
                oid=self.oid,
                timestamp=timestamp,
                instance_count=census,
                queue_depth=pool.queue_depth,
                arrival_rate=lam_obs,
                interarrival_variance=sigma_a2,
                mean_service_time=config.params.s,
                service_time_variance=config.params.sigma_b2,
            )
            proposal = self.provisioner.propose(observation)
            desired = min(config.max_instances, max(config.min_instances, proposal))
            result.control_records.append(
                ControlRecord(
                    timestamp=now,
                    lam_obs=lam_obs,
                    lam_pred=self._predicted_rate(timestamp),
                    capacity_before=census,
                    desired=desired,
                    queue_depth=pool.queue_depth,
                )
            )
            if self.journal is not None:
                self._journal_step(observation, proposal, desired, enforced[0])
            if self.on_control_period is not None:
                self.on_control_period(observation, desired)
            if desired != pool.capacity:
                pool.set_capacity(desired)
            enforced[0] = desired
            if now + config.control_interval <= duration:
                loop.schedule(config.control_interval, control_step)

        loop.schedule_at(0.0, control_step)
        # Let in-flight work finish after the trace ends (small grace).
        loop.run_until(duration + 30.0)

        result.response_samples = pool.response_times()
        result.total_arrivals = pool.total_arrivals
        result.total_completed = pool.total_completed
        return result


def split_arrivals(
    arrivals_per_second: List[int], shards: int, seed: int = 1
) -> List[List[int]]:
    """Split a per-second arrival trace across *shards* hash partitions.

    Workspace hashing assigns each arrival to a shard independently and
    uniformly, so each second's count is split multinomially (every
    arrival draws its shard).  The split preserves totals exactly:
    summing the returned traces recovers the input.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    rng = random.Random(seed)
    traces: List[List[int]] = [[] for _ in range(shards)]
    for count in arrivals_per_second:
        second = [0] * shards
        for _ in range(count):
            second[rng.randrange(shards)] += 1
        for shard, shard_count in enumerate(second):
            traces[shard].append(shard_count)
    return traces


@dataclass
class ShardedSimResult:
    """Per-shard results of one partitioned auto-scaling run."""

    shard_results: List[SimResult]
    journal: Optional[DecisionJournal] = None

    @property
    def num_shards(self) -> int:
        return len(self.shard_results)

    @property
    def total_arrivals(self) -> int:
        return sum(r.total_arrivals for r in self.shard_results)

    @property
    def total_completed(self) -> int:
        return sum(r.total_completed for r in self.shard_results)

    def total_capacity_series(self) -> List[Tuple[float, int]]:
        """Fleet-wide capacity over time (sum across shards per period)."""
        merged: dict = {}
        for result in self.shard_results:
            for timestamp, capacity in result.capacity_series():
                merged[timestamp] = merged.get(timestamp, 0) + capacity
        return sorted(merged.items())

    def max_total_capacity(self) -> int:
        return max((c for _t, c in self.total_capacity_series()), default=0)

    def response_times(self) -> List[float]:
        times: List[float] = []
        for result in self.shard_results:
            times.extend(result.response_times())
        return times

    def sla_violation_fraction(self, sla: Optional[float] = None) -> float:
        violations = [
            r.sla_violation_fraction(sla) * len(r.response_times())
            for r in self.shard_results
        ]
        total = len(self.response_times())
        return sum(violations) / total if total else 0.0


class ShardedAutoscaleSimulation:
    """Trace-driven run of N independently supervised shard pools.

    The aggregate trace is hash-split across shards
    (:func:`split_arrivals`); each shard gets its own server pool, its
    own provisioner instance (from *provisioner_factory*) and its own
    control loop, exactly mirroring the live
    :class:`~repro.objectmq.supervisor.ShardedSupervisor`.  A shared
    journal receives every shard's entries, distinguishable by their
    ``shard`` field.
    """

    def __init__(
        self,
        arrivals_per_second: List[int],
        provisioner_factory: Callable[[], Provisioner],
        shards: int,
        config: Optional[SimConfig] = None,
        journal: Optional[DecisionJournal] = None,
        oid: str = "syncservice",
        on_control_period: Optional[Callable[[PoolObservation, int], None]] = None,
    ):
        config = config if config is not None else SimConfig()
        traces = split_arrivals(arrivals_per_second, shards, seed=config.seed)
        self.journal = journal
        self.simulations = [
            AutoscaleSimulation(
                traces[shard],
                provisioner_factory(),
                # Distinct seeds keep shard service processes independent.
                config=replace(config, seed=config.seed + shard),
                journal=journal,
                oid=shard_oid(oid, shard),
                on_control_period=on_control_period,
            )
            for shard in range(shards)
        ]

    def run(self) -> ShardedSimResult:
        return ShardedSimResult(
            shard_results=[simulation.run() for simulation in self.simulations],
            journal=self.journal,
        )
