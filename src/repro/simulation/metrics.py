"""Metrics helpers: percentiles, boxplot statistics, time bucketing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

# One percentile implementation for the whole stack (numpy-style linear
# interpolation); re-exported here for the simulation layer's callers.
from repro.telemetry.stats import percentile

__all__ = [
    "BoxplotStats",
    "boxplot_stats",
    "bucket_by_time",
    "fraction_above",
    "percentile",
]


@dataclass(frozen=True)
class BoxplotStats:
    """The five-number summary drawn by the paper's boxplots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def upper_whisker(self) -> float:
        """Tukey whisker: largest value within Q3 + 1.5·IQR."""
        return self.q3 + 1.5 * self.iqr

    @property
    def skewness(self) -> float:
        """Bowley (quartile) skewness in [-1, 1]; >0 = right-skewed."""
        if self.iqr == 0:
            return 0.0
        return (self.q3 + self.q1 - 2 * self.median) / self.iqr


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    if not values:
        return BoxplotStats(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
    ordered = sorted(values)
    return BoxplotStats(
        minimum=ordered[0],
        q1=percentile(ordered, 0.25),
        median=percentile(ordered, 0.50),
        q3=percentile(ordered, 0.75),
        maximum=ordered[-1],
        mean=sum(ordered) / len(ordered),
        count=len(ordered),
    )


def bucket_by_time(
    samples: Sequence[Tuple[float, float]], bucket: float
) -> Dict[int, List[float]]:
    """Group (timestamp, value) samples into fixed-width time buckets."""
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    grouped: Dict[int, List[float]] = {}
    for timestamp, value in samples:
        grouped.setdefault(int(timestamp // bucket), []).append(value)
    return grouped


def fraction_above(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples exceeding *threshold* (SLA-violation rate)."""
    if not values:
        return 0.0
    return sum(1 for v in values if v > threshold) / len(values)
