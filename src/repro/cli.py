"""Command-line interface for exploring the reproduction.

Installed as ``stacksync-repro`` (see pyproject); also runnable as
``python -m repro.cli``.  Subcommands:

* ``trace``       — generate a §5.2 workload trace and print its summary;
* ``ub1``         — print the synthetic Ubuntu One day profile;
* ``capacity``    — evaluate equations (1)-(2) for a given arrival rate;
* ``experiments`` — list every paper artifact and its benchmark target;
* ``demo``        — run the in-process two-device sync demo;
* ``telemetry``   — replay a small trace with tracing on and print the
  top-N slowest spans per layer (optionally exporting JSONL / Chrome
  ``trace_event`` files and a metrics snapshot);
* ``profile``     — replay with the full profiling plane on: wall-clock
  stack samples (collapsed-stack / Chrome flamegraph export), per-lock
  wait/hold contention, span self-time breakdown, and tail exemplars
  with their dominant critical-path segment;
* ``ops``         — boot the elastic SyncService demo stack with the ops
  endpoint (``/metrics`` ``/health`` ``/ready`` ``/events`` ``/slo``
  ``/bench``), a scaling-decision journal, and the SLO alert engine;
* ``soak``        — run the scripted multi-phase soak (diurnal ramp,
  flash crowd, rebalance storm) at up to registered-million-user scale,
  verify its operational contract, and record/compare the performance
  trajectory (``BENCH_soak.json``);
* ``top``         — live terminal view of a running ops endpoint;
* ``timeline``    — render a Fig-8-style provisioning timeline from a
  decision-journal JSONL file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.experiments import EXPERIMENTS
from repro.bench.reporting import render_series, render_table


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload import TraceGenerator

    trace = TraceGenerator(
        initial_files=args.initial_files,
        training_iterations=args.training,
        snapshots=args.snapshots,
        seed=args.seed,
        scale=args.scale,
    ).generate()
    summary = trace.summary()
    print(render_table(
        ["metric", "value"],
        [
            ["operations", summary["ops"]],
            ["ADDs", summary["adds"]],
            ["UPDATEs", summary["updates"]],
            ["REMOVEs", summary["removes"]],
            ["ADD volume (MB)", round(summary["add_volume_mb"], 2)],
            ["mean file size (KB)", round(summary["mean_file_size_kb"], 1)],
        ],
    ))
    return 0


def _cmd_ub1(args: argparse.Namespace) -> int:
    from repro.workload import UB1Config, UbuntuOneTraceGenerator

    generator = UbuntuOneTraceGenerator(
        UB1Config(seconds_per_day=args.resolution), seed=args.seed
    )
    arrivals = generator.arrivals(args.day)
    hour = args.resolution / 24
    print(render_series(
        f"UB1 day {args.day}: arrivals (req/s) vs hour",
        [(t / hour, rate) for t, rate in enumerate(arrivals) if t % 10 == 0],
    ))
    print(f"peak: {generator.peak_of(arrivals):.0f} requests/minute "
          f"(paper day-8 peak: 8,514)")
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.elasticity import GG1CapacityModel, SlaParameters

    params = SlaParameters(d=args.sla / 1000.0, s=args.service / 1000.0)
    model = GG1CapacityModel(params)
    delta = model.per_server_rate(ca2=args.ca2)
    eta = model.instances_for(args.rate, ca2=args.ca2)
    print(render_table(
        ["quantity", "value"],
        [
            ["SLA d", f"{args.sla:.0f} ms"],
            ["mean service time s", f"{args.service:.0f} ms"],
            ["arrival CV^2", args.ca2],
            ["per-server rate delta (eq. 1)", f"{delta:.2f} req/s"],
            [f"instances for {args.rate:.0f} req/s (eq. 2)", eta],
        ],
    ))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    rows = [
        [e.exp_id, e.paper_artifact, e.bench_file]
        for e in EXPERIMENTS.values()
    ]
    print(render_table(["id", "paper artifact", "bench target"], rows))
    print("\nrun them with: pytest benchmarks/ --benchmark-only -s")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.client import StackSyncClient
    from repro.metadata import MemoryMetadataBackend
    from repro.mom import MessageBroker
    from repro.objectmq import Broker
    from repro.storage import SwiftLikeStore
    from repro.sync import (
        SYNC_SERVICE_OID,
        SYNC_SERVICE_PREFETCH,
        SyncService,
        Workspace,
    )

    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    storage = SwiftLikeStore()
    metadata.create_user("demo")
    workspace = Workspace(workspace_id="ws-demo", owner="demo")
    metadata.create_workspace(workspace)
    server = Broker(mom)
    server.bind(
        SYNC_SERVICE_OID, SyncService(metadata, server),
        prefetch=SYNC_SERVICE_PREFETCH,
    )

    laptop = StackSyncClient("demo", workspace, mom, storage, device_id="laptop")
    phone = StackSyncClient("demo", workspace, mom, storage, device_id="phone")
    laptop.start()
    phone.start()
    meta = laptop.put_file("hello.txt", b"hello from the laptop")
    phone.wait_for_version(meta.item_id, meta.version, timeout=10)
    print("phone received:", phone.fs.read("hello.txt").decode())
    laptop.stop()
    phone.stop()
    server.close()
    mom.close()
    print("demo complete: two devices synced through the full stack.")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        disable,
        enable,
        get_registry,
        load_jsonl,
        render_flame_table,
        write_chrome_trace,
        write_jsonl,
    )

    if args.load:
        spans = load_jsonl(args.load)
        print(f"loaded {len(spans)} span(s) from {args.load}")
    else:
        from repro.bench.overhead import replay_stacksync
        from repro.workload import TraceGenerator

        trace = TraceGenerator(
            initial_files=args.initial_files,
            training_iterations=args.training,
            snapshots=args.snapshots,
            seed=args.seed,
        ).generate()
        tracer = enable()
        try:
            report = replay_stacksync(trace)
        finally:
            disable()
        spans = tracer.spans()
        layers = sorted({s.layer for s in spans})
        print(
            f"replayed {len(trace)} op(s): {len(spans)} span(s) "
            f"across {len(layers)} layer(s) ({', '.join(layers)}); "
            f"control {report.control_bytes} B, storage {report.storage_bytes} B"
        )
    print()
    print(render_flame_table(spans, top_n=args.top))
    if args.jsonl:
        write_jsonl(spans, args.jsonl)
        print(f"\nwrote JSONL span dump to {args.jsonl}")
    if args.chrome:
        write_chrome_trace(spans, args.chrome)
        print(f"wrote Chrome trace_event file to {args.chrome} "
              f"(open in about:tracing or Perfetto)")
    if args.metrics:
        print("\n-- metrics snapshot --")
        print(get_registry().render_prometheus(), end="")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile the hot path: sampler + lock contention + tail exemplars.

    Replays a workload trace through the full live stack (MOM broker,
    ObjectMQ, SyncService, metadata, storage) with every profiling-plane
    instrument on, then reports where the wall-clock went.
    """
    import json as json_mod

    from repro.telemetry import disable, enable, get_registry, get_tracer
    from repro.telemetry.profiling import (
        StackSampler,
        contention_snapshot,
        disable_exemplars,
        disable_lock_timing,
        enable_exemplars,
        enable_lock_timing,
        segment_breakdown,
    )

    from repro.bench.overhead import replay_stacksync
    from repro.workload import TraceGenerator

    trace = TraceGenerator(
        initial_files=args.initial_files,
        training_iterations=args.training,
        snapshots=args.snapshots,
        seed=args.seed,
    ).generate()

    sampler = StackSampler(hz=args.hz)
    tracer = enable()
    enable_lock_timing()
    reservoir = enable_exemplars(min_samples=16, capacity=8)
    sampler.start()
    try:
        report = replay_stacksync(trace)
    finally:
        sampler.stop()
        disable()
        disable_exemplars()
        disable_lock_timing()

    spans = tracer.spans()
    print(
        f"replayed {len(trace)} op(s): {sampler.sample_count} stack sample(s) "
        f"at {args.hz:g} Hz, {len(spans)} span(s), "
        f"control {report.control_bytes} B, storage {report.storage_bytes} B"
    )

    print("\n-- hottest frames (wall-clock samples) --")
    hottest = sampler.hottest(args.top)
    if hottest:
        print(render_table(
            ["frame", "samples"],
            [[frame, count] for frame, count in hottest],
        ))
    else:
        print("(no samples collected — replay finished between ticks)")

    snapshot = contention_snapshot(get_registry())
    print("\n-- lock contention --")
    rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        wait = entry.get("wait", {})
        hold = entry.get("hold", {})
        rows.append([
            name,
            int(entry.get("acquisitions", 0)),
            f"{wait.get('sum', 0.0) * 1000:.2f}",
            f"{wait.get('p99', 0.0) * 1e6:.0f}",
            f"{hold.get('sum', 0.0) * 1000:.2f}",
        ])
    print(render_table(
        ["lock", "acquisitions", "wait ms", "wait p99 us", "hold ms"], rows
    ))

    print("\n-- where the wall-clock goes (span self-time) --")
    breakdown = segment_breakdown(spans)
    total = sum(breakdown.values()) or 1.0
    print(render_table(
        ["segment", "seconds", "share"],
        [
            [segment, f"{seconds:.3f}", f"{seconds / total:.1%}"]
            for segment, seconds in sorted(
                breakdown.items(), key=lambda kv: -kv[1]
            )
        ],
    ))

    exemplars = reservoir.exemplars()
    print(f"\n-- tail exemplars ({len(exemplars)} kept of "
          f"{reservoir.roots_seen} roots) --")
    for exemplar in exemplars[: args.top]:
        segment, seconds, fraction = exemplar.dominant_segment()
        flag = " [error]" if exemplar.errored else ""
        print(
            f"  {exemplar.root_name}{flag}: {exemplar.duration * 1000:.1f} ms, "
            f"{len(exemplar.spans)} spans, dominant {segment} "
            f"({seconds * 1000:.1f} ms, {fraction:.0%})"
        )

    if args.collapsed:
        sampler.write_collapsed(args.collapsed)
        print(f"\nwrote collapsed stacks to {args.collapsed} "
              f"(feed to flamegraph.pl / speedscope)")
    if args.chrome:
        sampler.write_chrome_trace(args.chrome)
        print(f"wrote Chrome sampling trace to {args.chrome} "
              f"(open in Perfetto)")
    if args.contention:
        with open(args.contention, "w", encoding="utf-8") as fh:
            json_mod.dump(
                {
                    "locks": snapshot,
                    "exemplars": [e.to_dict() for e in exemplars],
                },
                fh,
                indent=2,
                sort_keys=True,
            )
        print(f"wrote contention + exemplar report to {args.contention}")
    return 0


def _cmd_ops(args: argparse.Namespace) -> int:
    import random
    import threading
    import time

    from repro.elasticity import PAPER_PARAMETERS, ReactiveProvisioner, SlaParameters
    from repro.metadata import ShardedMetadataBackend
    from repro.mom import MessageBroker
    from repro.objectmq import Broker, RemoteBroker, ShardedSupervisor, Supervisor
    from repro.objectmq.naming import shard_oid
    from repro.sync import (
        SYNC_SERVICE_OID,
        SyncServiceApi,
        Workspace,
        sync_service_factory,
    )
    from repro.sync.models import ItemMetadata
    from repro.telemetry import DecisionJournal, OpsServer, SloEngine, default_rules

    shards = args.shards
    journal = DecisionJournal(path=args.journal)
    slo = SloEngine(default_rules(), journal=journal)
    ops = OpsServer(
        journal=journal, slo=slo, bench_path=args.bench, port=args.port
    ).start()
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as fh:
            fh.write(str(ops.port))
    print(f"ops endpoint: {ops.url}")
    print("routes: /metrics /health /ready /events /slo /bench")

    mom = MessageBroker()
    # The sharded composite with one shard IS the unsharded deployment
    # (one engine, identity routing), so one code path serves both.
    if args.backend == "sqlite":
        metadata = ShardedMetadataBackend.sqlite(":memory:", shards)
    else:
        metadata = ShardedMetadataBackend.memory(shards)
    metadata.create_user("load")
    workspace_ids = [f"ws-load-{i}" for i in range(max(4, 2 * shards))]
    for workspace_id in workspace_ids:
        metadata.create_workspace(Workspace(workspace_id=workspace_id, owner="load"))
    # Request queues: the base oid unsharded, one partitioned oid per
    # shard otherwise (sync.shard.0 ... sync.shard.N-1).
    if shards > 1:
        oids = [shard_oid(SYNC_SERVICE_OID, k) for k in range(shards)]
    else:
        oids = [SYNC_SERVICE_OID]

    machines = []
    for name in ("machine-a", "machine-b"):
        broker = Broker(mom)
        rbroker = RemoteBroker(broker, broker_name=name)
        factory = sync_service_factory(metadata, broker, service_delay=lambda: 0.02)
        for oid in oids:
            rbroker.register_factory(oid, factory)
        rbroker.serve()
        machines.append(rbroker)

    params = SlaParameters(d=0.2, s=0.02, sigma_b2=PAPER_PARAMETERS.sigma_b2)
    sup_broker = Broker(mom)
    if shards > 1:
        supervisor = ShardedSupervisor(
            sup_broker,
            SYNC_SERVICE_OID,
            lambda: ReactiveProvisioner(predictive=None, params=params),
            shards,
            control_interval=0.5,
            max_instances=8,
            journal=journal,
        )
        supervisor.supervisors[0].set_heartbeat_callback(slo.evaluate)
    else:
        supervisor = Supervisor(
            sup_broker,
            SYNC_SERVICE_OID,
            ReactiveProvisioner(predictive=None, params=params),
            control_interval=0.5,
            max_instances=8,
            journal=journal,
        )
        supervisor.set_heartbeat_callback(slo.evaluate)
    supervisor.step()
    supervisor.start()

    client_broker = Broker(mom)
    if shards > 1:
        proxy = client_broker.lookup_sharded(SYNC_SERVICE_OID, SyncServiceApi, shards)
    else:
        proxy = client_broker.lookup(SYNC_SERVICE_OID, SyncServiceApi)
    stop = threading.Event()

    def generate() -> None:
        counter = 0
        rng = random.Random(1)
        while not stop.is_set():
            counter += 1
            workspace_id = rng.choice(workspace_ids)
            item = ItemMetadata(
                item_id=f"{workspace_id}:f{counter}",
                workspace_id=workspace_id,
                version=1,
                filename=f"f{counter}",
                device_id="loadgen",
            )
            try:
                proxy.commit_request(workspace_id, "loadgen", [item])
            except Exception:
                if stop.is_set():
                    break
                raise
            time.sleep(rng.expovariate(args.rate))

    generator = threading.Thread(target=generate, daemon=True)
    generator.start()

    try:
        deadline = time.time() + args.duration if args.duration > 0 else None
        while deadline is None or time.time() < deadline:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        generator.join(timeout=2)
        supervisor.stop()
        for machine in machines:
            machine.stop()
        client_broker.close()
        sup_broker.close()
        mom.close()
        ops.stop()
        journal.close()
    print(
        f"run complete: {len(journal.decisions())} decision(s), "
        f"{len(journal.actions())} action(s), {len(journal.alerts())} alert edge(s)"
        + (f"; journal at {args.journal}" if args.journal else "")
    )
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.bench.soak import SoakConfig, SoakVerificationError, run_soak
    from repro.bench.trajectory import Trajectory, compare, current_git_sha
    from repro.telemetry import DecisionJournal

    overrides = {
        name: value
        for name, value in (
            ("users", args.users),
            ("shards", args.shards),
            ("seed", args.seed),
            ("seconds_per_day", args.seconds_per_day),
            ("migrations", args.migrations),
        )
        if value is not None
    }
    if args.phases:
        overrides["phases"] = tuple(p.strip() for p in args.phases.split(","))
    config = SoakConfig.smoke(**overrides) if args.smoke else SoakConfig(**overrides)

    journal = None
    if args.journal:
        journal = DecisionJournal(
            path=args.journal, max_sink_bytes=args.journal_max_bytes
        )
    print(
        f"soak: {config.users:,} users, {config.shards} shard(s), "
        f"phases {', '.join(config.phases)}, fingerprint {config.fingerprint()}"
    )
    try:
        result = run_soak(config, journal=journal)
    finally:
        if journal is not None:
            journal.close()

    rows = [
        [
            record.name,
            record.arrivals,
            f"{record.commits_per_sec:.2f}",
            "n/a" if record.p50_latency_s is None else f"{record.p50_latency_s:.3f}",
            "n/a" if record.p99_latency_s is None else f"{record.p99_latency_s:.3f}",
            f"{record.mean_pool_size:.1f}/{record.max_pool_size}",
            record.spawns + record.shutdowns,
            record.alerts_fired,
            record.migrations,
        ]
        for record in result.records
    ]
    print(render_table(
        ["phase", "commits", "commits/s", "p50 s", "p99 s",
         "pool avg/max", "actions", "alerts", "migrations"],
        rows,
    ))
    print(f"wall runtime: {result.wall_runtime_s:.1f}s; "
          f"journal events: {len(result.journal)}")

    try:
        result.verify()
        print("contract: OK (no alert flaps, every capacity action journaled)")
    except SoakVerificationError as exc:
        print(f"contract VIOLATED: {exc}", file=sys.stderr)
        return 1

    entry = result.to_entry(label=args.label)
    status = 0
    if args.compare:
        trajectory = Trajectory.load(args.compare)
        previous = trajectory.latest()
        if previous is None:
            print(f"compare: {args.compare} has no entries; nothing to diff")
        else:
            report = compare(entry, previous)
            print(report.render())
            if not report.ok:
                status = 1
    if args.record:
        trajectory = Trajectory.load(args.record)
        trajectory.append(entry)
        trajectory.save()
        print(f"recorded entry {current_git_sha()} -> {args.record} "
              f"({len(trajectory)} entries)")
    return status


def _fetch_json(url: str):
    import json
    import urllib.request

    with urllib.request.urlopen(url, timeout=5) as response:
        return json.loads(response.read().decode("utf-8"))


def _render_top(base_url: str) -> str:
    health = _fetch_json(base_url + "/health")
    slo = _fetch_json(base_url + "/slo")
    events = _fetch_json(base_url + "/events?n=8")

    lines = [f"stacksync-repro top — {base_url}", ""]
    lines.append(f"health: {health['status']}")
    for component in health["components"]:
        mark = "ok " if component["ok"] else "FAIL"
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(component["detail"].items())
        )
        lines.append(f"  [{mark}] {component['component']:<22s} {detail}")

    lines.append("")
    active = slo["active"]
    lines.append(f"alerts: {', '.join(active) if active else 'none active'}")
    for rule in slo["rules"]:
        state = "FIRING" if rule["active"] else "ok"
        value = rule["last_value"]
        value_text = "n/a" if value is None else f"{value:g}"
        lines.append(
            f"  [{state:>6s}] {rule['definition']} (last={value_text}, "
            f"streak={rule['streak']})"
        )

    lines.append("")
    lines.append(f"journal: {events['total']} event(s); last {len(events['events'])}:")
    for event in events["events"]:
        summary = event.get("reason") or event.get("rule") or ""
        extra = event.get("policy_reason") or event.get("series") or ""
        if extra and extra != summary:
            summary = f"{summary}: {extra}" if summary else extra
        lines.append(
            f"  t={event['timestamp']:.1f} #{event['seq']:<5d} "
            f"{event['kind']:<14s} {summary[:80]}"
        )
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    base_url = args.url.rstrip("/")
    try:
        if args.once:
            print(_render_top(base_url))
            return 0
        while True:
            print("\033[2J\033[H" + _render_top(base_url), flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"cannot reach ops endpoint at {base_url}: {exc}", file=sys.stderr)
        return 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.bench.reporting import render_provisioning_timeline
    from repro.telemetry import load_journal_lines

    with open(args.journal, "r", encoding="utf-8") as fh:
        events = load_journal_lines(fh)
    if not events:
        print(f"no journal events in {args.journal}", file=sys.stderr)
        return 1
    print(render_provisioning_timeline(
        [e.to_dict() for e in events], max_actions=args.max_actions
    ))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="stacksync-repro",
        description="StackSync (Middleware 2014) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser("trace", help="generate a workload trace summary")
    trace.add_argument("--initial-files", type=int, default=20)
    trace.add_argument("--training", type=int, default=5)
    trace.add_argument("--snapshots", type=int, default=100)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--scale", type=float, default=1.0)
    trace.set_defaults(func=_cmd_trace)

    ub1 = sub.add_parser("ub1", help="print a synthetic Ubuntu One day")
    ub1.add_argument("--day", type=int, default=8)
    ub1.add_argument("--seed", type=int, default=2013)
    ub1.add_argument(
        "--resolution", type=int, default=4320,
        help="trace seconds per day (86400 = real time)",
    )
    ub1.set_defaults(func=_cmd_ub1)

    capacity = sub.add_parser("capacity", help="evaluate equations (1)-(2)")
    capacity.add_argument("rate", type=float, help="arrival rate, req/s")
    capacity.add_argument("--sla", type=float, default=450.0, help="d in ms")
    capacity.add_argument("--service", type=float, default=50.0, help="s in ms")
    capacity.add_argument("--ca2", type=float, default=1.0)
    capacity.set_defaults(func=_cmd_capacity)

    experiments = sub.add_parser("experiments", help="list paper artifacts")
    experiments.set_defaults(func=_cmd_experiments)

    demo = sub.add_parser("demo", help="run the two-device sync demo")
    demo.set_defaults(func=_cmd_demo)

    telemetry = sub.add_parser(
        "telemetry",
        help="trace a small replay and show the slowest spans per layer",
    )
    telemetry.add_argument("--initial-files", type=int, default=6)
    telemetry.add_argument("--training", type=int, default=2)
    telemetry.add_argument("--snapshots", type=int, default=12)
    telemetry.add_argument("--seed", type=int, default=42)
    telemetry.add_argument(
        "--top", type=int, default=5, help="slowest spans shown per layer"
    )
    telemetry.add_argument(
        "--jsonl", metavar="PATH", help="write the span dump as JSONL"
    )
    telemetry.add_argument(
        "--chrome", metavar="PATH",
        help="write a Chrome trace_event file (about:tracing / Perfetto)",
    )
    telemetry.add_argument(
        "--load", metavar="PATH",
        help="analyze a previously written JSONL dump instead of replaying",
    )
    telemetry.add_argument(
        "--metrics", action="store_true",
        help="also print the unified metrics registry snapshot",
    )
    telemetry.set_defaults(func=_cmd_telemetry)

    profile = sub.add_parser(
        "profile",
        help="profile a replay: stack samples, lock contention, tail exemplars",
    )
    profile.add_argument("--initial-files", type=int, default=6)
    profile.add_argument("--training", type=int, default=2)
    profile.add_argument("--snapshots", type=int, default=12)
    profile.add_argument("--seed", type=int, default=42)
    profile.add_argument(
        "--hz", type=float, default=200.0, help="stack sampling rate"
    )
    profile.add_argument(
        "--top", type=int, default=10,
        help="rows shown for hottest frames / exemplars",
    )
    profile.add_argument(
        "--collapsed", metavar="PATH",
        help="write collapsed ('folded') stacks for flamegraph tooling",
    )
    profile.add_argument(
        "--chrome", metavar="PATH",
        help="write a Chrome trace_event sampling profile (Perfetto)",
    )
    profile.add_argument(
        "--contention", metavar="PATH",
        help="write the lock-contention + exemplar report as JSON",
    )
    profile.set_defaults(func=_cmd_profile)

    ops = sub.add_parser(
        "ops",
        help="boot the elastic demo stack with the ops endpoint + journal",
    )
    ops.add_argument("--port", type=int, default=0, help="0 = ephemeral port")
    ops.add_argument(
        "--duration", type=float, default=10.0,
        help="seconds to run (0 = until Ctrl-C)",
    )
    ops.add_argument(
        "--rate", type=float, default=40.0, help="commit load, requests/second"
    )
    ops.add_argument(
        "--shards", type=int, default=1,
        help="partition the metadata plane and commit path N ways",
    )
    ops.add_argument(
        "--backend", choices=("memory", "sqlite"), default="memory",
        help="metadata engine behind each shard",
    )
    ops.add_argument(
        "--journal", metavar="PATH",
        help="also append the decision journal to this JSONL file",
    )
    ops.add_argument(
        "--port-file", metavar="PATH",
        help="write the bound port here (for scripts using --port 0)",
    )
    ops.add_argument(
        "--bench", metavar="PATH", default="BENCH_soak.json",
        help="performance-trajectory file served at /bench",
    )
    ops.set_defaults(func=_cmd_ops)

    soak = sub.add_parser(
        "soak",
        help="run the scripted soak and record/compare the perf trajectory",
    )
    soak.add_argument(
        "--smoke", action="store_true",
        help="use the fast CI preset (10^5 users, 2 shards, compressed day)",
    )
    soak.add_argument("--users", type=int, default=None)
    soak.add_argument("--shards", type=int, default=None)
    soak.add_argument("--seed", type=int, default=None)
    soak.add_argument(
        "--phases", default=None,
        help="comma-separated subset of: diurnal-ramp,flash-crowd,rebalance-storm",
    )
    soak.add_argument(
        "--seconds-per-day", type=int, default=None,
        help="trace seconds representing one day (86400 = real time)",
    )
    soak.add_argument("--migrations", type=int, default=None)
    soak.add_argument("--label", default="", help="free-form tag on the entry")
    soak.add_argument(
        "--record", metavar="PATH",
        help="append this run to the trajectory file (e.g. BENCH_soak.json)",
    )
    soak.add_argument(
        "--compare", metavar="PATH",
        help="diff this run against the trajectory's latest entry; "
             "exit 1 on regression",
    )
    soak.add_argument(
        "--journal", metavar="PATH",
        help="also append the decision journal to this JSONL file",
    )
    soak.add_argument(
        "--journal-max-bytes", type=int, default=None,
        help="rotate the journal JSONL once it exceeds this size",
    )
    soak.set_defaults(func=_cmd_soak)

    top = sub.add_parser("top", help="live view of a running ops endpoint")
    top.add_argument(
        "--url", default="http://127.0.0.1:8787", help="ops endpoint base URL"
    )
    top.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    top.add_argument("--interval", type=float, default=1.0)
    top.set_defaults(func=_cmd_top)

    timeline = sub.add_parser(
        "timeline",
        help="render a Fig-8-style provisioning timeline from a journal",
    )
    timeline.add_argument("journal", help="decision-journal JSONL file")
    timeline.add_argument("--max-actions", type=int, default=40)
    timeline.set_defaults(func=_cmd_timeline)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: not an error.
        import os

        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
