"""StackSync reproduction: elastic Dropbox-like file synchronization.

A from-scratch Python implementation of the system described in
*StackSync: Bringing Elasticity to Dropbox-like File Synchronization*
(Garcia Lopez et al., ACM/IFIP/USENIX Middleware 2014):

* :mod:`repro.objectmq` — ObjectMQ, the elastic MOM-RPC middleware (the
  paper's core contribution), over
* :mod:`repro.mom` — an AMQP-semantics message broker,
* :mod:`repro.sync` + :mod:`repro.client` — the StackSync protocol,
  SyncService and desktop client,
* :mod:`repro.metadata` / :mod:`repro.storage` — the metadata and storage
  back-ends,
* :mod:`repro.elasticity` — G/G/1 capacity planning with predictive and
  reactive provisioning,
* :mod:`repro.workload` / :mod:`repro.baselines` /
  :mod:`repro.simulation` / :mod:`repro.bench` — everything needed to
  regenerate the paper's evaluation.

Quickstart::

    from repro.mom import MessageBroker
    from repro.objectmq import Broker
    from repro.metadata import MemoryMetadataBackend
    from repro.storage import SwiftLikeStore
    from repro.sync import SyncService, SYNC_SERVICE_OID, Workspace
    from repro.client import StackSyncClient

    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    storage = SwiftLikeStore()
    metadata.create_user("alice")
    ws = Workspace(workspace_id="ws1", owner="alice")
    metadata.create_workspace(ws)

    server = Broker(mom)
    server.bind(SYNC_SERVICE_OID, SyncService(metadata, server))

    laptop = StackSyncClient("alice", ws, mom, storage, device_id="laptop")
    phone = StackSyncClient("alice", ws, mom, storage, device_id="phone")
    laptop.start(); phone.start()

    meta = laptop.put_file("hello.txt", b"hi from the laptop")
    phone.wait_for_version(meta.item_id, meta.version)
    assert phone.fs.read("hello.txt") == b"hi from the laptop"
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
