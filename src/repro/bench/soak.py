"""Million-user soak harness: scripted load phases over the sharded stack.

The paper's elasticity claim (§5-§6) is about *sustained* Ubuntu One-scale
load, but every benchmark in this repo runs for seconds.  This harness
drives :class:`~repro.simulation.autoscale.ShardedAutoscaleSimulation`
with arrival traces synthesized by
:class:`~repro.workload.ubuntuone.UbuntuOneTraceGenerator` — scaled to a
configured registered-user count — through scripted phases:

* ``diurnal-ramp`` — one full compressed day: night trough, morning ramp,
  noon peak, evening decay (the Fig 8a/8b scenario);
* ``flash-crowd`` — a steady segment whose middle third surges to a
  multiple of the diurnal rate (the Fig 8c/8d/8e misprediction stressor);
* ``rebalance-storm`` — steady traffic while a burst of live
  :meth:`~repro.metadata.sharded.ShardedMetadataBackend.migrate_workspace`
  calls rebalances real workspaces between real metadata shards (the
  operation PR 4 made write-fenced; here it runs under load observation).

Each control period of every shard's simulated Supervisor is a *scrape
point*: the harness updates ``soak_*`` gauges in a
:class:`~repro.telemetry.registry.MetricsRegistry`, evaluates an
:class:`~repro.telemetry.slo.SloEngine` rule set against the snapshot,
and lets every decision, capacity action, alert edge and migration land
in one shared :class:`~repro.telemetry.control.DecisionJournal`.  Phase
records aggregate what the paper plots (commits/sec, p50/p99 sync
latency, queue depth, pool size) plus the control-plane counts PR 3
introduced (decisions, actions, alert edges).

The DES core is deterministic: identical ``(config, seed)`` reproduce
identical per-phase commit counts and journal decision sequences, which
is what lets :mod:`repro.bench.trajectory` band-compare runs across PRs
and machines.  Wall-clock readings (migration latencies, total runtime)
are recorded under the ``wall_`` prefix and excluded from comparison.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.elasticity import ReactiveProvisioner, SlaParameters
from repro.metadata.sharded import ShardedMetadataBackend
from repro.objectmq.introspection import PoolObservation
from repro.objectmq.naming import parse_shard_oid
from repro.simulation.autoscale import (
    ShardedAutoscaleSimulation,
    ShardedSimResult,
    SimConfig,
)
from repro.sync.models import ItemMetadata, Workspace
from repro.telemetry.control import (
    KIND_ALERT_FIRED,
    KIND_ALERT_RESOLVED,
    KIND_DECISION,
    KIND_SHUTDOWN,
    KIND_SPAWN,
    DecisionJournal,
)
from repro.telemetry.profiling import PROFILING, contention_totals
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.slo import SloEngine, SloRule
from repro.telemetry.stats import safe_percentile
from repro.workload.ubuntuone import (
    PAPER_PEAK_PER_MINUTE,
    UB1Config,
    UbuntuOneTraceGenerator,
)
from repro.bench.trajectory import (
    TrajectoryEntry,
    config_fingerprint,
    current_git_sha,
)

#: Phase names understood by :meth:`SoakHarness.run`.
PHASE_DIURNAL = "diurnal-ramp"
PHASE_FLASH = "flash-crowd"
PHASE_REBALANCE = "rebalance-storm"
DEFAULT_PHASES: Tuple[str, ...] = (PHASE_DIURNAL, PHASE_FLASH, PHASE_REBALANCE)

#: The user count the paper's trace corresponds to: Ubuntu One served
#: on the order of a million registered users at its day-8 peak of
#: 8,514 commit requests per minute.  Arrival rates scale linearly.
REFERENCE_USERS = 1_000_000

#: Journal event kind written for each live workspace migration.
KIND_MIGRATE = "migrate"


class SoakVerificationError(Exception):
    """A soak run violated its operational contract (flaps, lost actions)."""


@dataclass(frozen=True)
class SoakConfig:
    """Knobs of one soak run.  Every field shapes the config fingerprint."""

    #: Registered users; scales every arrival rate linearly against the
    #: paper's ~10^6-user trace.
    users: int = REFERENCE_USERS
    #: Metadata/control-plane shards (one supervised pool each).
    shards: int = 4
    seed: int = 2014
    phases: Tuple[str, ...] = DEFAULT_PHASES
    #: Trace seconds representing one day in the diurnal phase (86400 =
    #: real time; the default compresses 30x without changing rates).
    seconds_per_day: int = 2880
    #: Day of the synthetic UB1 history replayed by ``diurnal-ramp``.
    day_index: int = 8
    flash_seconds: int = 600
    flash_hour: float = 15.0
    flash_multiplier: float = 3.0
    rebalance_seconds: int = 600
    rebalance_hour: float = 12.0
    #: Live workspace migrations fired during ``rebalance-storm``.
    migrations: int = 16
    #: Registered rows actually materialized in the metadata backend.
    #: ``None`` materializes ``min(users, 100_000)`` — the arrival scale
    #: always tracks ``users``; the materialization cap only bounds setup
    #: memory for the 10^6 presets.
    population: Optional[int] = None
    #: Items seeded into each workspace picked for migration.
    items_per_migrating_workspace: int = 8
    control_interval: float = 5.0
    observation_window: float = 30.0
    min_instances: int = 1
    max_instances_per_shard: int = 64
    spawn_delay: float = 1.0
    #: Mean commit service time (paper: 50 ms).  Reduced-scale presets
    #: raise it so per-instance load — and therefore the provisioner's
    #: scaling behaviour — matches the full-scale run instead of idling
    #: on one instance per shard.
    service_time_s: float = 0.050
    service_time_variance_s2: float = 200e-6
    #: SLO rule threshold on per-shard queue depth.
    queue_alert_threshold: int = 500

    @property
    def effective_population(self) -> int:
        if self.population is not None:
            return self.population
        return min(self.users, 100_000)

    @property
    def rate_scale(self) -> float:
        return self.users / REFERENCE_USERS

    def fingerprint_payload(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["phases"] = list(self.phases)
        payload["population"] = self.effective_population
        return payload

    def fingerprint(self) -> str:
        return config_fingerprint(self.fingerprint_payload())

    @classmethod
    def smoke(cls, **overrides: object) -> "SoakConfig":
        """The fast CI preset: a 10^5-user soak in well under a minute."""
        base: Dict[str, object] = dict(
            users=100_000,
            shards=2,
            seconds_per_day=720,
            flash_seconds=180,
            rebalance_seconds=180,
            migrations=8,
            max_instances_per_shard=16,
            # 10x the users' share of load per commit: at 1/10th the
            # arrival scale this keeps per-instance utilization — and the
            # scale-up/scale-down dynamics the soak exists to observe —
            # equivalent to the million-user run.
            service_time_s=0.350,
            service_time_variance_s2=0.010,
        )
        base.update(overrides)
        return cls(**base)  # type: ignore[arg-type]


def soak_rules(config: SoakConfig) -> List[SloRule]:
    """The soak's operational contract, as SLO rules over ``soak_*`` gauges.

    A healthy soak never trips these: queue depth stays under the backlog
    budget for every shard (worst-case across ``shard=`` labels) and no
    shard's pool ever collapses below the configured floor.
    """
    return SloRule.parse_many(
        f"""
        soak-queue-backlog: soak_queue_depth > {config.queue_alert_threshold} for 3
        soak-pool-collapse: soak_pool_size < {config.min_instances} for 2
        """
    )


@dataclass
class MigrationRecord:
    """One live ``migrate_workspace`` call made during the storm."""

    workspace_id: str
    source: int
    target: int
    items: int
    versions: int
    wall_seconds: float
    verified: bool


@dataclass
class SoakPhaseRecord:
    """Everything one phase contributes to the trajectory."""

    name: str
    sim_seconds: float
    arrivals: int
    completed: int
    commits_per_sec: float
    p50_latency_s: Optional[float]
    p99_latency_s: Optional[float]
    max_queue_depth: int
    mean_pool_size: float
    max_pool_size: int
    decisions: int
    spawns: int
    shutdowns: int
    alerts_fired: int
    alerts_resolved: int
    alert_flaps: int
    #: Capacity deltas implied by control records but absent from the
    #: journal (must be 0: every action is journaled).
    unjournaled_actions: int
    scrapes: int
    migrations: int = 0
    migration_failures: int = 0
    wall_migration_p50_s: Optional[float] = None
    wall_migration_p99_s: Optional[float] = None

    def metrics(self) -> Dict[str, Optional[float]]:
        """The per-phase dict recorded into the trajectory entry."""
        return {
            "sim_seconds": self.sim_seconds,
            "arrivals": float(self.arrivals),
            "completed": float(self.completed),
            "commits_per_sec": self.commits_per_sec,
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "max_queue_depth": float(self.max_queue_depth),
            "mean_pool_size": self.mean_pool_size,
            "max_pool_size": float(self.max_pool_size),
            "decisions": float(self.decisions),
            "spawns": float(self.spawns),
            "shutdowns": float(self.shutdowns),
            "alerts_fired": float(self.alerts_fired),
            "alerts_resolved": float(self.alerts_resolved),
            "alert_flaps": float(self.alert_flaps),
            "unjournaled_actions": float(self.unjournaled_actions),
            "scrapes": float(self.scrapes),
            "migrations": float(self.migrations),
            "migration_failures": float(self.migration_failures),
            "wall_migration_p50_s": self.wall_migration_p50_s,
            "wall_migration_p99_s": self.wall_migration_p99_s,
        }


@dataclass
class SoakResult:
    """The full outcome of one soak run."""

    config: SoakConfig
    records: List[SoakPhaseRecord] = field(default_factory=list)
    migrations: List[MigrationRecord] = field(default_factory=list)
    journal: Optional[DecisionJournal] = None
    registry: Optional[MetricsRegistry] = None
    wall_runtime_s: float = 0.0

    @property
    def total_arrivals(self) -> int:
        return sum(r.arrivals for r in self.records)

    @property
    def total_completed(self) -> int:
        return sum(r.completed for r in self.records)

    def alert_flap_count(self) -> int:
        return sum(r.alert_flaps for r in self.records)

    def unjournaled_action_count(self) -> int:
        return sum(r.unjournaled_actions for r in self.records)

    def verify(self) -> None:
        """Assert the soak's operational contract; raise on violation.

        * No phase flapped an alert (fired the same rule twice).
        * Every capacity action implied by a control decision appears in
          the journal, back-referenced to its decision.
        * Every migration moved its workspace intact.
        """
        problems: List[str] = []
        flaps = self.alert_flap_count()
        if flaps:
            problems.append(f"{flaps} alert flap(s) across phases")
        unjournaled = self.unjournaled_action_count()
        if unjournaled:
            problems.append(f"{unjournaled} capacity action(s) not journaled")
        failed = [m for m in self.migrations if not m.verified]
        if failed:
            problems.append(
                f"{len(failed)} migration(s) failed verification: "
                + ", ".join(m.workspace_id for m in failed[:5])
            )
        if problems:
            raise SoakVerificationError("; ".join(problems))

    def to_entry(
        self, git_sha: Optional[str] = None, label: str = ""
    ) -> TrajectoryEntry:
        """Flatten the run into one trajectory entry."""
        sim_seconds = sum(r.sim_seconds for r in self.records)
        return TrajectoryEntry(
            git_sha=git_sha if git_sha is not None else current_git_sha(),
            fingerprint=self.config.fingerprint(),
            benchmark="soak",
            label=label,
            phases={r.name: r.metrics() for r in self.records},
            totals={
                "users": float(self.config.users),
                "shards": float(self.config.shards),
                "population": float(self.config.effective_population),
                "sim_seconds": sim_seconds,
                "arrivals": float(self.total_arrivals),
                "completed": float(self.total_completed),
                "commits_per_sec": (
                    self.total_completed / sim_seconds if sim_seconds else 0.0
                ),
                "journal_events": float(len(self.journal)) if self.journal else 0.0,
                "wall_runtime_s": self.wall_runtime_s,
            },
        )


class SoakHarness:
    """Runs the scripted phases and scrapes the stack each control period.

    Args:
        config: The run's knobs (use :meth:`SoakConfig.smoke` for CI).
        registry: Metrics registry receiving the ``soak_*`` gauges; a
            private one by default so soaks do not pollute (or read
            stale values from) the process-wide registry.
        journal: Shared decision journal; defaults to a fresh in-memory
            journal.  Pass one with ``path=``/``max_sink_bytes=`` to
            leave a bounded JSONL operations log behind.
    """

    def __init__(
        self,
        config: Optional[SoakConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        journal: Optional[DecisionJournal] = None,
    ):
        self.config = config if config is not None else SoakConfig()
        if self.config.shards < 1:
            raise ValueError("need at least one shard")
        unknown = [p for p in self.config.phases if p not in DEFAULT_PHASES]
        if unknown:
            raise ValueError(
                f"unknown phase(s) {unknown!r}; valid: {list(DEFAULT_PHASES)}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.journal = journal if journal is not None else DecisionJournal()
        self.slo = SloEngine(
            soak_rules(self.config), registry=self.registry, journal=self.journal
        )
        self.generator = UbuntuOneTraceGenerator(
            UB1Config(
                peak_per_minute=PAPER_PEAK_PER_MINUTE * self.config.rate_scale,
                seconds_per_day=self.config.seconds_per_day,
            ),
            seed=self.config.seed,
        )
        self.params = SlaParameters(
            s=self.config.service_time_s,
            sigma_b2=self.config.service_time_variance_s2,
        )
        self._scrapes = 0

    # -- phase traces ----------------------------------------------------------------

    def phase_arrivals(self, phase: str) -> List[int]:
        """The per-second arrival trace driving *phase*."""
        config = self.config
        if phase == PHASE_DIURNAL:
            return self.generator.arrivals(config.day_index)
        if phase == PHASE_FLASH:
            return self.generator.flash_crowd_arrivals(
                config.day_index + 1,
                config.flash_hour,
                config.flash_seconds,
                multiplier=config.flash_multiplier,
            )
        if phase == PHASE_REBALANCE:
            return self.generator.steady_arrivals(
                config.day_index + 1,
                config.rebalance_hour,
                config.rebalance_seconds,
            )
        raise ValueError(f"unknown phase {phase!r}")

    # -- population ------------------------------------------------------------------

    def _build_population(self) -> Tuple[ShardedMetadataBackend, List[str]]:
        """Materialize registered users/workspaces; seed migration targets.

        Returns the backend and the workspace ids selected for the
        rebalance storm (already populated with versioned items so a
        migration moves real history).
        """
        config = self.config
        backend = ShardedMetadataBackend.memory(config.shards)
        population = config.effective_population
        backend.create_user("soak")
        workspace_ids = [f"ws-soak-{i:06d}" for i in range(population)]
        for workspace_id in workspace_ids:
            backend.create_workspace(
                Workspace(workspace_id=workspace_id, owner="soak")
            )
        rng = random.Random(f"{config.seed}:migrations")
        count = min(config.migrations, population)
        targets = sorted(rng.sample(range(population), count)) if count else []
        migrating = [workspace_ids[i] for i in targets]
        for workspace_id in migrating:
            for item_index in range(config.items_per_migrating_workspace):
                item_id = f"{workspace_id}:f{item_index}"
                backend.store_new_object(ItemMetadata(
                    item_id=item_id,
                    workspace_id=workspace_id,
                    version=1,
                    filename=f"f{item_index}",
                    device_id="soak",
                ))
                backend.store_new_version(ItemMetadata(
                    item_id=item_id,
                    workspace_id=workspace_id,
                    version=2,
                    filename=f"f{item_index}",
                    device_id="soak",
                ))
        return backend, migrating

    # -- scraping --------------------------------------------------------------------

    def _scrape(self, observation: PoolObservation, desired: int) -> None:
        """One control period: gauges + SLO evaluation at simulated time."""
        shard = parse_shard_oid(observation.oid)[1]
        labels = {"shard": str(shard if shard is not None else 0)}
        self.registry.gauge("soak_queue_depth", **labels).set(
            observation.queue_depth
        )
        self.registry.gauge("soak_pool_size", **labels).set(
            observation.instance_count
        )
        self.registry.gauge("soak_lambda_obs", **labels).set(
            observation.arrival_rate
        )
        self.registry.gauge("soak_pool_desired", **labels).set(desired)
        # When the profiling plane is metering locks, mirror the aggregate
        # contention picture into per-control-period gauges.  The soak's
        # DES itself takes no MOM locks, so this reads whatever live MOM
        # components share the process (and stays 0.0 in a pure-DES run)
        # without perturbing the deterministic phase records.
        if PROFILING.lock_timing:
            totals = contention_totals()
            self.registry.gauge("soak_lock_acquisitions").set(
                totals["acquisitions"]
            )
            self.registry.gauge("soak_lock_wait_s").set(totals["wait_s"])
            self.registry.gauge("soak_lock_hold_s").set(totals["hold_s"])
            self.registry.gauge("soak_lock_max_wait_s").set(
                totals["max_wait_s"]
            )
        self.slo.evaluate(now=observation.timestamp)
        self._scrapes += 1

    # -- run -------------------------------------------------------------------------

    def run(self) -> SoakResult:
        config = self.config
        started = time.perf_counter()
        backend, migrating = self._build_population()
        result = SoakResult(
            config=config, journal=self.journal, registry=self.registry
        )
        time_origin = 0.0
        try:
            for index, phase in enumerate(config.phases):
                record = self._run_phase(index, phase, time_origin, backend,
                                         migrating, result)
                result.records.append(record)
                time_origin += record.sim_seconds
        finally:
            backend.close()
        result.wall_runtime_s = time.perf_counter() - started
        return result

    def _run_phase(
        self,
        index: int,
        phase: str,
        time_origin: float,
        backend: ShardedMetadataBackend,
        migrating: List[str],
        result: SoakResult,
    ) -> SoakPhaseRecord:
        config = self.config
        arrivals = self.phase_arrivals(phase)
        duration = float(len(arrivals))
        seq_before = self._last_seq()
        scrapes_before = self._scrapes

        sim = ShardedAutoscaleSimulation(
            arrivals,
            lambda: ReactiveProvisioner(predictive=None, params=self.params),
            config.shards,
            config=SimConfig(
                params=self.params,
                control_interval=config.control_interval,
                observation_window=config.observation_window,
                min_instances=config.min_instances,
                max_instances=config.max_instances_per_shard,
                spawn_delay=config.spawn_delay,
                time_origin=time_origin,
                # Phase-distinct seeds keep service processes independent
                # across phases while staying a pure function of config.
                seed=config.seed + 1000 * index,
            ),
            journal=self.journal,
            on_control_period=self._scrape,
        )
        sharded = sim.run()

        migration_records: List[MigrationRecord] = []
        if phase == PHASE_REBALANCE and config.shards > 1:
            migration_records = self._run_migrations(
                backend, migrating, time_origin, duration
            )
            result.migrations.extend(migration_records)

        return self._phase_record(
            phase, sharded, duration, seq_before, scrapes_before,
            migration_records,
        )

    def _run_migrations(
        self,
        backend: ShardedMetadataBackend,
        migrating: List[str],
        time_origin: float,
        duration: float,
    ) -> List[MigrationRecord]:
        """The storm: move every selected workspace to its next shard.

        Wall-clock latencies are real (`migrate_workspace` exports,
        imports and verifies actual rows under its write fence); journal
        timestamps spread the storm across the phase window so the
        timeline interleaves migrations with scaling decisions.
        """
        records: List[MigrationRecord] = []
        step = duration / (len(migrating) + 1) if migrating else duration
        for index, workspace_id in enumerate(migrating):
            source = backend.shard_for_workspace(workspace_id)
            target = (source + 1) % backend.num_shards
            t0 = time.perf_counter()
            summary = backend.migrate_workspace(workspace_id, target)
            wall = time.perf_counter() - t0
            verified = (
                backend.shard_for_workspace(workspace_id) == target
                and all(
                    len(backend.item_history(f"{workspace_id}:f{i}")) == 2
                    for i in range(self.config.items_per_migrating_workspace)
                )
            )
            records.append(MigrationRecord(
                workspace_id=workspace_id,
                source=summary["source"],
                target=summary["target"],
                items=summary["items"],
                versions=summary["versions"],
                wall_seconds=wall,
                verified=verified,
            ))
            self.journal.append(
                KIND_MIGRATE,
                time_origin + (index + 1) * step,
                workspace_id=workspace_id,
                source=summary["source"],
                target=summary["target"],
                items=summary["items"],
                versions=summary["versions"],
                wall_ms=round(wall * 1000.0, 3),
                verified=verified,
            )
        return records

    # -- record building -------------------------------------------------------------

    def _last_seq(self) -> int:
        events = self.journal.events()
        return events[-1].seq if events else 0

    def _phase_record(
        self,
        phase: str,
        sharded: ShardedSimResult,
        duration: float,
        seq_before: int,
        scrapes_before: int,
        migration_records: List[MigrationRecord],
    ) -> SoakPhaseRecord:
        events = [e for e in self.journal.events() if e.seq > seq_before]
        decisions = [e for e in events if e.kind == KIND_DECISION]
        spawns = [e for e in events if e.kind == KIND_SPAWN]
        shutdowns = [e for e in events if e.kind == KIND_SHUTDOWN]
        fired = [e for e in events if e.kind == KIND_ALERT_FIRED]
        resolved = [e for e in events if e.kind == KIND_ALERT_RESOLVED]

        # A flap is the same rule firing again within the phase.
        fires_per_rule: Dict[str, int] = {}
        for event in fired:
            rule = str(event.data.get("rule", ""))
            fires_per_rule[rule] = fires_per_rule.get(rule, 0) + 1
        flaps = sum(count - 1 for count in fires_per_rule.values() if count > 1)

        # Every capacity delta a control record implies must appear in
        # the journal as a spawn/shutdown carrying its decision_seq.
        implied = sum(
            abs(record.desired - record.capacity_before)
            for shard_result in sharded.shard_results
            for record in shard_result.control_records
        )
        referenced = sum(
            1 for e in spawns + shutdowns if e.data.get("decision_seq")
        )
        unjournaled = abs(implied - len(spawns) - len(shutdowns)) + (
            len(spawns) + len(shutdowns) - referenced
        )

        latencies = sharded.response_times()
        pool_series = sharded.total_capacity_series()
        pool_sizes = [size for _t, size in pool_series]
        max_queue = max(
            (
                record.queue_depth
                for shard_result in sharded.shard_results
                for record in shard_result.control_records
            ),
            default=0,
        )
        migration_walls = [m.wall_seconds for m in migration_records]
        return SoakPhaseRecord(
            name=phase,
            sim_seconds=duration,
            arrivals=sharded.total_arrivals,
            completed=sharded.total_completed,
            commits_per_sec=(
                sharded.total_completed / duration if duration else 0.0
            ),
            p50_latency_s=safe_percentile(latencies, 0.50),
            p99_latency_s=safe_percentile(latencies, 0.99),
            max_queue_depth=max_queue,
            mean_pool_size=(
                sum(pool_sizes) / len(pool_sizes) if pool_sizes else 0.0
            ),
            max_pool_size=max(pool_sizes, default=0),
            decisions=len(decisions),
            spawns=len(spawns),
            shutdowns=len(shutdowns),
            alerts_fired=len(fired),
            alerts_resolved=len(resolved),
            alert_flaps=flaps,
            unjournaled_actions=unjournaled,
            scrapes=self._scrapes - scrapes_before,
            migrations=len(migration_records),
            migration_failures=sum(
                1 for m in migration_records if not m.verified
            ),
            wall_migration_p50_s=safe_percentile(migration_walls, 0.50),
            wall_migration_p99_s=safe_percentile(migration_walls, 0.99),
        )


def run_soak(
    config: Optional[SoakConfig] = None,
    journal: Optional[DecisionJournal] = None,
) -> SoakResult:
    """Convenience one-shot: build a harness, run it, return the result."""
    return SoakHarness(config=config, journal=journal).run()
