"""Registry of the paper's tables and figures → benchmark targets.

A machine-readable version of the per-experiment index in DESIGN.md.
``pytest benchmarks/`` files look experiments up here for their
parameters; the registry also backs the EXPERIMENTS.md generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class Experiment:
    """One paper artifact and how this repository regenerates it."""

    exp_id: str
    paper_artifact: str
    description: str
    bench_file: str
    modules: List[str] = field(default_factory=list)
    expectations: str = ""


EXPERIMENTS: Dict[str, Experiment] = {
    e.exp_id: e
    for e in [
        Experiment(
            exp_id="T1",
            paper_artifact="Table 1",
            description="Desktop client versions used in the evaluation",
            bench_file="benchmarks/test_table1_clients.py",
            modules=["repro.baselines.provider_profiles"],
            expectations="Static metadata matches the paper verbatim.",
        ),
        Experiment(
            exp_id="F7a",
            paper_artifact="Fig 7(a)",
            description="CDF of file size of the generated trace",
            bench_file="benchmarks/test_fig7a_filesize_cdf.py",
            modules=["repro.workload.trace", "repro.workload.filesizes"],
            expectations="~90% of files < 4 MB; mean ≈ 583 KB.",
        ),
        Experiment(
            exp_id="F7b",
            paper_artifact="Fig 7(b)",
            description="Protocol overhead: total traffic / benchmark size",
            bench_file="benchmarks/test_fig7b_overhead.py",
            modules=["repro.bench.overhead", "repro.baselines", "repro.client"],
            expectations="Dropbox highest overhead; StackSync low, comparable "
            "to the other commercial services.",
        ),
        Experiment(
            exp_id="F7c",
            paper_artifact="Fig 7(c)",
            description="Control traffic per action type, StackSync vs Dropbox",
            bench_file="benchmarks/test_fig7cd_traffic_by_action.py",
            modules=["repro.bench.overhead", "repro.baselines.dropbox"],
            expectations="Dropbox ADD control ≈ 8x StackSync's; REMOVE control "
            "dominated by Dropbox per-op cost.",
        ),
        Experiment(
            exp_id="F7d",
            paper_artifact="Fig 7(d)",
            description="Storage traffic per action type, StackSync vs Dropbox",
            bench_file="benchmarks/test_fig7cd_traffic_by_action.py",
            modules=["repro.bench.overhead", "repro.baselines.delta"],
            expectations="StackSync ADD storage < Dropbox; Dropbox UPDATE "
            "storage < StackSync (delta encoding wins).",
        ),
        Experiment(
            exp_id="T2",
            paper_artifact="Table 2",
            description="Effect of file bundling, batch size 5/10/20/40",
            bench_file="benchmarks/test_table2_bundling.py",
            modules=["repro.client.sync_client", "repro.baselines.baseline_client"],
            expectations="Control traffic shrinks with batch size for both; "
            "Dropbox total stays above StackSync.",
        ),
        Experiment(
            exp_id="F7e",
            paper_artifact="Fig 7(e)",
            description="Time to sync 6 devices per operation type (boxplots)",
            bench_file="benchmarks/test_fig7e_sync_time.py",
            modules=["repro.objectmq", "repro.sync", "repro.client", "repro.storage"],
            expectations="All ops sync in seconds; UPDATE right-skewed "
            "(boundary-shifting); REMOVE cheapest (no data flow).",
        ),
        Experiment(
            exp_id="F7f",
            paper_artifact="Fig 7(f)",
            description="Sync time vs file size",
            bench_file="benchmarks/test_fig7f_sync_time_vs_size.py",
            modules=["repro.client", "repro.storage.latency"],
            expectations="Flat floor for small files, linear growth beyond "
            "the knee (paper: ≈2.5 MB).",
        ),
        Experiment(
            exp_id="T3",
            paper_artifact="Table 3",
            description="Provisioning parameters for the UB1 workload",
            bench_file="benchmarks/test_fig8ab_autoscaling.py",
            modules=["repro.elasticity.ggone"],
            expectations="d=450 ms, s=50 ms, σb²=200 ms², τ1=τ2=20%.",
        ),
        Experiment(
            exp_id="F8a",
            paper_artifact="Fig 8(a)",
            description="Day-8 workload and instance counts (pred+reactive)",
            bench_file="benchmarks/test_fig8ab_autoscaling.py",
            modules=["repro.workload.ubuntuone", "repro.elasticity", "repro.simulation"],
            expectations="Instances mimic the diurnal workload at all times.",
        ),
        Experiment(
            exp_id="F8b",
            paper_artifact="Fig 8(b)",
            description="Response times under auto-scaling (SLA 450 ms)",
            bench_file="benchmarks/test_fig8ab_autoscaling.py",
            modules=["repro.simulation.autoscale"],
            expectations="Response times stay under the SLA except short "
            "spikes at instance arrival/removal.",
        ),
        Experiment(
            exp_id="F8c",
            paper_artifact="Fig 8(c)",
            description="Expected vs observed arrival rate (misprediction)",
            bench_file="benchmarks/test_fig8cde_misprediction.py",
            modules=["repro.elasticity.predictive"],
            expectations="Predictor fooled into hour-30 pattern during hour 20.",
        ),
        Experiment(
            exp_id="F8d",
            paper_artifact="Fig 8(d)",
            description="Instance counts under misprediction",
            bench_file="benchmarks/test_fig8cde_misprediction.py",
            modules=["repro.elasticity.reactive"],
            expectations="Reactive provisioner corrects the wrong allocation "
            "within a few control periods.",
        ),
        Experiment(
            exp_id="F8e",
            paper_artifact="Fig 8(e)",
            description="Response times under misprediction",
            bench_file="benchmarks/test_fig8cde_misprediction.py",
            modules=["repro.simulation.autoscale"],
            expectations="High response times while under-provisioned, sharp "
            "drop after the reactive correction.",
        ),
        Experiment(
            exp_id="F8f",
            paper_artifact="Fig 8(f)",
            description="Fault tolerance: instance crash every 30 s",
            bench_file="benchmarks/test_fig8f_fault_tolerance.py",
            modules=["repro.objectmq.supervisor", "repro.objectmq.faults"],
            expectations="Response time rises during crashes but stays well "
            "bounded (paper: < 1 s extra); no request lost.",
        ),
    ]
}


def experiment_index_markdown() -> str:
    """Markdown table of the registry (used to build EXPERIMENTS.md)."""
    lines = [
        "| Exp | Paper artifact | Bench target | Expectation |",
        "|---|---|---|---|",
    ]
    for experiment in EXPERIMENTS.values():
        lines.append(
            f"| {experiment.exp_id} | {experiment.paper_artifact} | "
            f"`{experiment.bench_file}` | {experiment.expectations} |"
        )
    return "\n".join(lines)
