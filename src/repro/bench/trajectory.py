"""The persistent performance trajectory: ``BENCH_*.json`` record + compare.

The repo's perf claims were, until this module, point-in-time: every
benchmark printed its numbers and threw them away, so nothing observed
performance *across* PRs.  This module gives every run a durable record:

* :class:`TrajectoryEntry` — one run of one benchmark: the git SHA it ran
  at, a fingerprint of the configuration that shaped it, and a
  ``phases`` map of named metric dicts (for the soak harness, one dict
  per load phase; for an ablation, one per swept configuration).

* :class:`Trajectory` — a versioned, append-only JSON file
  (``BENCH_soak.json`` at the repo root is the canonical instance).
  Loading, appending and saving never rewrites history: entries are only
  ever added, so the file *is* the performance trajectory of the repo,
  one entry per recorded run.

* :func:`compare` — tolerance-banded regression detection between two
  entries.  Deterministic metrics (the soak DES yields identical
  commits/sec and latency percentiles for identical seed + config) are
  compared within bands wide enough for cross-platform float noise but
  far tighter than a real regression; a throughput drop or latency rise
  past its band fails loudly, which is what lets CI diff a fresh smoke
  run against the committed trajectory.

Wall-clock metrics (ablation throughputs, migration latencies) ride in
the same schema but are marked informational via
:data:`INFORMATIONAL_PREFIX` so noisy hardware cannot fail a build.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: Bump when the entry layout changes; loaders reject newer majors.
SCHEMA_VERSION = 1

#: Phase metrics whose key starts with this prefix are recorded but never
#: compared: wall-clock readings vary with the hardware underneath.
INFORMATIONAL_PREFIX = "wall_"

#: Default per-metric tolerance bands, as fractional drift from the
#: previous entry.  "lower is better" metrics fail on rises, "higher is
#: better" on drops.  The throughput band must stay well under 0.20 so a
#: 20% regression is always caught.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "commits_per_sec": 0.10,        # higher is better
    "p50_latency_s": 0.25,          # lower is better
    "p99_latency_s": 0.50,          # lower is better
}

#: Count metrics compared exactly (the DES is deterministic; any drift
#: means behaviour changed, not noise).
EXACT_METRICS = ("alerts_fired", "alert_flaps")

#: Metrics where a *higher* current value is the regression direction.
LOWER_IS_BETTER = ("p50_latency_s", "p99_latency_s")


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """Short stable digest of a run configuration.

    Canonical-JSON SHA-256, truncated to 12 hex chars: enough to tell two
    configurations apart at a glance in the trajectory file, stable
    across Python versions and dict orderings.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def current_git_sha(cwd: Optional[str] = None) -> str:
    """The HEAD commit stamped onto entries; degrades to env then 'unknown'."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA", "unknown")[:12] or "unknown"


@dataclass
class TrajectoryEntry:
    """One recorded run: identity, configuration, per-phase metrics."""

    git_sha: str
    fingerprint: str
    benchmark: str = "soak"
    label: str = ""
    recorded_at: float = 0.0
    schema_version: int = SCHEMA_VERSION
    #: ``{phase name: {metric: value}}``; values are numbers or None
    #: (a phase that produced no sample records the absence explicitly).
    phases: Dict[str, Dict[str, Optional[float]]] = field(default_factory=dict)
    #: Run-level aggregates (total commits, runtime, population, ...).
    totals: Dict[str, Optional[float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "benchmark": self.benchmark,
            "recorded_at": self.recorded_at,
            "git_sha": self.git_sha,
            "fingerprint": self.fingerprint,
            "label": self.label,
            "phases": self.phases,
            "totals": self.totals,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "TrajectoryEntry":
        version = int(raw.get("schema_version", 0))
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"trajectory entry has schema v{version}; "
                f"this build reads up to v{SCHEMA_VERSION}"
            )
        return cls(
            git_sha=str(raw.get("git_sha", "unknown")),
            fingerprint=str(raw.get("fingerprint", "")),
            benchmark=str(raw.get("benchmark", "soak")),
            label=str(raw.get("label", "")),
            recorded_at=float(raw.get("recorded_at", 0.0)),
            schema_version=version,
            phases={
                str(name): dict(metrics)
                for name, metrics in dict(raw.get("phases", {})).items()
            },
            totals=dict(raw.get("totals", {})),
        )


class Trajectory:
    """A versioned append-only sequence of :class:`TrajectoryEntry`.

    The on-disk form is one JSON object::

        {"schema_version": 1, "benchmark": "soak", "entries": [...]}

    ``append`` only ever extends ``entries``; ``save`` rewrites the file
    but never drops or reorders what was loaded, so committed history is
    preserved by construction.
    """

    def __init__(self, path: str, benchmark: str = "soak"):
        self.path = path
        self.benchmark = benchmark
        self.entries: List[TrajectoryEntry] = []

    @classmethod
    def load(cls, path: str, benchmark: str = "soak") -> "Trajectory":
        """Load *path*; a missing file yields an empty trajectory."""
        trajectory = cls(path, benchmark=benchmark)
        if not os.path.exists(path):
            return trajectory
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        version = int(raw.get("schema_version", 0))
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"{path} has schema v{version}; "
                f"this build reads up to v{SCHEMA_VERSION}"
            )
        trajectory.benchmark = str(raw.get("benchmark", benchmark))
        trajectory.entries = [
            TrajectoryEntry.from_dict(entry) for entry in raw.get("entries", [])
        ]
        return trajectory

    def append(self, entry: TrajectoryEntry) -> TrajectoryEntry:
        if entry.benchmark != self.benchmark:
            raise ValueError(
                f"entry benchmark {entry.benchmark!r} does not match "
                f"trajectory {self.benchmark!r}"
            )
        if not entry.recorded_at:
            entry.recorded_at = time.time()
        self.entries.append(entry)
        return entry

    def latest(self) -> Optional[TrajectoryEntry]:
        return self.entries[-1] if self.entries else None

    def save(self, path: Optional[str] = None) -> str:
        path = path or self.path
        payload = {
            "schema_version": SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path

    def __len__(self) -> int:
        return len(self.entries)


# -- comparison --------------------------------------------------------------------


@dataclass(frozen=True)
class MetricCheck:
    """One compared metric: where it was, where it is, what was allowed."""

    phase: str
    metric: str
    previous: Optional[float]
    current: Optional[float]
    allowed_drift: Optional[float]
    ok: bool
    note: str = ""


@dataclass
class ComparisonReport:
    """The verdict of :func:`compare`: per-metric checks + regressions."""

    previous_sha: str
    current_sha: str
    comparable: bool
    checks: List[MetricCheck] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricCheck]:
        return [check for check in self.checks if not check.ok]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """ASCII report for the CLI / CI logs."""
        from repro.bench.reporting import render_table

        lines = [
            f"trajectory compare: {self.previous_sha} -> {self.current_sha}"
            + ("" if self.comparable else "  [configs differ: not compared]")
        ]
        lines.extend(f"  note: {note}" for note in self.notes)
        if self.checks:
            rows = [
                [
                    check.phase,
                    check.metric,
                    "n/a" if check.previous is None else f"{check.previous:.4g}",
                    "n/a" if check.current is None else f"{check.current:.4g}",
                    "exact" if check.allowed_drift is None
                    else f"±{check.allowed_drift:.0%}",
                    "ok" if check.ok else "REGRESSION",
                ]
                for check in self.checks
            ]
            lines.append(render_table(
                ["phase", "metric", "previous", "current", "band", "verdict"],
                rows,
            ))
        lines.append(
            "verdict: OK" if self.ok
            else f"verdict: {len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)


def compare(
    current: TrajectoryEntry,
    previous: TrajectoryEntry,
    tolerances: Optional[Mapping[str, float]] = None,
) -> ComparisonReport:
    """Diff *current* against *previous* within tolerance bands.

    Only entries with matching config fingerprints are numerically
    compared — a deliberate config change (more users, different phases)
    is a new baseline, not a regression.  Within a comparable pair:

    * banded metrics (:data:`DEFAULT_TOLERANCES`) fail when they drift
      past their band in the regression direction (throughput down,
      latency up);
    * exact metrics (:data:`EXACT_METRICS`) fail on any increase — a
      soak that starts firing alerts has changed behaviour, full stop;
    * metrics prefixed :data:`INFORMATIONAL_PREFIX` are ignored;
    * a phase present before but missing now is a regression (coverage
      shrank silently); a new phase is noted, not failed.
    """
    bands = dict(DEFAULT_TOLERANCES)
    if tolerances:
        bands.update(tolerances)
    report = ComparisonReport(
        previous_sha=previous.git_sha,
        current_sha=current.git_sha,
        comparable=current.fingerprint == previous.fingerprint,
    )
    if not report.comparable:
        report.notes.append(
            f"fingerprint changed {previous.fingerprint} -> "
            f"{current.fingerprint}: new baseline, nothing compared"
        )
        return report

    for phase, prev_metrics in previous.phases.items():
        cur_metrics = current.phases.get(phase)
        if cur_metrics is None:
            report.checks.append(MetricCheck(
                phase, "<phase>", None, None, None, ok=False,
                note="phase disappeared from the run",
            ))
            continue
        report.checks.extend(
            _check_metrics(phase, prev_metrics, cur_metrics, bands)
        )
    for phase in current.phases:
        if phase not in previous.phases:
            report.notes.append(f"new phase {phase!r} (no baseline yet)")
    return report


def _check_metrics(
    phase: str,
    previous: Mapping[str, Optional[float]],
    current: Mapping[str, Optional[float]],
    bands: Mapping[str, float],
) -> List[MetricCheck]:
    checks: List[MetricCheck] = []
    for metric in EXACT_METRICS:
        prev = previous.get(metric)
        cur = current.get(metric)
        if prev is None and cur is None:
            continue
        grew = (cur or 0) > (prev or 0)
        checks.append(MetricCheck(
            phase, metric, prev, cur, None, ok=not grew,
            note="" if not grew else "count increased",
        ))
    for metric, band in bands.items():
        prev = previous.get(metric)
        cur = current.get(metric)
        if prev is None or cur is None:
            # One side has no sample (e.g. an idle phase's p99): nothing
            # to band. Flag only the case where data vanished.
            vanished = prev is not None and cur is None
            if prev is None and cur is None:
                continue
            checks.append(MetricCheck(
                phase, metric, prev, cur, band, ok=not vanished,
                note="no baseline sample" if prev is None else "sample vanished",
            ))
            continue
        if metric in LOWER_IS_BETTER:
            limit = prev * (1.0 + band)
            ok = cur <= limit or cur - prev < 1e-9
        else:
            limit = prev * (1.0 - band)
            ok = cur >= limit
        checks.append(MetricCheck(
            phase, metric, prev, cur, band, ok=ok,
            note="" if ok else f"past the {band:.0%} band",
        ))
    return checks


# -- shared benchmark recorder ------------------------------------------------------


def record_benchmark_entry(
    benchmark: str,
    phases: Mapping[str, Mapping[str, Optional[float]]],
    config: Mapping[str, Any],
    totals: Optional[Mapping[str, Optional[float]]] = None,
    label: str = "",
    directory: Optional[str] = None,
    git_sha: Optional[str] = None,
) -> TrajectoryEntry:
    """Build a trajectory entry for one benchmark run; optionally persist.

    This is the one recorder every benchmark shares (the ablations call
    it with their headline numbers), so all perf history lands in one
    schema instead of bespoke JSON.  Persistence is opt-in: the entry is
    appended to ``BENCH_<benchmark>.json`` under *directory* — defaulting
    to the ``REPRO_BENCH_TRAJECTORY_DIR`` environment variable — and only
    when a directory is configured, so plain test runs stay
    side-effect-free.
    """
    entry = TrajectoryEntry(
        git_sha=git_sha if git_sha is not None else current_git_sha(),
        fingerprint=config_fingerprint(dict(config)),
        benchmark=benchmark,
        label=label,
        phases={name: dict(metrics) for name, metrics in phases.items()},
        totals=dict(totals or {}),
    )
    directory = directory or os.environ.get("REPRO_BENCH_TRAJECTORY_DIR")
    if directory:
        path = os.path.join(directory, f"BENCH_{benchmark}.json")
        trajectory = Trajectory.load(path, benchmark=benchmark)
        trajectory.append(entry)
        trajectory.save()
    return entry
