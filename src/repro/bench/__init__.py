"""Benchmark harness: trace replay, traffic metering, experiment registry."""

from repro.bench.experiments import EXPERIMENTS, Experiment, experiment_index_markdown
from repro.bench.overhead import (
    HTTP_STORAGE_OVERHEAD,
    StackSyncTestbed,
    build_testbed,
    overhead_comparison,
    replay_profile,
    replay_stacksync,
)
from repro.bench.reporting import (
    mb,
    render_boxplot_row,
    render_cdf,
    render_series,
    render_table,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "HTTP_STORAGE_OVERHEAD",
    "StackSyncTestbed",
    "build_testbed",
    "experiment_index_markdown",
    "mb",
    "overhead_comparison",
    "render_boxplot_row",
    "render_cdf",
    "render_series",
    "render_table",
    "replay_profile",
    "replay_stacksync",
]
