"""Trace-replay harness measuring protocol overhead (Fig 7b-d, Table 2).

``replay_stacksync`` drives the *real* StackSync stack — client, ObjectMQ
over the in-process MOM broker, SyncService, metadata back-end and the
Swift-like store — through a workload trace, one operation at a time
("the next operation did not start until the current one was
successfully committed", §5.2.2), and meters:

* **control traffic** — every byte published through the message broker
  (commit requests, notifications, replies);
* **storage traffic** — every byte PUT to / GET from the object store,
  plus a fixed per-request HTTP overhead matching what the commercial
  profiles are charged.

``replay_profile`` runs the same trace through a simulated commercial
client (:class:`~repro.baselines.ProfileClient`), so StackSync and the
baselines see byte-identical contents.
"""

from __future__ import annotations

import uuid
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.baseline_client import ProfileClient, TrafficReport
from repro.baselines.provider_profiles import ProviderProfile
from repro.client.sync_client import StackSyncClient
from repro.metadata.memory_backend import MemoryMetadataBackend
from repro.mom.broker_server import MessageBroker
from repro.objectmq.broker import Broker
from repro.storage.object_store import SwiftLikeStore
from repro.sync.interface import SYNC_SERVICE_OID
from repro.sync.models import Workspace
from repro.sync.service import SyncService
from repro.telemetry.trace import TRACER
from repro.workload.trace import OP_ADD, OP_REMOVE, OP_UPDATE, Trace, TraceReplayer

#: HTTP/TLS framing charged per storage request, matching the
#: per_object_storage_overhead the provider profiles pay.
HTTP_STORAGE_OVERHEAD = 600

#: Shared disabled-path context manager (stateless, so reusable).
_NOOP = nullcontext()


@dataclass
class StackSyncTestbed:
    """A complete single-user StackSync deployment in one process."""

    mom: MessageBroker
    metadata: MemoryMetadataBackend
    storage: SwiftLikeStore
    server_broker: Broker
    service: SyncService
    client: StackSyncClient
    workspace: Workspace

    def close(self) -> None:
        self.client.stop()
        self.server_broker.close()
        self.mom.close()


def build_testbed(
    user: str = "bench-user",
    instances: int = 1,
    batch_size: int = 1,
    chunker=None,
    compressor=None,
) -> StackSyncTestbed:
    """Stand up broker + service + one client for replay experiments."""
    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    storage = SwiftLikeStore(node_count=4, replicas=2)
    metadata.create_user(user)
    workspace = Workspace(workspace_id=f"ws-{uuid.uuid4().hex[:8]}", owner=user)
    metadata.create_workspace(workspace)

    server_broker = Broker(mom)
    service = SyncService(metadata, server_broker)
    for _ in range(max(1, instances)):
        server_broker.bind(SYNC_SERVICE_OID, service)

    client = StackSyncClient(
        user,
        workspace,
        mom,
        storage,
        device_id="bench-dev",
        batch_size=batch_size,
        chunker=chunker,
        compressor=compressor,
    )
    client.start()
    return StackSyncTestbed(
        mom=mom,
        metadata=metadata,
        storage=storage,
        server_broker=server_broker,
        service=service,
        client=client,
        workspace=workspace,
    )


def replay_stacksync(
    trace: Trace,
    batch_size: int = 1,
    compressible_fraction: Optional[float] = 0.05,
    chunker=None,
    compressor=None,
    wait_timeout: float = 30.0,
    testbed: Optional[StackSyncTestbed] = None,
) -> TrafficReport:
    """Replay *trace* through the real StackSync stack; meter traffic."""
    own = testbed is None
    if testbed is None:
        testbed = build_testbed(
            batch_size=batch_size, chunker=chunker, compressor=compressor
        )
    client = testbed.client
    replayer = TraceReplayer(trace, compressible_fraction=compressible_fraction)
    report = TrafficReport(provider="StackSync")

    control_before = testbed.mom.stats.snapshot()["bytes_published"]
    storage_before = testbed.storage.bytes_in + testbed.storage.bytes_out
    puts_before = testbed.storage.put_count + testbed.storage.get_count

    pending = []  # proposals awaiting confirmation in the open batch
    for op in trace:
        op_control_0 = testbed.mom.stats.snapshot()["bytes_published"]
        op_storage_0 = testbed.storage.bytes_in + testbed.storage.bytes_out
        op_reqs_0 = testbed.storage.put_count + testbed.storage.get_count

        # Per-op root span covering commit + confirmation wait; the span
        # name is only built on the enabled path.
        with TRACER.span(
            f"bench.op:{op.op}", layer="bench", attrs={"path": op.path}
        ) if TRACER.enabled else _NOOP:
            content = replayer.materialize(op)
            if op.op in (OP_ADD, OP_UPDATE):
                proposal = client.put_file(op.path, content or b"")
            elif op.op == OP_REMOVE:
                proposal = client.delete_file(op.path)
            else:
                raise ValueError(f"unknown op {op.op!r}")
            pending.append(proposal)

            if len(pending) >= batch_size:
                client.flush()
                last = pending[-1]
                client.wait_for_version(
                    last.item_id, last.version, timeout=wait_timeout
                )
                pending.clear()
                report.batches += 1

        op_control = testbed.mom.stats.snapshot()["bytes_published"] - op_control_0
        op_storage = testbed.storage.bytes_in + testbed.storage.bytes_out - op_storage_0
        op_reqs = testbed.storage.put_count + testbed.storage.get_count - op_reqs_0
        report.add(op.op, op_control, op_storage + op_reqs * HTTP_STORAGE_OVERHEAD)

    if pending:
        client.flush()
        last = pending[-1]
        client.wait_for_version(last.item_id, last.version, timeout=wait_timeout)
        report.batches += 1

    # Reconcile the per-op sums with the global counters (commit
    # confirmations may land just after an op window closes).
    total_control = testbed.mom.stats.snapshot()["bytes_published"] - control_before
    total_storage = testbed.storage.bytes_in + testbed.storage.bytes_out - storage_before
    total_reqs = testbed.storage.put_count + testbed.storage.get_count - puts_before
    report.control_bytes = total_control
    report.storage_bytes = total_storage + total_reqs * HTTP_STORAGE_OVERHEAD

    if own:
        testbed.close()
    return report


def replay_profile(
    trace: Trace,
    profile: ProviderProfile,
    batch_size: int = 1,
    compressible_fraction: Optional[float] = 0.05,
) -> TrafficReport:
    """Replay *trace* through a simulated commercial client."""
    client = ProfileClient(profile, batch_size=batch_size)
    replayer = TraceReplayer(trace, compressible_fraction=compressible_fraction)
    return client.replay(trace, replayer)


def overhead_comparison(
    trace: Trace,
    profiles: Dict[str, ProviderProfile],
    compressible_fraction: Optional[float] = 0.05,
) -> Dict[str, TrafficReport]:
    """Fig 7(b): replay under StackSync and every provider profile."""
    reports = {
        "StackSync": replay_stacksync(
            trace, compressible_fraction=compressible_fraction
        )
    }
    for name, profile in profiles.items():
        reports[name] = replay_profile(
            trace, profile, compressible_fraction=compressible_fraction
        )
    return reports
