"""ASCII rendering of tables and figure-series for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper artifact
reports, via these helpers, so ``pytest benchmarks/ --benchmark-only -s``
regenerates a textual version of each table and figure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    columns = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [line, "| " + " | ".join(h.ljust(w) for h, w in zip(columns, widths)) + " |", line]
    for row in str_rows:
        out.append("| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |")
    out.append(line)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def render_series(
    title: str,
    points: Sequence[Tuple[float, float]],
    width: int = 72,
    height: int = 12,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Coarse ASCII line chart of an (x, y) series."""
    if not points:
        return f"{title}\n  (no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        y_max = y_min + 1

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = int((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = [title]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_max:10.2f} |"
        elif i == height - 1:
            label = f"{y_min:10.2f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"{x_min:<12.1f}{x_label:^{max(0, width - 24)}}{x_max:>12.1f}"
    )
    if y_label:
        lines.insert(1, f"  [{y_label}]")
    return "\n".join(lines)


def render_boxplot_row(label: str, stats, unit_scale: float = 1.0, unit: str = "") -> str:
    """One textual boxplot: min [Q1 | median | Q3] max."""
    return (
        f"{label:>10s}: min={stats.minimum * unit_scale:8.2f}{unit} "
        f"[Q1={stats.q1 * unit_scale:8.2f}{unit} "
        f"med={stats.median * unit_scale:8.2f}{unit} "
        f"Q3={stats.q3 * unit_scale:8.2f}{unit}] "
        f"max={stats.maximum * unit_scale:8.2f}{unit} (n={stats.count})"
    )


def render_cdf(
    title: str, values: Sequence[float], probes: Sequence[float], fmt=lambda v: f"{v:.0f}"
) -> str:
    """Textual CDF: P(X <= probe) for each probe value."""
    ordered = sorted(values)
    n = len(ordered)
    lines = [title]
    for probe in probes:
        count = sum(1 for v in ordered if v <= probe)
        fraction = count / n if n else 0.0
        bar = "#" * int(fraction * 50)
        lines.append(f"  <= {fmt(probe):>10s}: {fraction * 100:6.2f}% {bar}")
    return "\n".join(lines)


def mb(nbytes: float) -> float:
    """Bytes → megabytes (SI-ish, as the paper reports)."""
    return nbytes / (1024 * 1024)
