"""ASCII rendering of tables and figure-series for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper artifact
reports, via these helpers, so ``pytest benchmarks/ --benchmark-only -s``
regenerates a textual version of each table and figure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width ASCII table."""
    columns = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [line, "| " + " | ".join(h.ljust(w) for h, w in zip(columns, widths)) + " |", line]
    for row in str_rows:
        out.append("| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |")
    out.append(line)
    return "\n".join(out)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def render_series(
    title: str,
    points: Sequence[Tuple[float, float]],
    width: int = 72,
    height: int = 12,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Coarse ASCII line chart of an (x, y) series."""
    if not points:
        return f"{title}\n  (no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        y_max = y_min + 1

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_min) / (x_max - x_min) * (width - 1))
        row = int((y - y_min) / (y_max - y_min) * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = [title]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_max:10.2f} |"
        elif i == height - 1:
            label = f"{y_min:10.2f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"{x_min:<12.1f}{x_label:^{max(0, width - 24)}}{x_max:>12.1f}"
    )
    if y_label:
        lines.insert(1, f"  [{y_label}]")
    return "\n".join(lines)


def render_boxplot_row(label: str, stats, unit_scale: float = 1.0, unit: str = "") -> str:
    """One textual boxplot: min [Q1 | median | Q3] max."""
    return (
        f"{label:>10s}: min={stats.minimum * unit_scale:8.2f}{unit} "
        f"[Q1={stats.q1 * unit_scale:8.2f}{unit} "
        f"med={stats.median * unit_scale:8.2f}{unit} "
        f"Q3={stats.q3 * unit_scale:8.2f}{unit}] "
        f"max={stats.maximum * unit_scale:8.2f}{unit} (n={stats.count})"
    )


def render_cdf(
    title: str, values: Sequence[float], probes: Sequence[float], fmt=lambda v: f"{v:.0f}"
) -> str:
    """Textual CDF: P(X <= probe) for each probe value."""
    ordered = sorted(values)
    n = len(ordered)
    lines = [title]
    for probe in probes:
        count = sum(1 for v in ordered if v <= probe)
        fraction = count / n if n else 0.0
        bar = "#" * int(fraction * 50)
        lines.append(f"  <= {fmt(probe):>10s}: {fraction * 100:6.2f}% {bar}")
    return "\n".join(lines)


def render_dual_series(
    title: str,
    series_a: Sequence[Tuple[float, float]],
    series_b: Sequence[Tuple[float, float]],
    label_a: str = "a",
    label_b: str = "b",
    width: int = 72,
    height: int = 12,
    x_label: str = "",
) -> str:
    """Two overlaid (x, y) series on a shared scale: ``*`` vs ``o``.

    Cells where both series land render ``@``.  Used for the Fig 8(c)
    λ_obs vs λ_pred comparison and for census vs desired pool size.
    """
    if not series_a and not series_b:
        return f"{title}\n  (no data)"
    xs = [p[0] for p in series_a] + [p[0] for p in series_b]
    ys = [p[1] for p in series_a] + [p[1] for p in series_b]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        y_max = y_min + 1

    grid = [[" "] * width for _ in range(height)]

    def plot(points: Sequence[Tuple[float, float]], glyph: str) -> None:
        for x, y in points:
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            cell = grid[height - 1 - row][col]
            grid[height - 1 - row][col] = glyph if cell in (" ", glyph) else "@"

    plot(series_a, "*")
    plot(series_b, "o")

    lines = [title, f"  [*={label_a}  o={label_b}  @=both]"]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_max:10.2f} |"
        elif i == height - 1:
            label = f"{y_min:10.2f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 11 + f"{x_min:<12.1f}{x_label:^{max(0, width - 24)}}{x_max:>12.1f}"
    )
    return "\n".join(lines)


def render_provisioning_timeline(
    events: Sequence[Dict[str, object]],
    width: int = 72,
    height: int = 10,
    max_actions: int = 40,
) -> str:
    """Fig-8-style report of one run's scaling-decision journal.

    Takes the flattened event dicts of a
    :class:`~repro.telemetry.control.DecisionJournal` (live objects via
    ``journal.to_dict()``-style flattening, or loaded back from a JSONL
    file) and renders:

    * pool size over time — census vs desired (Fig 8a/8d),
    * λ_obs vs λ_pred over time (Fig 8c),
    * every spawn/shutdown action with its reason and the policy reason
      of the decision that caused it,
    * alert fired/resolved markers from the SLO engine.
    """
    decisions = [e for e in events if e.get("kind") == "decision"]
    actions = [e for e in events if e.get("kind") in ("spawn", "shutdown")]
    alerts = [
        e for e in events if e.get("kind") in ("alert-fired", "alert-resolved")
    ]
    sections: List[str] = []

    census = [(float(d["timestamp"]), float(d["census"])) for d in decisions]
    desired = [(float(d["timestamp"]), float(d["desired"])) for d in decisions]
    sections.append(
        render_dual_series(
            "Pool size over time (Fig 8a)",
            census,
            desired,
            label_a="census",
            label_b="desired",
            width=width,
            height=height,
            x_label="time (s)",
        )
    )

    lam_obs = [(float(d["timestamp"]), float(d["lam_obs"])) for d in decisions]
    lam_pred = [(float(d["timestamp"]), float(d["lam_pred"])) for d in decisions]
    sections.append(
        render_dual_series(
            "Arrival rate: observed vs predicted (Fig 8c)",
            lam_obs,
            lam_pred,
            label_a="lam_obs",
            label_b="lam_pred",
            width=width,
            height=height,
            x_label="time (s)",
        )
    )

    if actions:
        rows = [
            [
                f"{float(a['timestamp']):.1f}",
                str(a["kind"]),
                str(a.get("reason", "")),
                _truncate(str(a.get("policy_reason", "")), 60),
            ]
            for a in actions[:max_actions]
        ]
        sections.append(
            "Scaling actions"
            + (
                f" (first {max_actions} of {len(actions)})"
                if len(actions) > max_actions
                else f" ({len(actions)})"
            )
            + ":\n"
            + render_table(["t (s)", "action", "reason", "decision"], rows)
        )
    else:
        sections.append("Scaling actions: none")

    if alerts:
        rows = [
            [
                f"{float(a['timestamp']):.1f}",
                str(a["kind"]),
                str(a.get("rule", "")),
                str(a.get("severity", "")),
                f"{a.get('series', '')} {a.get('op', '')} "
                f"{a.get('threshold', '')} (value={a.get('value', '')})",
            ]
            for a in alerts
        ]
        sections.append(
            f"SLO alerts ({len(alerts)}):\n"
            + render_table(["t (s)", "event", "rule", "severity", "condition"], rows)
        )
    else:
        sections.append("SLO alerts: none")

    return "\n\n".join(sections)


def _truncate(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def mb(nbytes: float) -> float:
    """Bytes → megabytes (SI-ish, as the paper reports)."""
    return nbytes / (1024 * 1024)
