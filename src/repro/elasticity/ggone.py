"""G/G/1 capacity planning — equations (1) and (2) of the paper (§4.3).

Each synchronization server is modeled as a G/G/1 queue (arbitrary
interarrival and service distributions).  Given an SLA on the response
time *d*, the mean service time *s*, and the variances of interarrival and
service times σ_a² and σ_b², a single server can sustain a request rate of
at least::

    δ ≥ [ s + (σ_a² + σ_b²) / (2 (d − s)) ]^{-1}          (1)

and the number of instances needed for a peak arrival rate λ is::

    η = ⌈ λ / δ ⌉                                          (2)

All times are in **seconds** and variances in **seconds²**.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ProvisioningError


@dataclass(frozen=True)
class SlaParameters:
    """The operating parameters of Table 3 (defaults match the paper).

    Attributes:
        d: Target response time for a commit request, seconds (450 ms).
        s: Mean service time of a commit request, seconds (50 ms).
        sigma_b2: Service-time variance, seconds² (paper: "200 msec",
            read as 200 ms² = 2.0e-4 s²).
        tau_1: Reactive trigger on overload, fractional (20%).
        tau_2: Reactive trigger on drop, fractional (20%).
    """

    d: float = 0.450
    s: float = 0.050
    sigma_b2: float = 200e-6
    tau_1: float = 0.20
    tau_2: float = 0.20

    def __post_init__(self) -> None:
        if self.d <= self.s:
            raise ProvisioningError(
                f"SLA d={self.d}s must exceed mean service time s={self.s}s"
            )
        if self.s <= 0:
            raise ProvisioningError("mean service time must be positive")


#: The paper's Table 3 configuration.
PAPER_PARAMETERS = SlaParameters()


class GG1CapacityModel:
    """Implements equations (1) and (2) over live-monitored statistics."""

    def __init__(self, params: SlaParameters = PAPER_PARAMETERS):
        self.params = params

    def per_server_rate(
        self,
        ca2: float = 1.0,
        s: float | None = None,
        sigma_b2: float | None = None,
    ) -> float:
        """Equation (1): the sustainable request rate δ of one server.

        Equation (1) is the Kingman waiting-time bound solved for the
        arrival rate, so σ_a² must be the variance of the interarrival
        times *seen by one server*.  Since that stream runs at the very
        rate δ we are solving for, σ_a² = ca2/δ² (with *ca2* the squared
        coefficient of variation of interarrival times, which is
        preserved when a stream is split across servers; ca2 = 1 for
        Poisson arrivals).  Substituting turns equation (1) into a
        quadratic in δ,

            (s·K + σ_b²)·δ² − K·δ + ca2 = 0,   K = 2 (d − s),

        solved in closed form (larger root — the ca2 = 0 limit recovers
        the paper's explicit formula).  When the discriminant is
        negative no rate satisfies the SLA at that variability; the
        vertex (the best achievable δ) is returned instead.

        Args:
            ca2: Squared coefficient of variation of interarrival times
                (monitored as σ_a²·λ² on the global queue; 1.0 = Poisson).
            s: Override of the mean service time (online-monitored value).
            sigma_b2: Override of the service-time variance.
        """
        s = self.params.s if s is None else s
        sigma_b2 = self.params.sigma_b2 if sigma_b2 is None else sigma_b2
        d = self.params.d
        if s <= 0:
            s = self.params.s
        if d <= s:
            # Monitored service time exceeds the SLA: one server can never
            # meet d; report the bare service rate so (2) still scales.
            return 1.0 / s
        ca2 = max(0.0, ca2)
        sigma_b2 = max(0.0, sigma_b2)
        k = 2.0 * (d - s)
        a = s * k + sigma_b2
        discriminant = k * k - 4.0 * a * ca2
        if discriminant < 0:
            # No rate meets the SLA at this variability: return the best
            # achievable (the quadratic's vertex).
            return k / (2.0 * a)
        return (k + math.sqrt(discriminant)) / (2.0 * a)

    def instances_for(
        self,
        lam: float,
        ca2: float = 1.0,
        s: float | None = None,
        sigma_b2: float | None = None,
    ) -> int:
        """Equation (2): η = ⌈λ/δ⌉, with η ≥ 0 and η ≥ 1 whenever λ > 0."""
        if lam <= 0:
            return 0
        delta = self.per_server_rate(ca2=ca2, s=s, sigma_b2=sigma_b2)
        return max(1, math.ceil(lam / delta))

    def plan_shards(
        self,
        shard_rates: "list[float]",
        ca2: float = 1.0,
        s: float | None = None,
        sigma_b2: float | None = None,
    ) -> "list[int]":
        """Equation (2) applied per metadata shard.

        When the commit path is partitioned by workspace, each shard
        queue sees its own arrival stream λ_k with Σλ_k = λ.  Splitting a
        renewal stream by an independent hash preserves the squared CV of
        interarrival times, so the aggregate *ca2* can be reused for
        every shard (same argument that lets equation (1) reuse the
        global queue's ca2 per server).  Returns η_k = ⌈λ_k/δ⌉ per
        shard — note Ση_k ≥ η(Σλ_k): partitioning never needs fewer
        servers in total, it buys throughput, isolation and per-shard
        headroom instead.
        """
        return [
            self.instances_for(lam, ca2=ca2, s=s, sigma_b2=sigma_b2)
            for lam in shard_rates
        ]

    @staticmethod
    def ca2_from(sigma_a2: float, lam: float) -> float:
        """Squared CV of interarrival times from (variance, rate).

        Scale-invariant, so it can be measured on the aggregate queue and
        reused per server.  Falls back to Poisson (1.0) when unobserved.
        """
        if sigma_a2 <= 0 or lam <= 0:
            return 1.0
        return sigma_a2 * lam * lam
