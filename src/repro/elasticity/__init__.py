"""Elastic provisioning for the SyncService (§4.3).

Implements the Urgaonkar-style dynamic provisioning model the paper
adopts: a G/G/1 capacity model (equations 1-2), a predictive policy
working on day-scale history, and a reactive policy correcting it on
minute scales.
"""

from repro.elasticity.ggone import (
    GG1CapacityModel,
    PAPER_PARAMETERS,
    SlaParameters,
)
from repro.elasticity.predictive import PredictiveProvisioner, percentile
from repro.elasticity.reactive import CombinedProvisioner, ReactiveProvisioner

__all__ = [
    "PAPER_PARAMETERS",
    "CombinedProvisioner",
    "GG1CapacityModel",
    "PredictiveProvisioner",
    "ReactiveProvisioner",
    "SlaParameters",
    "percentile",
]
