"""Reactive provisioning (§4.3.2).

Reactive provisioning corrects the predictor on short time scales.  Every
invocation it compares the observed arrival rate λ_obs over the past few
minutes with the predicted rate λ_pred; when the ratio exceeds 1 + τ₁
(overload) or drops below 1 − τ₂, the pool is resized directly from
λ_obs via equation (2).  Otherwise the reactive policy has no opinion.

:class:`CombinedProvisioner` wires the two together exactly as the
paper's deployment does: the predictive proposal is the baseline, and a
triggered reactive correction overrides it.
"""

from __future__ import annotations

from typing import Optional

from repro.elasticity.ggone import GG1CapacityModel, PAPER_PARAMETERS, SlaParameters
from repro.elasticity.predictive import PredictiveProvisioner
from repro.objectmq.introspection import PoolObservation
from repro.objectmq.provisioner import Provisioner


class ReactiveProvisioner(Provisioner):
    """Short-time-scale correction of prediction mistakes."""

    name = "reactive"

    def __init__(
        self,
        predictive: Optional[PredictiveProvisioner] = None,
        params: SlaParameters = PAPER_PARAMETERS,
    ):
        """
        Args:
            predictive: The predictor whose λ_pred is the comparison
                baseline.  Without one, every observation with λ_obs > 0
                is treated as a deviation (pure-reactive mode, used by the
                provisioning ablation).
            params: SLA parameters providing τ₁ and τ₂.
        """
        self.predictive = predictive
        self.params = params
        self.model = GG1CapacityModel(params)
        self._monitored_s: Optional[float] = None
        self._monitored_sigma_b2: Optional[float] = None
        self.last_triggered = False

    def deviation_detected(self, lam_obs: float, lam_pred: float) -> Optional[str]:
        """Which threshold λ_obs/λ_pred breached: "tau1", "tau2", or None."""
        if lam_pred <= 0:
            return "tau1" if lam_obs > 0 else None
        ratio = lam_obs / lam_pred
        if ratio > 1.0 + self.params.tau_1:
            return "tau1"
        if ratio < 1.0 - self.params.tau_2:
            return "tau2"
        return None

    def propose(self, observation: PoolObservation) -> int:
        if observation.mean_service_time > 0:
            self._monitored_s = observation.mean_service_time
        if observation.service_time_variance > 0:
            self._monitored_sigma_b2 = observation.service_time_variance

        lam_obs = observation.arrival_rate
        lam_pred = (
            self.predictive.predicted_rate(observation.timestamp)
            if self.predictive is not None
            else 0.0
        )
        self.last_threshold = self.deviation_detected(lam_obs, lam_pred)
        self.last_triggered = self.last_threshold is not None
        if not self.last_triggered:
            # No correction needed: endorse the current pool size.
            self.last_reason = (
                f"lam_obs={lam_obs:.2f}/s within "
                f"[1-tau2, 1+tau1] of lam_pred={lam_pred:.2f}/s: "
                f"endorse current pool of {observation.instance_count}"
            )
            return observation.instance_count

        ca2 = self.model.ca2_from(observation.interarrival_variance, lam_obs)
        proposal = self.model.instances_for(
            lam_obs,
            ca2=ca2,
            s=self._monitored_s,
            sigma_b2=self._monitored_sigma_b2,
        )
        if self.last_threshold == "tau1":
            band = (
                f"> (1+tau1={1.0 + self.params.tau_1:.2f}) x "
                f"lam_pred={lam_pred:.2f}/s"
            )
        else:
            band = (
                f"< (1-tau2={1.0 - self.params.tau_2:.2f}) x "
                f"lam_pred={lam_pred:.2f}/s"
            )
        self.last_reason = (
            f"lam_obs={lam_obs:.2f}/s {band}: resize from lam_obs, "
            f"eta={proposal} by eq. (2)"
        )
        return proposal

    def reset(self) -> None:
        self._monitored_s = None
        self._monitored_sigma_b2 = None
        self.last_triggered = False
        self.last_threshold = None


class CombinedProvisioner(Provisioner):
    """Predictive baseline + reactive override, on their own cadences.

    The paper invokes the predictive policy every 15 minutes and the
    reactive policy every 5 minutes.  This combinator evaluates each on
    its own schedule (driven by observation timestamps) and keeps the
    latest proposal of each between invocations; reactive wins when
    triggered.
    """

    name = "predictive+reactive"

    def __init__(
        self,
        predictive: PredictiveProvisioner,
        reactive: ReactiveProvisioner,
        predictive_interval: float = 900.0,
        reactive_interval: float = 300.0,
        online_learning: bool = False,
    ):
        """
        Args:
            online_learning: When True, every predictive-cadence
                observation is also recorded into the predictor's history
                ("the variance of interarrival times can be monitored
                online and adjusted correspondingly", §4.3) — a live
                deployment trains itself instead of loading a trace.
        """
        self.predictive = predictive
        self.reactive = reactive
        self.predictive_interval = predictive_interval
        self.reactive_interval = reactive_interval
        self.online_learning = online_learning
        self._last_predictive_at: Optional[float] = None
        self._last_reactive_at: Optional[float] = None
        self._predictive_proposal = 0
        self._reactive_proposal: Optional[int] = None
        self._predictive_reason = ""
        self._reactive_reason = ""
        self._reactive_threshold: Optional[str] = None

    def propose(self, observation: PoolObservation) -> int:
        now = observation.timestamp
        if (
            self._last_predictive_at is None
            or now - self._last_predictive_at >= self.predictive_interval
        ):
            if self.online_learning and observation.arrival_rate > 0:
                self.predictive.observe_rate(now, observation.arrival_rate)
            self._predictive_proposal = self.predictive.propose(observation)
            self._predictive_reason = self.predictive.last_reason
            self._last_predictive_at = now
        if self._last_reactive_at is None:
            # The reactive policy runs on its own cadence and fires for
            # the first time one full interval after start-up — in the
            # paper's misprediction experiment the wrong predictive
            # allocation stands for the first reactive period before the
            # correction lands (§5.3.3).
            self._last_reactive_at = now
        elif now - self._last_reactive_at >= self.reactive_interval:
            proposal = self.reactive.propose(observation)
            if self.reactive.last_triggered:
                self._reactive_proposal = proposal
                self._reactive_reason = self.reactive.last_reason
                self._reactive_threshold = self.reactive.last_threshold
            else:
                self._reactive_proposal = None
                self._reactive_reason = ""
                self._reactive_threshold = None
            self._last_reactive_at = now
        if self._reactive_proposal is not None:
            self.last_reason = f"reactive override: {self._reactive_reason}"
            self.last_threshold = self._reactive_threshold
            return self._reactive_proposal
        self.last_reason = f"predictive baseline: {self._predictive_reason}"
        self.last_threshold = None
        return self._predictive_proposal

    def reset(self) -> None:
        self.predictive.reset()
        self.reactive.reset()
        self._last_predictive_at = None
        self._last_reactive_at = None
        self._predictive_proposal = 0
        self._reactive_proposal = None
        self._predictive_reason = ""
        self._reactive_reason = ""
        self._reactive_threshold = None
