"""Predictive provisioning (§4.3.1).

The predictor keeps, for every period of the day of duration *T* (the
paper uses 15 minutes), a history of the arrival rates observed at that
period over the past several days.  At the start of each period it
estimates the peak workload λ_pred(t) as a **high percentile** of that
period's historical distribution, then sizes the pool with equation (2).

The provisioner is deliberately clock-driven: the observation's timestamp
is mapped onto a period index, so feeding it a time series from a trace or
from the live supervisor behaves identically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.elasticity.ggone import GG1CapacityModel, PAPER_PARAMETERS, SlaParameters
from repro.objectmq.introspection import PoolObservation
from repro.objectmq.provisioner import Provisioner


def percentile(values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile on a small sample (no numpy dependency)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


class PredictiveProvisioner(Provisioner):
    """Allocates capacity ahead of the expected diurnal peak."""

    name = "predictive"

    def __init__(
        self,
        params: SlaParameters = PAPER_PARAMETERS,
        period: float = 900.0,
        day_length: float = 86400.0,
        history_percentile: float = 0.95,
        period_offset: int = 0,
    ):
        """
        Args:
            params: SLA parameters (Table 3).
            period: Period duration T in seconds (paper: 15 min).
            day_length: Length of a "day" in trace seconds.  Benches that
                time-compress the UB1 trace pass the compressed length.
            history_percentile: The "high percentile" of the arrival
                distribution used as λ_pred.
            period_offset: Shift (in periods) applied when reading the
                history — the misprediction experiment (Fig 8c-e) fools
                the predictor by setting this to the equivalent of 10
                hours, making it predict hour-30 load during hour-20.
        """
        self.params = params
        self.model = GG1CapacityModel(params)
        self.period = period
        self.day_length = day_length
        self.history_percentile = history_percentile
        self.period_offset = period_offset
        self.periods_per_day = max(1, int(round(day_length / period)))
        # period index -> list of observed mean arrival rates (req/s)
        self._history: Dict[int, List[float]] = {}
        # Online-monitored service statistics (updated from observations).
        self._monitored_s: Optional[float] = None
        self._monitored_sigma_b2: Optional[float] = None
        self.last_prediction: float = 0.0

    # -- history -----------------------------------------------------------------

    def period_index(self, timestamp: float) -> int:
        within_day = timestamp % self.day_length
        index = int(within_day // self.period)
        return (index + self.period_offset) % self.periods_per_day

    def load_history(self, rates: Sequence[float], start_time: float = 0.0) -> None:
        """Feed a series of per-period mean arrival rates (req/s).

        *rates* is consumed in order, one entry per period of length T,
        beginning at *start_time*.  Feeding a full week gives every period
        of the day seven samples, matching the paper's setup.
        """
        for i, rate in enumerate(rates):
            timestamp = start_time + i * self.period
            raw_index = int((timestamp % self.day_length) // self.period)
            self._history.setdefault(raw_index, []).append(float(rate))

    def observe_rate(self, timestamp: float, rate: float) -> None:
        """Record a live observation into the history (online learning)."""
        raw_index = int((timestamp % self.day_length) // self.period)
        self._history.setdefault(raw_index, []).append(float(rate))

    def predicted_rate(self, timestamp: float) -> float:
        """λ_pred(t): high percentile of the history for this period."""
        history = self._history.get(self.period_index(timestamp), [])
        return percentile(history, self.history_percentile)

    # -- Provisioner API ------------------------------------------------------------

    def propose(self, observation: PoolObservation) -> int:
        if observation.mean_service_time > 0:
            self._monitored_s = observation.mean_service_time
        if observation.service_time_variance > 0:
            self._monitored_sigma_b2 = observation.service_time_variance
        lam = self.predicted_rate(observation.timestamp)
        self.last_prediction = lam
        ca2 = self.model.ca2_from(
            observation.interarrival_variance, observation.arrival_rate
        )
        proposal = self.model.instances_for(
            lam,
            ca2=ca2,
            s=self._monitored_s,
            sigma_b2=self._monitored_sigma_b2,
        )
        self.last_reason = (
            f"lam_pred={lam:.2f}/s (p{self.history_percentile * 100:.0f} of "
            f"period {self.period_index(observation.timestamp)} history) -> "
            f"eta={proposal} by eq. (2)"
        )
        return proposal

    def reset(self) -> None:
        self._history.clear()
        self._monitored_s = None
        self._monitored_sigma_b2 = None
        self.last_prediction = 0.0
