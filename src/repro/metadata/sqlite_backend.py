"""SQLite metadata back-end — the ACID stand-in for PostgreSQL.

The paper chose a relational store "to benefit from the ACID semantics,
and this way simplify the maintenance of consistency" (§4).  This engine
gives the same guarantee: each ``store_new_object`` / ``store_new_version``
runs as an IMMEDIATE transaction whose version check re-executes inside
the transaction, so racing SyncService instances serialize and the loser
aborts cleanly (first-writer-wins, no rollback of committed data).

A single connection guarded by a lock keeps the engine usable from the
many consumer threads of the MOM layer; WAL mode keeps readers cheap.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Dict, List, Optional

from repro.errors import MetadataError, TransactionAborted, UnknownWorkspace
from repro.metadata.base import MetadataBackend, WorkspaceDump
from repro.sync.models import STATUS_DELETED, ItemMetadata, Workspace
from repro.telemetry.control import HEALTH

_SCHEMA = """
CREATE TABLE IF NOT EXISTS users (
    user_id TEXT PRIMARY KEY,
    name TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS workspaces (
    workspace_id TEXT PRIMARY KEY,
    owner TEXT NOT NULL REFERENCES users(user_id),
    name TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS devices (
    user_id TEXT NOT NULL REFERENCES users(user_id),
    device_id TEXT NOT NULL,
    name TEXT NOT NULL,
    PRIMARY KEY (user_id, device_id)
);
CREATE TABLE IF NOT EXISTS workspace_users (
    workspace_id TEXT NOT NULL REFERENCES workspaces(workspace_id),
    user_id TEXT NOT NULL REFERENCES users(user_id),
    PRIMARY KEY (workspace_id, user_id)
);
CREATE TABLE IF NOT EXISTS item_versions (
    item_id TEXT NOT NULL,
    version INTEGER NOT NULL,
    workspace_id TEXT NOT NULL REFERENCES workspaces(workspace_id),
    filename TEXT NOT NULL,
    status TEXT NOT NULL,
    is_folder INTEGER NOT NULL,
    size INTEGER NOT NULL,
    checksum TEXT NOT NULL,
    chunks TEXT NOT NULL,
    modified_at REAL NOT NULL,
    device_id TEXT NOT NULL,
    PRIMARY KEY (item_id, version)
);
CREATE INDEX IF NOT EXISTS idx_item_ws ON item_versions(workspace_id, item_id);
"""


class SqliteMetadataBackend(MetadataBackend):
    """Relational metadata store over :mod:`sqlite3`.

    Args:
        path: Database file (``:memory:`` for an ephemeral engine).
        probe_name: Health-registry component name; shard deployments pass
            distinct names so ``/health`` tells the engines apart.
    """

    def __init__(self, path: str = ":memory:", probe_name: Optional[str] = None):
        self.path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.isolation_level = None  # manual transaction control
        with self._lock:
            if path != ":memory:":
                self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
        HEALTH.register(
            probe_name or "metadata:sqlite", self, SqliteMetadataBackend._health_probe
        )

    def _health_probe(self) -> Dict[str, object]:
        """Ops-endpoint probe: the database answers ``SELECT 1``."""
        try:
            with self._lock:
                self._conn.execute("SELECT 1").fetchone()
        except sqlite3.Error as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, "path": self.path}

    # -- accounts & workspaces ---------------------------------------------------

    def create_user(self, user_id: str, name: str = "") -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO users(user_id, name) VALUES (?, ?)",
                (user_id, name or user_id),
            )

    def create_workspace(self, workspace: Workspace) -> None:
        with self._lock:
            owner = self._conn.execute(
                "SELECT 1 FROM users WHERE user_id = ?", (workspace.owner,)
            ).fetchone()
            if owner is None:
                raise MetadataError(f"unknown owner {workspace.owner!r}")
            self._conn.execute(
                "INSERT OR IGNORE INTO workspaces(workspace_id, owner, name) "
                "VALUES (?, ?, ?)",
                (workspace.workspace_id, workspace.owner, workspace.name),
            )
            self._conn.execute(
                "INSERT OR IGNORE INTO workspace_users(workspace_id, user_id) "
                "VALUES (?, ?)",
                (workspace.workspace_id, workspace.owner),
            )

    def grant_access(self, workspace_id: str, user_id: str) -> None:
        with self._lock:
            self._require_workspace(workspace_id)
            user = self._conn.execute(
                "SELECT 1 FROM users WHERE user_id = ?", (user_id,)
            ).fetchone()
            if user is None:
                raise MetadataError(f"unknown user {user_id!r}")
            self._conn.execute(
                "INSERT OR IGNORE INTO workspace_users(workspace_id, user_id) "
                "VALUES (?, ?)",
                (workspace_id, user_id),
            )

    def workspaces_for(self, user_id: str) -> List[Workspace]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT w.workspace_id, w.owner, w.name FROM workspaces w "
                "JOIN workspace_users wu ON wu.workspace_id = w.workspace_id "
                "WHERE wu.user_id = ? ORDER BY w.workspace_id",
                (user_id,),
            ).fetchall()
        return [Workspace(workspace_id=r[0], owner=r[1], name=r[2]) for r in rows]

    def workspace_exists(self, workspace_id: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM workspaces WHERE workspace_id = ?", (workspace_id,)
            ).fetchone()
        return row is not None

    # -- devices ---------------------------------------------------------------------

    def register_device(self, user_id: str, device_id: str, name: str = "") -> None:
        with self._lock:
            user = self._conn.execute(
                "SELECT 1 FROM users WHERE user_id = ?", (user_id,)
            ).fetchone()
            if user is None:
                raise MetadataError(f"unknown user {user_id!r}")
            self._conn.execute(
                "INSERT INTO devices(user_id, device_id, name) VALUES (?, ?, ?)"
                " ON CONFLICT(user_id, device_id) DO UPDATE SET name=excluded.name",
                (user_id, device_id, name or device_id),
            )

    def devices_for(self, user_id: str) -> List[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT device_id FROM devices WHERE user_id = ? ORDER BY device_id",
                (user_id,),
            ).fetchall()
        return [r[0] for r in rows]

    # -- item versions -------------------------------------------------------------

    def get_current(self, item_id: str) -> Optional[ItemMetadata]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM item_versions WHERE item_id = ? "
                "ORDER BY version DESC LIMIT 1",
                (item_id,),
            ).fetchone()
        return self._row_to_item(row) if row else None

    def store_new_object(self, metadata: ItemMetadata) -> None:
        with self._lock:
            self._require_workspace(metadata.workspace_id)
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                existing = self._conn.execute(
                    "SELECT MAX(version) FROM item_versions WHERE item_id = ?",
                    (metadata.item_id,),
                ).fetchone()[0]
                if existing is not None:
                    raise TransactionAborted(
                        f"item {metadata.item_id!r} already exists"
                    )
                if metadata.version != 1:
                    raise TransactionAborted(
                        f"first version of {metadata.item_id!r} must be 1, "
                        f"got {metadata.version}"
                    )
                self._insert(metadata)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def store_new_version(self, metadata: ItemMetadata) -> None:
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                current = self._conn.execute(
                    "SELECT MAX(version) FROM item_versions WHERE item_id = ?",
                    (metadata.item_id,),
                ).fetchone()[0]
                if current is None:
                    raise TransactionAborted(
                        f"item {metadata.item_id!r} does not exist"
                    )
                if metadata.version != current + 1:
                    raise TransactionAborted(
                        f"version {metadata.version} does not succeed {current} "
                        f"for {metadata.item_id!r}"
                    )
                self._insert(metadata)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def store_versions_bulk(self, proposals):
        """One BEGIN IMMEDIATE for the whole commitRequest bundle.

        Version checks re-run inside the transaction, so racing
        SyncService instances still serialize per item; a losing proposal
        is simply not inserted and its winner is read within the same
        transaction.  Later proposals in the bundle see earlier inserts.
        """
        outcomes = []
        with self.transaction_span(len(proposals)), self._lock:
            for proposal in proposals:
                self._require_workspace(proposal.workspace_id)
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                for proposal in proposals:
                    current_version = self._conn.execute(
                        "SELECT MAX(version) FROM item_versions WHERE item_id = ?",
                        (proposal.item_id,),
                    ).fetchone()[0]
                    expected = 1 if current_version is None else current_version + 1
                    if proposal.version != expected:
                        current = self._conn.execute(
                            "SELECT * FROM item_versions WHERE item_id = ? "
                            "ORDER BY version DESC LIMIT 1",
                            (proposal.item_id,),
                        ).fetchone()
                        outcomes.append(
                            (False, self._row_to_item(current) if current else None)
                        )
                        continue
                    self._insert(proposal)
                    outcomes.append((True, None))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return outcomes

    def get_workspace_state(self, workspace_id: str) -> List[ItemMetadata]:
        with self._lock:
            self._require_workspace(workspace_id)
            rows = self._conn.execute(
                "SELECT iv.* FROM item_versions iv JOIN ("
                "  SELECT item_id, MAX(version) AS v FROM item_versions "
                "  WHERE workspace_id = ? GROUP BY item_id"
                ") latest ON iv.item_id = latest.item_id AND iv.version = latest.v "
                "WHERE iv.status != ? ORDER BY iv.item_id",
                (workspace_id, STATUS_DELETED),
            ).fetchall()
        return [self._row_to_item(r) for r in rows]

    def item_history(self, item_id: str) -> List[ItemMetadata]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM item_versions WHERE item_id = ? ORDER BY version",
                (item_id,),
            ).fetchall()
        return [self._row_to_item(r) for r in rows]

    # -- migration -------------------------------------------------------------------

    def export_workspace(self, workspace_id: str) -> WorkspaceDump:
        with self._lock:
            self._require_workspace(workspace_id)
            ws_row = self._conn.execute(
                "SELECT workspace_id, owner, name FROM workspaces "
                "WHERE workspace_id = ?",
                (workspace_id,),
            ).fetchone()
            acl_rows = self._conn.execute(
                "SELECT wu.user_id, u.name FROM workspace_users wu "
                "JOIN users u ON u.user_id = wu.user_id "
                "WHERE wu.workspace_id = ? ORDER BY wu.user_id",
                (workspace_id,),
            ).fetchall()
            version_rows = self._conn.execute(
                "SELECT * FROM item_versions WHERE workspace_id = ? "
                "ORDER BY item_id, version",
                (workspace_id,),
            ).fetchall()
        versions: Dict[str, List[ItemMetadata]] = {}
        for row in version_rows:
            versions.setdefault(row[0], []).append(self._row_to_item(row))
        return WorkspaceDump(
            workspace=Workspace(
                workspace_id=ws_row[0], owner=ws_row[1], name=ws_row[2]
            ),
            users=[(r[0], r[1]) for r in acl_rows],
            acl=[r[0] for r in acl_rows],
            versions=versions,
        )

    def import_workspace(self, dump: WorkspaceDump) -> None:
        workspace_id = dump.workspace.workspace_id
        with self._lock:
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                existing = self._conn.execute(
                    "SELECT 1 FROM workspaces WHERE workspace_id = ?",
                    (workspace_id,),
                ).fetchone()
                if existing is not None:
                    raise MetadataError(
                        f"workspace {workspace_id!r} already exists here; "
                        "refusing to merge histories"
                    )
                for user_id, name in dump.users:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO users(user_id, name) VALUES (?, ?)",
                        (user_id, name or user_id),
                    )
                self._conn.execute(
                    "INSERT OR IGNORE INTO users(user_id, name) VALUES (?, ?)",
                    (dump.workspace.owner, dump.workspace.owner),
                )
                self._conn.execute(
                    "INSERT INTO workspaces(workspace_id, owner, name) "
                    "VALUES (?, ?, ?)",
                    (workspace_id, dump.workspace.owner, dump.workspace.name),
                )
                for user_id in set(dump.acl) | {dump.workspace.owner}:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO workspace_users(workspace_id, user_id)"
                        " VALUES (?, ?)",
                        (workspace_id, user_id),
                    )
                for chain in dump.versions.values():
                    for metadata in chain:
                        self._insert(metadata)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    def drop_workspace(self, workspace_id: str) -> None:
        with self._lock:
            self._require_workspace(workspace_id)
            try:
                self._conn.execute("BEGIN IMMEDIATE")
                self._conn.execute(
                    "DELETE FROM item_versions WHERE workspace_id = ?",
                    (workspace_id,),
                )
                self._conn.execute(
                    "DELETE FROM workspace_users WHERE workspace_id = ?",
                    (workspace_id,),
                )
                self._conn.execute(
                    "DELETE FROM workspaces WHERE workspace_id = ?",
                    (workspace_id,),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # -- introspection ---------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        with self._lock:
            users = self._conn.execute("SELECT COUNT(*) FROM users").fetchone()[0]
            workspaces = self._conn.execute(
                "SELECT COUNT(*) FROM workspaces"
            ).fetchone()[0]
            items = self._conn.execute(
                "SELECT COUNT(DISTINCT item_id) FROM item_versions"
            ).fetchone()[0]
            versions = self._conn.execute(
                "SELECT COUNT(*) FROM item_versions"
            ).fetchone()[0]
        return {
            "users": users,
            "workspaces": workspaces,
            "items": items,
            "versions": versions,
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- helpers --------------------------------------------------------------------

    def _insert(self, m: ItemMetadata) -> None:
        self._conn.execute(
            "INSERT INTO item_versions(item_id, version, workspace_id, filename,"
            " status, is_folder, size, checksum, chunks, modified_at, device_id)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                m.item_id,
                m.version,
                m.workspace_id,
                m.filename,
                m.status,
                int(m.is_folder),
                m.size,
                m.checksum,
                json.dumps(m.chunks),
                m.modified_at,
                m.device_id,
            ),
        )

    @staticmethod
    def _row_to_item(row) -> ItemMetadata:
        return ItemMetadata(
            item_id=row[0],
            version=row[1],
            workspace_id=row[2],
            filename=row[3],
            status=row[4],
            is_folder=bool(row[5]),
            size=row[6],
            checksum=row[7],
            chunks=json.loads(row[8]),
            modified_at=row[9],
            device_id=row[10],
        )

    def _require_workspace(self, workspace_id: str) -> None:
        if not self.workspace_exists(workspace_id):
            raise UnknownWorkspace(f"workspace {workspace_id!r} is not registered")
