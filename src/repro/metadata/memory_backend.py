"""In-memory metadata back-end.

A lock-serialized engine with the same atomicity contract as the SQLite
back-end, used by large simulations and most tests where durability is
irrelevant but speed matters.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set

from repro.errors import MetadataError, TransactionAborted, UnknownWorkspace
from repro.metadata.base import MetadataBackend, WorkspaceDump
from repro.sync.models import STATUS_DELETED, ItemMetadata, Workspace
from repro.telemetry.control import HEALTH


class MemoryMetadataBackend(MetadataBackend):
    """Dictionary-backed implementation guarded by one re-entrant lock.

    Args:
        probe_name: Health-registry component name; shard deployments pass
            distinct names so ``/health`` tells the engines apart.
    """

    def __init__(self, probe_name: Optional[str] = None) -> None:
        self._lock = threading.RLock()
        self._users: Dict[str, str] = {}
        self._workspaces: Dict[str, Workspace] = {}
        self._acl: Dict[str, Set[str]] = {}  # workspace_id -> user ids
        self._versions: Dict[str, List[ItemMetadata]] = {}  # item -> versions
        self._workspace_items: Dict[str, Set[str]] = {}
        self._devices: Dict[str, Dict[str, str]] = {}  # user -> {device: name}
        HEALTH.register(
            probe_name or "metadata:memory", self, MemoryMetadataBackend._health_probe
        )

    def _health_probe(self) -> Dict[str, object]:
        """Ops-endpoint probe: the engine answers a trivial read."""
        with self._lock:
            return {
                "ok": True,
                "users": len(self._users),
                "workspaces": len(self._workspaces),
            }

    # -- accounts & workspaces ---------------------------------------------------

    def create_user(self, user_id: str, name: str = "") -> None:
        with self._lock:
            self._users.setdefault(user_id, name or user_id)

    def create_workspace(self, workspace: Workspace) -> None:
        with self._lock:
            if workspace.owner not in self._users:
                raise MetadataError(f"unknown owner {workspace.owner!r}")
            self._workspaces.setdefault(workspace.workspace_id, workspace)
            self._acl.setdefault(workspace.workspace_id, set()).add(workspace.owner)
            self._workspace_items.setdefault(workspace.workspace_id, set())

    def grant_access(self, workspace_id: str, user_id: str) -> None:
        with self._lock:
            self._require_workspace(workspace_id)
            if user_id not in self._users:
                raise MetadataError(f"unknown user {user_id!r}")
            self._acl[workspace_id].add(user_id)

    def workspaces_for(self, user_id: str) -> List[Workspace]:
        with self._lock:
            return sorted(
                (
                    self._workspaces[wid]
                    for wid, users in self._acl.items()
                    if user_id in users
                ),
                key=lambda w: w.workspace_id,
            )

    def workspace_exists(self, workspace_id: str) -> bool:
        with self._lock:
            return workspace_id in self._workspaces

    # -- devices ---------------------------------------------------------------------

    def register_device(self, user_id: str, device_id: str, name: str = "") -> None:
        with self._lock:
            if user_id not in self._users:
                raise MetadataError(f"unknown user {user_id!r}")
            self._devices.setdefault(user_id, {})[device_id] = name or device_id

    def devices_for(self, user_id: str) -> List[str]:
        with self._lock:
            return sorted(self._devices.get(user_id, {}))

    # -- item versions -------------------------------------------------------------

    def get_current(self, item_id: str) -> Optional[ItemMetadata]:
        with self._lock:
            versions = self._versions.get(item_id)
            return versions[-1] if versions else None

    def store_new_object(self, metadata: ItemMetadata) -> None:
        with self._lock:
            self._require_workspace(metadata.workspace_id)
            if metadata.item_id in self._versions:
                raise TransactionAborted(
                    f"item {metadata.item_id!r} already exists"
                )
            if metadata.version != 1:
                raise TransactionAborted(
                    f"first version of {metadata.item_id!r} must be 1, "
                    f"got {metadata.version}"
                )
            self._versions[metadata.item_id] = [metadata]
            self._workspace_items[metadata.workspace_id].add(metadata.item_id)

    def store_new_version(self, metadata: ItemMetadata) -> None:
        with self._lock:
            versions = self._versions.get(metadata.item_id)
            if not versions:
                raise TransactionAborted(f"item {metadata.item_id!r} does not exist")
            current = versions[-1]
            if metadata.version != current.version + 1:
                raise TransactionAborted(
                    f"version {metadata.version} does not succeed "
                    f"{current.version} for {metadata.item_id!r}"
                )
            versions.append(metadata)

    def store_versions_bulk(self, proposals):
        """Whole bundle under one lock acquisition; per-item conflicts."""
        outcomes = []
        with self.transaction_span(len(proposals)), self._lock:
            for proposal in proposals:
                self._require_workspace(proposal.workspace_id)
                versions = self._versions.get(proposal.item_id)
                current = versions[-1] if versions else None
                expected = 1 if current is None else current.version + 1
                if proposal.version != expected:
                    outcomes.append((False, current))
                    continue
                if versions is None:
                    self._versions[proposal.item_id] = [proposal]
                    self._workspace_items[proposal.workspace_id].add(
                        proposal.item_id
                    )
                else:
                    versions.append(proposal)
                outcomes.append((True, None))
        return outcomes

    def get_workspace_state(self, workspace_id: str) -> List[ItemMetadata]:
        with self._lock:
            self._require_workspace(workspace_id)
            state = []
            for item_id in self._workspace_items.get(workspace_id, ()):
                current = self._versions[item_id][-1]
                if current.status != STATUS_DELETED:
                    state.append(current)
            return sorted(state, key=lambda m: m.item_id)

    def item_history(self, item_id: str) -> List[ItemMetadata]:
        with self._lock:
            return list(self._versions.get(item_id, ()))

    # -- migration -------------------------------------------------------------------

    def export_workspace(self, workspace_id: str) -> WorkspaceDump:
        with self._lock:
            self._require_workspace(workspace_id)
            acl = sorted(self._acl.get(workspace_id, ()))
            return WorkspaceDump(
                workspace=self._workspaces[workspace_id],
                users=[(u, self._users.get(u, u)) for u in acl],
                acl=acl,
                versions={
                    item_id: list(self._versions[item_id])
                    for item_id in sorted(self._workspace_items.get(workspace_id, ()))
                },
            )

    def import_workspace(self, dump: WorkspaceDump) -> None:
        workspace_id = dump.workspace.workspace_id
        with self._lock:
            if workspace_id in self._workspaces:
                raise MetadataError(
                    f"workspace {workspace_id!r} already exists here; "
                    "refusing to merge histories"
                )
            for user_id, name in dump.users:
                self._users.setdefault(user_id, name or user_id)
            self._workspaces[workspace_id] = dump.workspace
            self._acl[workspace_id] = set(dump.acl) | {dump.workspace.owner}
            self._workspace_items[workspace_id] = set(dump.versions)
            for item_id, chain in dump.versions.items():
                self._versions[item_id] = list(chain)

    def drop_workspace(self, workspace_id: str) -> None:
        with self._lock:
            self._require_workspace(workspace_id)
            for item_id in self._workspace_items.pop(workspace_id, set()):
                self._versions.pop(item_id, None)
            self._acl.pop(workspace_id, None)
            self._workspaces.pop(workspace_id, None)

    # -- introspection ---------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        with self._lock:
            return {
                "users": len(self._users),
                "workspaces": len(self._workspaces),
                "items": len(self._versions),
                "versions": sum(len(v) for v in self._versions.values()),
            }

    def _require_workspace(self, workspace_id: str) -> None:
        if workspace_id not in self._workspaces:
            raise UnknownWorkspace(f"workspace {workspace_id!r} is not registered")
