"""Metadata back-end interface (the PostgreSQL role in the paper).

The SyncService interacts with the back-end through this Data Access
Object; the paper stresses that the implementation is "modular and may be
replaced easily".  Two implementations ship: an in-memory engine
(:mod:`repro.metadata.memory_backend`) and a SQLite engine with real ACID
transactions (:mod:`repro.metadata.sqlite_backend`).

Consistency contract used by Algorithm 1:

* :meth:`store_new_object` atomically inserts version 1 of an item and
  raises :class:`~repro.errors.TransactionAborted` if any version already
  exists;
* :meth:`store_new_version` atomically verifies that the proposal's
  version is exactly ``current + 1`` and inserts it, raising
  :class:`TransactionAborted` otherwise.

Because the checks re-run inside the transaction, two SyncService
instances racing on the same item serialize correctly: the first commit
wins, the second aborts and is reported as a conflict — the paper's
first-writer-wins policy, with no rollback ever needed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TransactionAborted
from repro.sync.models import ItemMetadata, Workspace
from repro.telemetry.trace import TRACER

#: Per-proposal outcome of :meth:`MetadataBackend.store_versions_bulk`:
#: ``(committed, current)`` — ``current`` is the winning server-side
#: metadata when the proposal lost its first-writer-wins race (None when
#: the proposal committed, or when the item does not exist at all).
BulkOutcome = Tuple[bool, Optional[ItemMetadata]]


@dataclass
class WorkspaceDump:
    """A self-contained export of one workspace, for shard migration.

    ``users`` carries ``(user_id, name)`` for every user on the ACL so an
    import can recreate missing accounts; ``versions`` maps each item to
    its complete version chain, oldest first, including deleted items —
    a migrated workspace must replay byte-identical histories.
    """

    workspace: Workspace
    users: List[Tuple[str, str]] = field(default_factory=list)
    acl: List[str] = field(default_factory=list)
    versions: Dict[str, List[ItemMetadata]] = field(default_factory=dict)

    @property
    def item_count(self) -> int:
        return len(self.versions)

    @property
    def version_count(self) -> int:
        return sum(len(chain) for chain in self.versions.values())


class MetadataBackend(ABC):
    """Abstract DAO over users, workspaces and versioned item metadata."""

    def transaction_span(self, proposals: int):
        """Telemetry span for one bulk commit transaction.

        Every engine wraps its :meth:`store_versions_bulk` body in this so
        the trace tree attributes back-end time to the ``metadata`` layer
        regardless of which implementation is plugged in.
        """
        return TRACER.span(
            "metadata.txn",
            layer="metadata",
            attrs={"backend": type(self).__name__, "proposals": proposals},
        )

    # -- accounts & workspaces ---------------------------------------------------

    @abstractmethod
    def create_user(self, user_id: str, name: str = "") -> None:
        """Register a user (idempotent)."""

    @abstractmethod
    def create_workspace(self, workspace: Workspace) -> None:
        """Register a workspace owned by an existing user (idempotent)."""

    @abstractmethod
    def grant_access(self, workspace_id: str, user_id: str) -> None:
        """Give *user_id* access to *workspace_id* (sharing)."""

    @abstractmethod
    def workspaces_for(self, user_id: str) -> List[Workspace]:
        """Workspaces the user owns or was granted access to."""

    @abstractmethod
    def workspace_exists(self, workspace_id: str) -> bool:
        """True when the workspace is registered."""

    # -- devices ---------------------------------------------------------------------

    @abstractmethod
    def register_device(self, user_id: str, device_id: str, name: str = "") -> None:
        """Record a device of *user_id* (idempotent; updates the name)."""

    @abstractmethod
    def devices_for(self, user_id: str) -> List[str]:
        """Device ids registered by the user, sorted."""

    # -- item versions -------------------------------------------------------------

    @abstractmethod
    def get_current(self, item_id: str) -> Optional[ItemMetadata]:
        """Latest committed version of *item_id*, or None."""

    @abstractmethod
    def store_new_object(self, metadata: ItemMetadata) -> None:
        """Atomically insert the first version of a new item."""

    @abstractmethod
    def store_new_version(self, metadata: ItemMetadata) -> None:
        """Atomically append the next version of an existing item."""

    def store_versions_bulk(
        self, proposals: List[ItemMetadata]
    ) -> List[BulkOutcome]:
        """Commit every proposal of one commitRequest, one outcome each.

        The whole bundle runs as a *single* back-end transaction (one
        fsync / one lock acquisition instead of N), but conflict semantics
        stay per item: a proposal that loses its first-writer-wins version
        check is skipped — reported as ``(False, current)`` — without
        aborting its siblings, exactly as if it had been committed alone.
        Proposals later in the bundle observe the effects of earlier ones,
        so a client may bundle v2 and v3 of the same item.

        This default implementation loops over the single-item primitives
        so any third-party backend works unchanged; the shipped engines
        override it with genuinely single-transaction versions.
        """
        outcomes: List[BulkOutcome] = []
        with self.transaction_span(len(proposals)):
            for proposal in proposals:
                current = self.get_current(proposal.item_id)
                try:
                    if current is None:
                        self.store_new_object(proposal)
                    elif proposal.version == current.version + 1:
                        self.store_new_version(proposal)
                    else:
                        outcomes.append((False, current))
                        continue
                except TransactionAborted:
                    # Lost a race between the read and the write: report the
                    # winner from a fresh read.
                    outcomes.append((False, self.get_current(proposal.item_id)))
                    continue
                outcomes.append((True, None))
        return outcomes

    @abstractmethod
    def get_workspace_state(self, workspace_id: str) -> List[ItemMetadata]:
        """Latest version of every non-deleted item in the workspace."""

    @abstractmethod
    def item_history(self, item_id: str) -> List[ItemMetadata]:
        """All committed versions of *item_id*, oldest first."""

    # -- migration (optional capability) -------------------------------------------

    def export_workspace(self, workspace_id: str) -> "WorkspaceDump":
        """Full dump of one workspace: record, ACL, every item version.

        The migration primitive of the sharded metadata plane
        (:meth:`repro.metadata.sharded.ShardedMetadataBackend.migrate_workspace`)
        moves a workspace between shards via export → import → drop.
        Engines that do not support migration may leave these three
        methods unimplemented; everything else works without them.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support workspace export"
        )

    def import_workspace(self, dump: "WorkspaceDump") -> None:
        """Load an :meth:`export_workspace` dump into this engine.

        Users referenced by the ACL are created idempotently; importing a
        workspace that already exists here raises
        :class:`~repro.errors.MetadataError` (a migration must never
        silently merge histories).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support workspace import"
        )

    def drop_workspace(self, workspace_id: str) -> None:
        """Remove a workspace, its ACL and all its item versions.

        Users and devices are global (not workspace-scoped) and stay.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support workspace drop"
        )

    # -- introspection ---------------------------------------------------------------

    @abstractmethod
    def counts(self) -> Dict[str, int]:
        """Row counts per logical table, for tests and monitoring."""

    def close(self) -> None:
        """Release resources; default no-op."""
