"""Metadata back-ends (the PostgreSQL role of the paper's architecture)."""

from repro.metadata.base import MetadataBackend, WorkspaceDump
from repro.metadata.memory_backend import MemoryMetadataBackend
from repro.metadata.sharded import ShardedMetadataBackend
from repro.metadata.sqlite_backend import SqliteMetadataBackend

__all__ = [
    "MemoryMetadataBackend",
    "MetadataBackend",
    "ShardedMetadataBackend",
    "SqliteMetadataBackend",
    "WorkspaceDump",
]
