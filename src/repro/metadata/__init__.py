"""Metadata back-ends (the PostgreSQL role of the paper's architecture)."""

from repro.metadata.base import MetadataBackend
from repro.metadata.memory_backend import MemoryMetadataBackend
from repro.metadata.sqlite_backend import SqliteMetadataBackend

__all__ = [
    "MemoryMetadataBackend",
    "MetadataBackend",
    "SqliteMetadataBackend",
]
