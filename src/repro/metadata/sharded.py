"""Workspace-partitioned metadata plane: N engines behind one DAO.

The paper deploys a *single* PostgreSQL server — adequate for its
testbed, but the obvious scalability ceiling of the architecture once
the SyncService pool itself is elastic.  This module removes that
ceiling without giving up the consistency contract: a
:class:`ShardedMetadataBackend` composes N fully independent
:class:`~repro.metadata.base.MetadataBackend` engines (memory or SQLite,
one database file each) and routes every operation to exactly one of
them by consistent-hashing the ``workspace_id``
(:class:`~repro.routing.shard.ShardRouter`).

Why this preserves Algorithm 1's guarantees with *zero* cross-shard
transactions:

* a workspace lives entirely on one shard, so every version chain is
  owned by a single ACID engine — first-writer-wins races between
  SyncService instances still serialize inside that engine exactly as
  before;
* users and devices are *broadcast* to every shard (tiny, write-rarely
  tables), so ``create_workspace``'s owner check and ``grant_access``'s
  user check resolve locally on whichever shard owns the workspace;
* a commitRequest bundle only ever carries items of one workspace
  (Algorithm 1 operates per workspace), so
  :meth:`store_versions_bulk` is still one transaction on one engine in
  the common case — and when handed a mixed bundle it degrades to one
  transaction per involved shard with per-item outcomes reassembled in
  input order.

Item routing rides on the repo-wide item-id convention
``"{workspace_id}:{filename}"``: reads that carry a prefixed id go
straight to the owning shard; opaque ids fall back to scanning all
shards (correct, just slower — the miss path of monitoring tools).

Rebalancing: :meth:`migrate_workspace` moves one workspace between
shards under a write fence — export, import, verify per-item history
lengths, flip a routing override, drop the source copy.  The fence
blocks new writes for that workspace only; all other workspaces commit
concurrently throughout.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

from repro.errors import MetadataError
from repro.metadata.base import BulkOutcome, MetadataBackend
from repro.metadata.memory_backend import MemoryMetadataBackend
from repro.metadata.sqlite_backend import SqliteMetadataBackend
from repro.routing.shard import ShardRouter
from repro.sync.models import ItemMetadata, Workspace
from repro.telemetry.control import HEALTH
from repro.telemetry.registry import REGISTRY


def workspace_of_item(item_id: str) -> Optional[str]:
    """Routing key embedded in an item id, or None for opaque ids.

    Item ids follow the ``"{workspace_id}:{filename}"`` convention
    throughout the repo; ids without a separator cannot be routed and
    force a scan of all shards.
    """
    if ":" in item_id:
        return item_id.split(":", 1)[0]
    return None


class ShardedMetadataBackend(MetadataBackend):
    """N independent metadata engines routed by workspace id.

    Args:
        engines: One :class:`MetadataBackend` per shard, index = shard id.
        router: Optional pre-built router; must agree on the shard count.
        probe_name: Health-registry component name for the composite.
    """

    def __init__(
        self,
        engines: Sequence[MetadataBackend],
        router: Optional[ShardRouter] = None,
        probe_name: str = "metadata:sharded",
    ) -> None:
        if not engines:
            raise ValueError("need at least one engine")
        if router is not None and router.num_shards != len(engines):
            raise ValueError(
                f"router covers {router.num_shards} shards "
                f"but {len(engines)} engines were given"
            )
        self.engines: List[MetadataBackend] = list(engines)
        self.router = router or ShardRouter(len(engines))
        # Post-migration routing exceptions: workspace_id -> shard index.
        self._overrides: Dict[str, int] = {}
        # workspace_id -> engine memo for the commit hot path; entries are
        # invalidated when a migration moves the workspace.  Plain dict
        # ops are atomic under CPython, so no extra lock is needed.
        self._engine_cache: Dict[str, MetadataBackend] = {}
        # Write fence for in-flight migrations, guarded by one condition.
        self._fence = threading.Condition()
        self._fenced: set = set()
        self._migrations = REGISTRY.counter(
            "metadata_workspace_migrations_total"
        )
        for shard, engine in enumerate(self.engines):
            REGISTRY.register_source(
                "metadata_shard",
                engine,
                lambda e: {
                    k: float(v) for k, v in e.counts().items()
                },
                shard=str(shard),
                backend=type(engine).__name__,
            )
        HEALTH.register(probe_name, self, ShardedMetadataBackend._health_probe)

    # -- constructors ----------------------------------------------------------------

    @classmethod
    def memory(cls, shards: int) -> "ShardedMetadataBackend":
        """*shards* in-memory engines with distinct health probes."""
        return cls(
            [
                MemoryMetadataBackend(probe_name=f"metadata:memory:shard{k}")
                for k in range(shards)
            ]
        )

    @classmethod
    def sqlite(cls, path_prefix: str, shards: int) -> "ShardedMetadataBackend":
        """*shards* SQLite engines, one database file each.

        ``path_prefix=":memory:"`` yields independent in-memory
        databases; otherwise shard *k* lives at
        ``{path_prefix}.shard{k}.db``.
        """
        engines = []
        for k in range(shards):
            path = (
                ":memory:"
                if path_prefix == ":memory:"
                else f"{path_prefix}.shard{k}.db"
            )
            engines.append(
                SqliteMetadataBackend(
                    path, probe_name=f"metadata:sqlite:shard{k}"
                )
            )
        return cls(engines)

    # -- routing ---------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.engines)

    def shard_for_workspace(self, workspace_id: str) -> int:
        """Owning shard: migration overrides win over the hash ring."""
        override = self._overrides.get(workspace_id)
        if override is not None:
            return override
        return self.router.shard_for(workspace_id)

    def engine_for_workspace(self, workspace_id: str) -> MetadataBackend:
        engine = self._engine_cache.get(workspace_id)
        if engine is None:
            engine = self.engines[self.shard_for_workspace(workspace_id)]
            self._engine_cache[workspace_id] = engine
        return engine

    def _engine_for_item(self, item_id: str) -> Optional[MetadataBackend]:
        workspace_id = workspace_of_item(item_id)
        if workspace_id is None:
            return None
        return self.engine_for_workspace(workspace_id)

    def _await_unfenced(self, workspace_id: str) -> None:
        """Block while *workspace_id* is mid-migration (write fence).

        Fast path first: reading the fence set's emptiness is atomic
        under CPython, and commits vastly outnumber migrations.  The
        lock-free read races a fence being raised exactly as the locked
        check does (a commit that passed the check before the fence
        landed proceeds either way); the lock only matters for *waiting*,
        so it is taken just when some workspace is actually fenced.
        """
        if not self._fenced:
            return
        with self._fence:
            while workspace_id in self._fenced:
                self._fence.wait()

    def _health_probe(self) -> Dict[str, object]:
        return {
            "ok": True,
            "shards": self.num_shards,
            "overrides": len(self._overrides),
            "fenced": len(self._fenced),
        }

    # -- accounts & workspaces (users/devices broadcast, workspaces routed) ----------

    def create_user(self, user_id: str, name: str = "") -> None:
        for engine in self.engines:
            engine.create_user(user_id, name)

    def create_workspace(self, workspace: Workspace) -> None:
        self._await_unfenced(workspace.workspace_id)
        self.engine_for_workspace(workspace.workspace_id).create_workspace(
            workspace
        )

    def grant_access(self, workspace_id: str, user_id: str) -> None:
        self._await_unfenced(workspace_id)
        self.engine_for_workspace(workspace_id).grant_access(
            workspace_id, user_id
        )

    def workspaces_for(self, user_id: str) -> List[Workspace]:
        merged: Dict[str, Workspace] = {}
        for engine in self.engines:
            for workspace in engine.workspaces_for(user_id):
                merged.setdefault(workspace.workspace_id, workspace)
        return sorted(merged.values(), key=lambda w: w.workspace_id)

    def workspace_exists(self, workspace_id: str) -> bool:
        return self.engine_for_workspace(workspace_id).workspace_exists(
            workspace_id
        )

    # -- devices (broadcast like users) ----------------------------------------------

    def register_device(self, user_id: str, device_id: str, name: str = "") -> None:
        for engine in self.engines:
            engine.register_device(user_id, device_id, name)

    def devices_for(self, user_id: str) -> List[str]:
        return self.engines[0].devices_for(user_id)

    # -- item versions ---------------------------------------------------------------

    def get_current(self, item_id: str) -> Optional[ItemMetadata]:
        engine = self._engine_for_item(item_id)
        if engine is not None:
            return engine.get_current(item_id)
        for candidate in self.engines:
            current = candidate.get_current(item_id)
            if current is not None:
                return current
        return None

    def store_new_object(self, metadata: ItemMetadata) -> None:
        self._await_unfenced(metadata.workspace_id)
        self.engine_for_workspace(metadata.workspace_id).store_new_object(
            metadata
        )

    def store_new_version(self, metadata: ItemMetadata) -> None:
        self._await_unfenced(metadata.workspace_id)
        self.engine_for_workspace(metadata.workspace_id).store_new_version(
            metadata
        )

    def store_versions_bulk(
        self, proposals: List[ItemMetadata]
    ) -> List[BulkOutcome]:
        """Route a bundle; outcomes come back in input order.

        A commitRequest bundle normally targets one workspace and hence
        one shard — one transaction, exactly as unsharded.  Mixed
        bundles are split into one transaction per involved shard;
        per-item first-writer-wins semantics are unchanged because each
        item's whole history lives on its own shard.
        """
        if not proposals:
            return []
        groups: Dict[int, List[int]] = {}
        for index, proposal in enumerate(proposals):
            self._await_unfenced(proposal.workspace_id)
            shard = self.shard_for_workspace(proposal.workspace_id)
            groups.setdefault(shard, []).append(index)
        if len(groups) == 1:
            shard = next(iter(groups))
            return self.engines[shard].store_versions_bulk(proposals)
        outcomes: List[Optional[BulkOutcome]] = [None] * len(proposals)
        for shard, indices in groups.items():
            shard_outcomes = self.engines[shard].store_versions_bulk(
                [proposals[i] for i in indices]
            )
            for i, outcome in zip(indices, shard_outcomes):
                outcomes[i] = outcome
        return outcomes  # type: ignore[return-value]

    def get_workspace_state(self, workspace_id: str) -> List[ItemMetadata]:
        return self.engine_for_workspace(workspace_id).get_workspace_state(
            workspace_id
        )

    def item_history(self, item_id: str) -> List[ItemMetadata]:
        engine = self._engine_for_item(item_id)
        if engine is not None:
            return engine.item_history(item_id)
        for candidate in self.engines:
            history = candidate.item_history(item_id)
            if history:
                return history
        return []

    # -- rebalancing -----------------------------------------------------------------

    def migrate_workspace(self, workspace_id: str, target_shard: int) -> Dict[str, int]:
        """Move one workspace to *target_shard* under a write fence.

        Sequence: fence writes for this workspace → export from the
        source engine → import into the target → verify every item's
        history length survived the copy → flip the routing override →
        drop the source copy → lift the fence.  On verification failure
        the half-imported copy is dropped from the target and routing is
        untouched, so the source remains authoritative.

        Returns a summary dict (source/target shard, items, versions).
        """
        if not 0 <= target_shard < self.num_shards:
            raise ValueError(f"no shard {target_shard}")
        with self._fence:
            if workspace_id in self._fenced:
                raise MetadataError(
                    f"workspace {workspace_id!r} is already migrating"
                )
            source_shard = self.shard_for_workspace(workspace_id)
            if source_shard == target_shard:
                return {
                    "source": source_shard,
                    "target": target_shard,
                    "items": 0,
                    "versions": 0,
                }
            self._fenced.add(workspace_id)
        try:
            source = self.engines[source_shard]
            target = self.engines[target_shard]
            dump = source.export_workspace(workspace_id)
            target.import_workspace(dump)
            for item_id, chain in dump.versions.items():
                moved = target.item_history(item_id)
                if len(moved) != len(chain):
                    target.drop_workspace(workspace_id)
                    raise MetadataError(
                        f"migration verification failed for {item_id!r}: "
                        f"{len(moved)} != {len(chain)} versions"
                    )
            self._overrides[workspace_id] = target_shard
            self._engine_cache.pop(workspace_id, None)
            source.drop_workspace(workspace_id)
            self._migrations.inc()
            return {
                "source": source_shard,
                "target": target_shard,
                "items": dump.item_count,
                "versions": dump.version_count,
            }
        finally:
            with self._fence:
                self._fenced.discard(workspace_id)
                self._fence.notify_all()

    # -- introspection ---------------------------------------------------------------

    def shard_counts(self) -> List[Dict[str, int]]:
        """Per-shard row counts, index = shard id."""
        return [engine.counts() for engine in self.engines]

    def counts(self) -> Dict[str, int]:
        """Aggregate counts: users are replicated (max), the rest sum."""
        per_shard = self.shard_counts()
        return {
            "users": max(c["users"] for c in per_shard),
            "workspaces": sum(c["workspaces"] for c in per_shard),
            "items": sum(c["items"] for c in per_shard),
            "versions": sum(c["versions"] for c in per_shard),
        }

    def close(self) -> None:
        for engine in self.engines:
            engine.close()
