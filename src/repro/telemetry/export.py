"""Span exporters: JSONL dumps, Chrome ``trace_event`` files, flame tables.

Three consumers of the tracer's span buffer:

* :func:`spans_to_jsonl` / :func:`write_jsonl` — one JSON object per line,
  the archival format replayed by ``stacksync-repro telemetry --load``;
* :func:`spans_to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON consumed by ``about:tracing`` and Perfetto: every
  span becomes a complete (``"ph": "X"``) event, rows are grouped per
  layer so the sync path reads top-to-bottom as
  client → proxy → queue → skeleton → sync → metadata → storage;
* :func:`top_spans_by_layer` / :func:`render_flame_table` — the "where did
  the time go" report printed by the CLI.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.telemetry.trace import Span

#: Canonical row order for the sync path in trace viewers; unknown layers
#: sort after these, alphabetically.
LAYER_ORDER = [
    "bench",
    "client",
    "proxy",
    "queue",
    "skeleton",
    "sync",
    "metadata",
    "storage",
]


def _layer_rank(layer: str) -> tuple:
    try:
        return (LAYER_ORDER.index(layer), "")
    except ValueError:
        return (len(LAYER_ORDER), layer)


# -- JSONL ---------------------------------------------------------------------


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    return "".join(json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans)


def write_jsonl(spans: Iterable[Span], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(spans_to_jsonl(spans))


def load_jsonl(path: str) -> List[Span]:
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            data.pop("duration", None)
            spans.append(Span(**data))
    return spans


# -- Chrome trace_event --------------------------------------------------------


def spans_to_chrome_trace(spans: Sequence[Span]) -> Dict:
    """Convert spans to the Chrome ``trace_event`` JSON object format.

    Timestamps are microseconds; each layer gets its own ``tid`` with a
    ``thread_name`` metadata record so Perfetto renders one labeled row
    per layer.

    Spans without an end stamp (a crash or an export taken mid-request
    leaves ``end == 0.0``) and spans whose clock ran backwards
    (``end < start``) carry no meaningful duration: both become
    zero-length instant events (``"ph": "i"``) at their start time, so
    the viewer shows *that* the operation began without inventing a
    width for it.
    """
    layers = sorted({span.layer for span in spans}, key=_layer_rank)
    tid_of = {layer: index + 1 for index, layer in enumerate(layers)}
    events: List[Dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": layer},
        }
        for layer, tid in tid_of.items()
    ]
    for span in spans:
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "thread": span.thread,
        }
        args.update({k: str(v) for k, v in span.attrs.items()})
        event = {
            "name": span.name,
            "cat": span.layer,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": 1,
            "tid": tid_of[span.layer],
            "args": args,
        }
        if span.end <= 0.0:
            event["ph"] = "i"
            event["s"] = "t"
            event.pop("dur")
            args["unfinished"] = "true"
        elif span.end < span.start:
            event["ph"] = "i"
            event["s"] = "t"
            event.pop("dur")
            args["negative_duration"] = "true"
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spans_to_chrome_trace(spans), fh)


# -- flame tables --------------------------------------------------------------


def top_spans_by_layer(
    spans: Iterable[Span], top_n: int = 5
) -> Dict[str, List[Span]]:
    """The *top_n* slowest spans of every layer, slowest first."""
    by_layer: Dict[str, List[Span]] = {}
    for span in spans:
        by_layer.setdefault(span.layer, []).append(span)
    return {
        layer: sorted(group, key=lambda s: s.duration, reverse=True)[:top_n]
        for layer, group in sorted(by_layer.items(), key=lambda kv: _layer_rank(kv[0]))
    }


def render_flame_table(spans: Sequence[Span], top_n: int = 5) -> str:
    """Human-readable per-layer summary with the slowest spans inline."""
    lines: List[str] = []
    for layer, slowest in top_spans_by_layer(spans, top_n).items():
        total = sum(s.duration for s in slowest)
        count = sum(1 for s in spans if s.layer == layer)
        lines.append(f"[{layer}] {count} span(s)")
        for span in slowest:
            lines.append(
                f"  {span.duration * 1000:9.3f} ms  {span.name}"
                f"  (trace {span.trace_id[:8]})"
            )
        if not slowest:
            lines.append("  (no spans)")
        lines.append(f"  top-{len(slowest)} total: {total * 1000:.3f} ms")
    return "\n".join(lines)
