"""Declarative SLO/alert rules evaluated against MetricsRegistry scrapes.

The elasticity loop's operational contract (§4.3, Table 3) is a set of
sustained conditions — "queue depth stayed above the backlog budget",
"p99 commitRequest latency blew the 450 ms SLA", "redeliveries are
climbing" — and operators judge a broker-based service exactly by such
signals.  This module turns those into data:

* :class:`SloRule` — one condition over one metric series, with a
  *sustain* requirement (``for N`` consecutive evaluation periods) so a
  single control-period blip does not page anyone.  Rules parse from a
  one-line declarative syntax (see :meth:`SloRule.parse`)::

      queue-backlog: supervisor_queue_depth > 50 for 3
      commit-p99:    omq_proxy_call_seconds_p99 > 0.45 for 2 severity=page

* :class:`SloEngine` — evaluates every rule against a
  :class:`~repro.telemetry.registry.MetricsRegistry` snapshot once per
  control period, tracks breach streaks, and writes ``alert-fired`` /
  ``alert-resolved`` events into the same
  :class:`~repro.telemetry.control.DecisionJournal` the Supervisor
  writes its scaling decisions to — so the journal timeline interleaves
  *what the service did* with *when it was out of contract*.

Series matching: a rule's ``series`` matches a snapshot key exactly, or
any labeled variant of it (``name{label="v"}``).  When several labeled
series match, the rule evaluates the worst case (max for ``>`` rules,
min for ``<`` rules), which is what an alert on "any queue too deep"
means.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.control import (
    KIND_ALERT_FIRED,
    KIND_ALERT_RESOLVED,
    DecisionJournal,
)
from repro.telemetry.registry import MetricsRegistry, get_registry

_RULE_RE = re.compile(
    r"""^\s*(?P<name>[\w.-]+)\s*:\s*        # rule name
        (?P<series>[\w.{}="',-]+)\s*        # metric series
        (?P<op>[<>])\s*
        (?P<threshold>-?\d+(?:\.\d+)?)\s*
        (?:for\s+(?P<periods>\d+)\s*)?      # sustain periods (default 1)
        (?:severity=(?P<severity>\w+)\s*)?  # default "warn"
        $""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class SloRule:
    """One declarative alert condition over a metrics series."""

    name: str
    series: str
    op: str  # ">" or "<"
    threshold: float
    periods: int = 1
    severity: str = "warn"

    def __post_init__(self) -> None:
        if self.op not in (">", "<"):
            raise ValueError(f"op must be '>' or '<', got {self.op!r}")
        if self.periods < 1:
            raise ValueError("periods must be >= 1")

    @classmethod
    def parse(cls, line: str) -> "SloRule":
        """Parse ``name: series > threshold [for N] [severity=level]``."""
        match = _RULE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable SLO rule: {line!r}")
        return cls(
            name=match.group("name"),
            series=match.group("series"),
            op=match.group("op"),
            threshold=float(match.group("threshold")),
            periods=int(match.group("periods") or 1),
            severity=match.group("severity") or "warn",
        )

    @classmethod
    def parse_many(cls, text: str) -> List["SloRule"]:
        """Parse one rule per line; blank lines and ``#`` comments skipped."""
        rules = []
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            rules.append(cls.parse(line))
        return rules

    def breached(self, value: float) -> bool:
        return value > self.threshold if self.op == ">" else value < self.threshold

    def render(self) -> str:
        return (
            f"{self.name}: {self.series} {self.op} {self.threshold:g} "
            f"for {self.periods} severity={self.severity}"
        )


@dataclass
class _RuleState:
    streak: int = 0
    active: bool = False
    since: Optional[float] = None
    last_value: Optional[float] = None


class SloEngine:
    """Evaluates SLO rules each control period; journals alert edges."""

    def __init__(
        self,
        rules: Sequence[SloRule],
        registry: Optional[MetricsRegistry] = None,
        journal: Optional[DecisionJournal] = None,
    ):
        self.rules = list(rules)
        self.registry = registry if registry is not None else get_registry()
        self.journal = journal
        self._lock = threading.Lock()
        self._states: Dict[str, _RuleState] = {r.name: _RuleState() for r in self.rules}

    # -- evaluation ------------------------------------------------------------

    def _rule_value(self, rule: SloRule, snapshot: Dict[str, float]) -> Optional[float]:
        exact = snapshot.get(rule.series)
        if exact is not None:
            return exact
        prefix = rule.series + "{"
        matches = [v for k, v in snapshot.items() if k.startswith(prefix)]
        if not matches:
            return None
        # Worst-case across labeled variants: the breach-most value.
        return max(matches) if rule.op == ">" else min(matches)

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Run one evaluation pass; returns the alert transitions it caused.

        *now* is the control loop's notion of time (simulated seconds in
        the DES benchmarks, wall clock live) and is stamped onto journal
        events verbatim so the timeline lines up with decisions.
        """
        now = time.time() if now is None else now
        snapshot = self.registry.snapshot()
        transitions: List[Dict[str, Any]] = []
        with self._lock:
            for rule in self.rules:
                state = self._states[rule.name]
                value = self._rule_value(rule, snapshot)
                state.last_value = value
                breached = value is not None and rule.breached(value)
                state.streak = state.streak + 1 if breached else 0
                if breached and not state.active and state.streak >= rule.periods:
                    state.active = True
                    state.since = now
                    transitions.append(self._transition(
                        KIND_ALERT_FIRED, rule, value, now
                    ))
                elif not breached and state.active:
                    state.active = False
                    state.since = None
                    transitions.append(self._transition(
                        KIND_ALERT_RESOLVED, rule, value, now
                    ))
        if self.journal is not None:
            for transition in transitions:
                data = {k: v for k, v in transition.items()
                        if k not in ("kind", "timestamp")}
                self.journal.append(transition["kind"], transition["timestamp"], **data)
        return transitions

    def _transition(
        self, kind: str, rule: SloRule, value: Optional[float], now: float
    ) -> Dict[str, Any]:
        return {
            "kind": kind,
            "timestamp": now,
            "rule": rule.name,
            "series": rule.series,
            "op": rule.op,
            "threshold": rule.threshold,
            "value": value,
            "severity": rule.severity,
        }

    # -- introspection -----------------------------------------------------------

    def status(self) -> List[Dict[str, Any]]:
        """Per-rule state for the ops endpoint's ``/slo`` route."""
        with self._lock:
            return [
                {
                    "rule": rule.name,
                    "definition": rule.render(),
                    "active": self._states[rule.name].active,
                    "streak": self._states[rule.name].streak,
                    "since": self._states[rule.name].since,
                    "last_value": self._states[rule.name].last_value,
                    "severity": rule.severity,
                }
                for rule in self.rules
            ]

    def active_alerts(self) -> List[str]:
        with self._lock:
            return [name for name, s in self._states.items() if s.active]

    def reset(self) -> None:
        with self._lock:
            self._states = {r.name: _RuleState() for r in self.rules}


#: Example ruleset used by the demo ops run and documented in the README.
DEFAULT_RULES_TEXT = """
# Sustained request backlog on the SyncService queue.
queue-backlog: supervisor_queue_depth > 50 for 3
# Pool pinned at zero while traffic flows (census collapse).
pool-empty: supervisor_pool_size < 1 for 2
# Redeliveries climbing: consumers are dying mid-message.
redelivery: supervisor_queue_redelivered > 10 for 3 severity=page
"""


def default_rules() -> List[SloRule]:
    return SloRule.parse_many(DEFAULT_RULES_TEXT)
