"""Control-plane observability: the scaling-decision journal + health probes.

PR 2's telemetry made the *data* plane visible (commit/chunk spans, the
unified :class:`~repro.telemetry.registry.MetricsRegistry`); this module
does the same for the *control* plane the paper's elasticity loop runs on
(§3.3-3.4, Fig 8).  Two pieces:

* :class:`DecisionJournal` — a structured, append-only log of every
  Supervisor control period: the observation (λ_obs, λ_pred, interarrival
  variance, queue depth, census), which reactive threshold (τ₁/τ₂) fired,
  the active policy's proposal with its human-readable *reason*, and the
  spawn/shutdown actions taken — including crash-repair replacements (the
  Fig 8(f) behaviour).  Alert transitions from the
  :mod:`~repro.telemetry.slo` engine land in the same journal, so one
  file tells the whole story of a run.  Journals serialize to JSONL and
  load back, which is what lets ``bench/reporting`` and the
  ``stacksync-repro timeline`` command regenerate a Fig-8-style
  provisioning timeline after the fact.

* :class:`HealthRegistry` — per-component liveness/readiness probes
  (broker, metadata back-end, object store, SyncService, Supervisor)
  behind the same weakref discipline as metric sources: a component
  registers a probe at construction, a dead component silently drops out
  of the next check.  The ops endpoint's ``/health`` and ``/ready``
  routes evaluate these.

Everything here is pull-based and allocation-free on hot paths: the
journal is only written by the control loop (once per control period) and
probes run only when someone asks.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

#: Event kinds written by the Supervisor / simulation control loop.
KIND_DECISION = "decision"
KIND_SPAWN = "spawn"
KIND_SHUTDOWN = "shutdown"
#: Event kinds written by the SLO engine.
KIND_ALERT_FIRED = "alert-fired"
KIND_ALERT_RESOLVED = "alert-resolved"

#: Action reasons stamped by the control loop.
REASON_SCALE_UP = "scale-up"
REASON_SCALE_DOWN = "scale-down"
REASON_CRASH_REPAIR = "crash-repair"


@dataclass
class JournalEvent:
    """One append-only entry: a decision, an action, or an alert edge.

    ``seq`` is assigned by the journal and is what action events use to
    point back at the decision that caused them (``decision_seq``).
    ``data`` carries the kind-specific payload; :meth:`to_dict` flattens
    it so JSONL lines stay greppable/jq-able.
    """

    kind: str
    timestamp: float
    seq: int = 0
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "timestamp": self.timestamp,
            "seq": self.seq,
        }
        out.update(self.data)
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "JournalEvent":
        data = dict(raw)
        kind = data.pop("kind")
        timestamp = data.pop("timestamp")
        seq = data.pop("seq", 0)
        return cls(kind=kind, timestamp=timestamp, seq=seq, data=data)


class DecisionJournal:
    """Append-only, thread-safe, bounded journal of control-plane events.

    Args:
        capacity: In-memory ring size (old events fall off; an attached
            file sink keeps everything, subject to ``max_sink_bytes``).
        path: Optional JSONL sink appended to on every event, so a
            long-running service leaves a durable operations log behind.
        max_sink_bytes: Optional size cap on the JSONL sink.  A soak run
            writes one decision plus its actions every control period per
            shard; left unbounded, a 10^5-period soak produces a journal
            file in the hundreds of megabytes.  When the next line would
            push the file past the cap, the sink is *rotated*: rewritten
            in place with the newest in-memory events that fit, so the
            file always holds the most recent history (oldest lines fall
            off, exactly like the in-memory ring).  The cap is honoured
            to within one event line; :attr:`rotations` counts rewrites.
    """

    def __init__(
        self,
        capacity: int = 100_000,
        path: Optional[str] = None,
        max_sink_bytes: Optional[int] = None,
    ):
        if max_sink_bytes is not None and max_sink_bytes <= 0:
            raise ValueError("max_sink_bytes must be positive")
        self._lock = threading.Lock()
        self._events: Deque[JournalEvent] = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._path = path
        self._sink = open(path, "a", encoding="utf-8") if path else None
        self._max_sink_bytes = max_sink_bytes
        self._sink_bytes = self._sink.tell() if self._sink is not None else 0
        self.rotations = 0
        self.dropped = 0

    # -- writing ---------------------------------------------------------------

    def append(self, kind: str, timestamp: Optional[float] = None, **data: Any) -> JournalEvent:
        """Record one event; returns it with its assigned ``seq``."""
        event = JournalEvent(
            kind=kind,
            timestamp=time.time() if timestamp is None else timestamp,
            data=data,
        )
        with self._lock:
            event.seq = next(self._seq)
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
            if self._sink is not None:
                line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
                nbytes = len(line.encode("utf-8"))
                if (
                    self._max_sink_bytes is not None
                    and self._sink_bytes + nbytes > self._max_sink_bytes
                ):
                    self._rotate_sink(nbytes)
                self._sink.write(line)
                self._sink.flush()
                self._sink_bytes += nbytes
            self._events.append(event)
        return event

    def _rotate_sink(self, incoming: int) -> None:
        """Rewrite the sink with the newest events that fit under the cap.

        Called with the lock held, before the incoming event (of
        *incoming* encoded bytes) is written, so the rewritten prefix
        plus the new line stays within ``max_sink_bytes`` whenever the
        line itself fits.  The tail is trimmed to *half* the cap, not the
        cap itself: rotating right up to the limit would leave no
        headroom and force a full rewrite on every subsequent append.
        """
        budget = max(0, self._max_sink_bytes // 2 - incoming)
        keep: List[str] = []
        used = 0
        for event in reversed(self._events):
            line = json.dumps(event.to_dict(), sort_keys=True) + "\n"
            nbytes = len(line.encode("utf-8"))
            if used + nbytes > budget:
                break
            keep.append(line)
            used += nbytes
        keep.reverse()
        self._sink.close()
        self._sink = open(self._path, "w", encoding="utf-8")
        self._sink.writelines(keep)
        self._sink_bytes = used
        self.rotations += 1

    @property
    def sink_bytes(self) -> int:
        """Current size of the JSONL sink in bytes (0 without a sink)."""
        with self._lock:
            return self._sink_bytes

    # -- reading ---------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[JournalEvent]:
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        return events

    def tail(self, n: int = 50, kind: Optional[str] = None) -> List[JournalEvent]:
        """The most recent *n* events (optionally of one kind), oldest first."""
        return self.events(kind)[-max(0, n):]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def decisions(self) -> List[JournalEvent]:
        return self.events(KIND_DECISION)

    def actions(self) -> List[JournalEvent]:
        return [e for e in self.events() if e.kind in (KIND_SPAWN, KIND_SHUTDOWN)]

    def alerts(self) -> List[JournalEvent]:
        return [
            e for e in self.events()
            if e.kind in (KIND_ALERT_FIRED, KIND_ALERT_RESOLVED)
        ]

    # -- serialization ---------------------------------------------------------

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(e.to_dict(), sort_keys=True) + "\n" for e in self.events()
        )

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    @classmethod
    def load(cls, path: str) -> "DecisionJournal":
        journal = cls()
        with open(path, "r", encoding="utf-8") as fh:
            events = load_journal_lines(fh)
        with journal._lock:
            journal._events.extend(events)
            journal._seq = itertools.count(
                max((e.seq for e in events), default=0) + 1
            )
        return journal

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None


def load_journal_lines(lines: Iterable[str]) -> List[JournalEvent]:
    """Parse JSONL journal lines (blank lines ignored)."""
    events: List[JournalEvent] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        events.append(JournalEvent.from_dict(json.loads(line)))
    return events


# -- health probes -----------------------------------------------------------------


@dataclass
class ProbeResult:
    """Outcome of one component probe."""

    component: str
    ok: bool
    detail: Dict[str, Any] = field(default_factory=dict)
    #: Only required probes gate readiness (/ready); all gate /health.
    required: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return {
            "component": self.component,
            "ok": self.ok,
            "required": self.required,
            "detail": self.detail,
        }


class _Probe:
    """A registered probe, weakly bound to its owning component."""

    def __init__(
        self,
        component: str,
        owner: Any,
        check: Callable[[Any], Dict[str, Any]],
        required: bool,
    ):
        self.component = component
        self.ref = weakref.ref(owner)
        self.check = check
        self.required = required


class HealthRegistry:
    """Process-wide store of component health probes.

    A probe is ``check(owner) -> detail dict``; the probe passes when it
    returns without raising and its detail has no ``{"ok": False}`` entry.
    Owners are weakly held — garbage-collected components disappear from
    the next :meth:`check` instead of reporting as dead forever.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._probes: Dict[int, _Probe] = {}
        self._ids = itertools.count(1)

    def register(
        self,
        component: str,
        owner: Any,
        check: Callable[[Any], Dict[str, Any]],
        required: bool = True,
    ) -> int:
        """Register ``check(owner)`` under *component*; returns a token."""
        probe = _Probe(component, owner, check, required)
        with self._lock:
            token = next(self._ids)
            self._probes[token] = probe
        return token

    def unregister(self, token: int) -> None:
        with self._lock:
            self._probes.pop(token, None)

    def check(self) -> List[ProbeResult]:
        """Run every live probe; prune the dead ones."""
        with self._lock:
            probes = list(self._probes.items())
        results: List[ProbeResult] = []
        dead: List[int] = []
        for token, probe in probes:
            owner = probe.ref()
            if owner is None:
                dead.append(token)
                continue
            try:
                detail = probe.check(owner) or {}
                ok = bool(detail.pop("ok", True))
            except Exception as exc:  # noqa: BLE001 - a probe must never kill /health
                detail = {"error": f"{type(exc).__name__}: {exc}"}
                ok = False
            results.append(
                ProbeResult(
                    component=probe.component,
                    ok=ok,
                    detail=detail,
                    required=probe.required,
                )
            )
        if dead:
            with self._lock:
                for token in dead:
                    self._probes.pop(token, None)
        return results

    def healthy(self) -> bool:
        """True when every live probe passes."""
        return all(r.ok for r in self.check())

    def ready(self) -> bool:
        """True when every *required* live probe passes."""
        return all(r.ok for r in self.check() if r.required)

    def clear(self) -> None:
        with self._lock:
            self._probes.clear()


#: The process-wide health registry components wire themselves into,
#: mirroring :data:`repro.telemetry.registry.REGISTRY`.
HEALTH = HealthRegistry()


def get_health_registry() -> HealthRegistry:
    return HEALTH
