"""The unified metrics registry: one place for every meter in the stack.

Before this module, operational counters were scattered per component:
``ObjectInfo`` on each skeleton, ``ClientTrafficStats`` on each client,
``BrokerStats`` on the MOM broker, ``TransferStats`` on each chunk pool,
``CallStats`` on each proxy.  The :class:`MetricsRegistry` absorbs them
behind labeled series without touching their hot paths: components
register a *source* — a callback evaluated only when someone snapshots
the registry — holding the owner through a weak reference so a dead
client/broker/pool silently drops out of the scrape.

Direct instruments (:class:`Counter`, :class:`Gauge`, :class:`Histogram`)
are also available for code that wants to record into the registry
itself; histograms reuse the bounded-reservoir + shared-percentile scheme
of ``CallStats``.
"""

from __future__ import annotations

import itertools
import threading
import weakref
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.telemetry.stats import percentile

Labels = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: Labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing labeled counter (thread-safe)."""

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A labeled point-in-time value (thread-safe)."""

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Bounded-reservoir histogram: exact count/sum/max, recent percentiles.

    The same scheme as ``CallStats``: aggregates are exact over every
    observation ever made, percentile queries run over the most recent
    :data:`RESERVOIR_SIZE` samples, so memory stays O(1).
    """

    RESERVOIR_SIZE = 10_000

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._recent: Deque[float] = deque(maxlen=self.RESERVOIR_SIZE)

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value
            self._recent.append(value)

    @property
    def mean(self) -> float:
        with self._lock:
            return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        with self._lock:
            recent = list(self._recent)
        return percentile(recent, fraction)

    def summary(self) -> Dict[str, float]:
        with self._lock:
            recent = list(self._recent)
            count, total, maximum = self.count, self.total, self.max
        return {
            "count": count,
            "sum": total,
            "max": maximum,
            "mean": total / count if count else 0.0,
            "p50": percentile(recent, 0.50),
            "p95": percentile(recent, 0.95),
            "p99": percentile(recent, 0.99),
        }


class _Source:
    """A lazily-scraped metric producer tied to its owner's lifetime."""

    def __init__(self, name: str, owner: Any, read: Callable[[Any], Dict[str, float]], labels: Labels):
        self.name = name
        self.ref = weakref.ref(owner)
        self.read = read
        self.labels = labels


class MetricsRegistry:
    """Process-wide store of instruments and scrape-time sources."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}
        self._sources: Dict[int, _Source] = {}
        self._source_ids = itertools.count(1)

    # -- direct instruments (get-or-create) ----------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(name, key[1])
                self._counters[key] = instrument
            return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(name, key[1])
                self._gauges[key] = instrument
            return instrument

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(name, key[1])
                self._histograms[key] = instrument
            return instrument

    # -- lookup (scrape helpers) ---------------------------------------------

    def find_counters(self, name: str) -> List[Counter]:
        """Every Counter series with this name, across all label sets."""
        with self._lock:
            return [c for (n, _), c in self._counters.items() if n == name]

    def find_gauges(self, name: str) -> List[Gauge]:
        """Every Gauge series with this name, across all label sets."""
        with self._lock:
            return [g for (n, _), g in self._gauges.items() if n == name]

    def find_histograms(self, name: str) -> List[Histogram]:
        """Every Histogram series with this name, across all label sets."""
        with self._lock:
            return [h for (n, _), h in self._histograms.items() if n == name]

    # -- scrape-time sources -------------------------------------------------

    def register_source(
        self,
        name: str,
        owner: Any,
        read: Callable[[Any], Dict[str, float]],
        **labels: Any,
    ) -> int:
        """Register ``read(owner) -> {metric: value}`` scraped lazily.

        The owner is held weakly: when it is garbage-collected the source
        disappears from future snapshots.  Returns a token usable with
        :meth:`unregister_source`.
        """
        source = _Source(name, owner, read, _labels_key(labels))
        with self._lock:
            token = next(self._source_ids)
            self._sources[token] = source
        return token

    def unregister_source(self, token: int) -> None:
        with self._lock:
            self._sources.pop(token, None)

    def prune_dead_sources(self) -> int:
        """Drop sources whose owners were garbage-collected.

        :meth:`snapshot` already prunes as a side effect of scraping; this
        is the explicit form for callers that want to reclaim the slots
        (and verify there are no tombstones) without paying for a scrape.
        Returns the number of sources removed.
        """
        with self._lock:
            dead = [
                token
                for token, source in self._sources.items()
                if source.ref() is None
            ]
            for token in dead:
                self._sources.pop(token)
        return len(dead)

    def source_count(self) -> int:
        """Number of registered sources, including not-yet-pruned dead ones."""
        with self._lock:
            return len(self._sources)

    # -- output --------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flatten every series into ``name{label="v"} -> value``."""
        result: Dict[str, float] = {}
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            sources = list(self._sources.items())
        for counter in counters:
            result[counter.name + _render_labels(counter.labels)] = counter.value
        for gauge in gauges:
            result[gauge.name + _render_labels(gauge.labels)] = gauge.value
        for histogram in histograms:
            rendered = _render_labels(histogram.labels)
            for stat, value in histogram.summary().items():
                result[f"{histogram.name}_{stat}{rendered}"] = value
        dead: List[int] = []
        for token, source in sources:
            owner = source.ref()
            if owner is None:
                dead.append(token)
                continue
            rendered = _render_labels(source.labels)
            for stat, value in source.read(owner).items():
                result[f"{source.name}_{stat}{rendered}"] = value
        if dead:
            with self._lock:
                for token in dead:
                    self._sources.pop(token, None)
        return result

    def render_prometheus(self) -> str:
        """Prometheus text-exposition-style snapshot (one line per series)."""
        lines = [
            f"{series} {value}"
            for series, value in sorted(self.snapshot().items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Drop every instrument and source (tests / fresh experiments)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._sources.clear()


#: The process-wide registry components wire themselves into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
