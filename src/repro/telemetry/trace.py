"""Cross-layer trace propagation: one commit, one causally-linked span tree.

A :class:`TraceContext` (``trace_id`` / ``span_id``) rides inside ObjectMQ
envelopes (key ``"trace"``) and MOM message headers, so a single
``commitRequest`` yields spans covering proxy serialization, broker queue
wait, skeleton dispatch, SyncService handling, the metadata transaction
and per-chunk storage I/O — across every thread the request touches.

The module-level :data:`TRACER` is a singleton that starts **disabled**;
every instrumentation site is guarded by one ``TRACER.enabled`` attribute
check (directly, or inside :meth:`Tracer.span`, which returns a shared
no-op context manager), so the disabled path allocates nothing and the
Fig 7 byte counters are unchanged.  Enable with :func:`enable`, read the
collected spans with :meth:`Tracer.spans`, export them with
:mod:`repro.telemetry.export`.

Span timestamps are ``time.time()`` wall-clock seconds: every layer runs
in one process here, so wall time is a consistent global clock and maps
directly onto Chrome ``trace_event`` microseconds.  Durations, however,
are measured with ``time.perf_counter()`` — a live span's ``end`` is
``start`` plus the monotonic elapsed time — so a wall-clock step (NTP
slew, manual adjustment) mid-span can never produce a negative or
inflated duration.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Envelope / message-header key carrying the wire-encoded TraceContext.
TRACE_KEY = "trace"
#: Message-header keys stamped by the MOM queue (broker clock).
ENQUEUED_AT_KEY = "t_enq"
DEQUEUED_AT_KEY = "t_deq"


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span: what children point back to."""

    trace_id: str
    span_id: str

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data: Optional[Dict[str, str]]) -> Optional["TraceContext"]:
        if not data:
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(trace_id=trace_id, span_id=span_id)


@dataclass
class Span:
    """One timed operation in one layer, linked into a trace tree."""

    name: str
    layer: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: float = 0.0
    thread: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "layer": self.layer,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }


class _NoopSpan:
    """Shared do-nothing context manager returned on every disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """Context manager that records a live span and manages the TLS stack."""

    __slots__ = ("_tracer", "span", "_pushed", "_perf0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._pushed = False
        self._perf0 = time.perf_counter()

    def set_attr(self, key: str, value: Any) -> None:
        self.span.attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.span)
        self._pushed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.span.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        # Monotonic duration anchored to the wall-clock start: clock steps
        # mid-span cannot yield negative (or wildly wrong) durations.
        self.span.end = self.span.start + (time.perf_counter() - self._perf0)
        if self._pushed:
            self._tracer._pop(self.span)
        self._tracer._record(self.span)
        return False


class Tracer:
    """Collects spans into a bounded in-memory buffer (thread-safe).

    ``enabled`` is the single hot-path guard: when False, :meth:`span`
    returns a shared no-op context manager, :meth:`inject` returns None
    (so no trace bytes ever reach the wire) and nothing is allocated.
    """

    def __init__(self, max_spans: int = 100_000, enabled: bool = False):
        self.enabled = enabled
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self.dropped = 0
        self._tls = threading.local()
        # Optional tail-based sampler (repro.telemetry.profiling attaches
        # an ExemplarReservoir here); offered every completed root span.
        self.exemplars: Optional[Any] = None

    # -- span creation -------------------------------------------------------

    def span(
        self,
        name: str,
        layer: str,
        parent: Optional[TraceContext] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        """Start a span; use as a context manager.

        Without an explicit *parent* the span nests under the thread's
        current span (or starts a new trace).  With one — e.g. a context
        extracted from an envelope or captured before handing work to a
        pool thread — it joins that trace instead.
        """
        if not self.enabled:
            return _NOOP_SPAN
        if parent is None:
            parent = self.current()
        span = Span(
            name=name,
            layer=layer,
            trace_id=parent.trace_id if parent else _new_id(),
            span_id=_new_id(),
            parent_id=parent.span_id if parent else None,
            start=time.time(),
            thread=threading.current_thread().name,
            attrs=dict(attrs) if attrs else {},
        )
        return _ActiveSpan(self, span)

    def record_span(
        self,
        name: str,
        layer: str,
        start: float,
        end: float,
        parent: Optional[TraceContext] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Record a span with explicit wall-clock bounds.

        Used for intervals observed after the fact, like broker queue wait
        derived from the enqueue/dequeue header stamps.
        """
        if not self.enabled:
            return None
        span = Span(
            name=name,
            layer=layer,
            trace_id=parent.trace_id if parent else _new_id(),
            span_id=_new_id(),
            parent_id=parent.span_id if parent else None,
            start=start,
            end=max(start, end),
            thread=threading.current_thread().name,
            attrs=dict(attrs) if attrs else {},
        )
        self._record(span)
        return span

    # -- context propagation -------------------------------------------------

    def current(self) -> Optional[TraceContext]:
        """Context of the thread's innermost open span, or None."""
        stack = getattr(self._tls, "stack", None)
        if not stack:
            return None
        return stack[-1].context

    def inject(self) -> Optional[Dict[str, str]]:
        """Wire dict for the current context; None when there is nothing
        to propagate (disabled, or no open span on this thread)."""
        if not self.enabled:
            return None
        current = self.current()
        return current.to_wire() if current else None

    # -- collected spans -----------------------------------------------------

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def drain(self) -> List[Span]:
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    # -- internals -----------------------------------------------------------

    def _push(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)
        # Offer completed roots to the exemplar reservoir outside the
        # buffer lock (the reservoir re-reads the buffer to capture the
        # tree).  A sampler bug must never break span recording.
        if span.parent_id is None and self.exemplars is not None:
            try:
                self.exemplars.offer(span, self)
            except Exception:
                pass


#: The process-wide tracer every instrumentation site consults.  A single
#: long-lived object (never rebound) so modules may cache the reference.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


def enable(max_spans: Optional[int] = None, clear: bool = True) -> Tracer:
    """Turn span collection on (optionally resizing/clearing the buffer)."""
    if max_spans is not None:
        TRACER.max_spans = max_spans
    if clear:
        TRACER.clear()
    TRACER.enabled = True
    return TRACER


def disable() -> Tracer:
    """Stop collecting spans; already-collected spans stay readable."""
    TRACER.enabled = False
    return TRACER


def enabled() -> bool:
    return TRACER.enabled
