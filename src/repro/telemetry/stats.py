"""Shared statistical primitives for every meter in the repo.

One percentile implementation — numpy-style linear interpolation — used
by :class:`repro.objectmq.proxy.CallStats`, :mod:`repro.simulation.metrics`
and the telemetry :class:`~repro.telemetry.registry.Histogram`.  Before
this module existed the proxy used nearest-rank and the simulation used
linear interpolation, so the two disagreed at small n (e.g. the median of
``[1, 2]`` was 2.0 on one side and 1.5 on the other).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile (numpy's default ``method='linear'``).

    *fraction* is in [0, 1] and is clamped; an empty sample returns 0.0.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    fraction = min(max(fraction, 0.0), 1.0)
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def safe_percentile(values: Sequence[float], fraction: float) -> Optional[float]:
    """Percentile that degrades explicitly on degenerate samples.

    :func:`percentile` maps an empty series to ``0.0``, which is the right
    convention for a histogram summary but poisonous for scrape-time
    reporting: a soak phase that saw no completions would record a
    "p99 latency" of zero and look infinitely fast.  This variant keeps
    the degenerate cases honest — ``None`` for an empty series, the lone
    sample itself (for any *fraction*) when there is exactly one — and
    otherwise defers to the shared implementation.
    """
    if not values:
        return None
    if len(values) == 1:
        return float(values[0])
    return percentile(values, fraction)
