"""The hot-path profiling plane: where does a commit's wall-clock go?

Three instruments, all stdlib-only, all zero-cost when disabled, built so
the broker/RPC rewrite (ROADMAP #1) can be *measured* before and after:

* :class:`StackSampler` — a wall-clock sampling profiler over
  ``sys._current_frames()``: a daemon thread wakes at a configurable rate
  and records every other thread's Python stack.  Aggregated samples
  export as collapsed-stack ("folded") lines for flamegraph tooling and
  as Chrome ``trace_event`` sampling data (``stackFrames`` + ``samples``)
  for Perfetto.  Costs nothing unless started.

* :class:`TimedLock` / :class:`TimedCondition` — drop-in wrappers around
  ``threading.Lock`` / ``threading.Condition`` that, when
  :data:`PROFILING` ``.lock_timing`` is on, record wait-time and
  hold-time histograms plus an acquisitions counter into the unified
  :class:`~repro.telemetry.registry.MetricsRegistry` (series
  ``lock_wait_seconds`` / ``lock_hold_seconds`` / ``lock_acquisitions`` /
  ``cond_wait_seconds``, labeled ``lock=<name>``).  The MOM hot path
  (queue, exchange, broker, cluster) runs on these wrappers; disabled,
  each operation adds a single attribute check before delegating to the
  real lock — the same guarantee the tracer pins.  Waits longer than
  :data:`SLOW_WAIT_SPAN_S` additionally surface as ``layer="lock"``
  spans when tracing is on, so lock stalls appear inside trace trees.

* :class:`ExemplarReservoir` — tail-based trace sampling.  Hooked onto
  the tracer (:func:`enable_exemplars`), it watches completed *root*
  spans, keeps a rolling window of their durations, and captures the
  full span tree only for roots slower than the window's p99 (or ones
  that errored).  Each :class:`Exemplar` can name the **dominant
  critical-path segment** — queue-wait vs lock-wait vs metadata vs
  storage — via per-layer self-time over its tree.  The reservoir is
  bounded: when full, the fastest non-errored exemplar is evicted.

Surfaces: ``/profile`` and ``/contention`` on the ops endpoint,
``stacksync-repro profile`` in the CLI, per-control-period
``soak_lock_*`` gauges in the soak harness, and
``benchmarks/test_ablation_broker.py`` recording the pre-rewrite broker
baseline onto the performance trajectory.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.telemetry.stats import percentile
from repro.telemetry.trace import Span, Tracer, TRACER

#: Lock waits at least this long (seconds) become ``layer="lock"`` spans
#: when tracing is enabled, so stalls show up inside exemplar trees.
SLOW_WAIT_SPAN_S = 0.001

#: Metric series written by the lock wrappers.
LOCK_WAIT_SERIES = "lock_wait_seconds"
LOCK_HOLD_SERIES = "lock_hold_seconds"
LOCK_ACQUISITIONS_SERIES = "lock_acquisitions"
COND_WAIT_SERIES = "cond_wait_seconds"


class ProfilingConfig:
    """The process-wide on/off switches every instrumented site consults.

    A single long-lived object (never rebound) so modules may cache the
    reference; ``lock_timing`` is the one attribute the disabled hot
    path reads.
    """

    __slots__ = ("lock_timing",)

    def __init__(self) -> None:
        self.lock_timing = False


#: The singleton every TimedLock/TimedCondition checks.
PROFILING = ProfilingConfig()


def enable_lock_timing() -> None:
    """Start recording wait/hold histograms on every TimedLock."""
    PROFILING.lock_timing = True


def disable_lock_timing() -> None:
    PROFILING.lock_timing = False


def lock_timing_enabled() -> bool:
    return PROFILING.lock_timing


# -- timed synchronization primitives -----------------------------------------


class TimedLock:
    """A ``threading.Lock`` that can meter its own contention.

    Disabled (the default), every operation is one attribute check plus
    delegation to the wrapped lock.  Enabled, each successful acquire
    records the time spent blocking (``lock_wait_seconds``), each
    release records the time the lock was held (``lock_hold_seconds``),
    and ``lock_acquisitions`` counts cycles — all labeled with the
    lock's *name*, so ``/contention`` can attribute stalls to specific
    MOM structures.

    Also implements the optional ``_release_save`` / ``_acquire_restore``
    / ``_is_owned`` protocol, so a ``threading.Condition`` built on a
    TimedLock keeps the wait/hold bookkeeping correct across
    ``Condition.wait`` (the hold slice closes at wait, a new one opens
    at wakeup, and the wakeup re-acquire counts as lock wait).
    """

    __slots__ = ("_inner", "name", "_hold_started")

    def __init__(self, name: str):
        self._inner = threading.Lock()
        self.name = name
        # perf_counter stamp of the current hold; written/read only by
        # the holder, so no extra synchronization is needed.
        self._hold_started = 0.0

    # -- metric recording (enabled path only) ---------------------------------

    def _record_acquire(self, waited: float) -> None:
        registry = get_registry()
        registry.counter(LOCK_ACQUISITIONS_SERIES, lock=self.name).inc()
        registry.histogram(LOCK_WAIT_SERIES, lock=self.name).observe(waited)
        if waited >= SLOW_WAIT_SPAN_S and TRACER.enabled:
            now = time.time()
            TRACER.record_span(
                f"lock.wait:{self.name}",
                layer="lock",
                start=now - waited,
                end=now,
                parent=TRACER.current(),
                attrs={"lock": self.name},
            )

    def _record_hold(self, held: float) -> None:
        get_registry().histogram(LOCK_HOLD_SERIES, lock=self.name).observe(held)

    # -- lock API -------------------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if not PROFILING.lock_timing:
            return self._inner.acquire(blocking, timeout)
        t0 = time.perf_counter()
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            now = time.perf_counter()
            self._hold_started = now
            self._record_acquire(now - t0)
        return ok

    def release(self) -> None:
        if PROFILING.lock_timing and self._hold_started:
            held = time.perf_counter() - self._hold_started
            self._hold_started = 0.0
            self._inner.release()
            # Recorded after the release so metric I/O never extends the
            # measured (or actual) critical section.
            self._record_hold(held)
        else:
            self._hold_started = 0.0
            self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    # -- threading.Condition protocol -----------------------------------------

    def _release_save(self) -> None:
        """Condition.wait: close the hold slice and drop the lock."""
        self.release()

    def _acquire_restore(self, state: object) -> None:
        """Condition.wait wakeup: the re-acquire is real lock wait."""
        self.acquire()

    def _is_owned(self) -> bool:
        # Plain-Lock ownership probe (threading's own fallback), going
        # straight to the inner lock so the probe never pollutes stats.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True


class TimedCondition(threading.Condition):
    """A ``threading.Condition`` over a :class:`TimedLock`.

    ``wait()`` additionally records how long the thread slept on the
    condition (``cond_wait_seconds{lock=<name>}``) — the queue-wait side
    of the MOM dispatch story, distinct from the lock wait its wakeup
    re-acquire records through the TimedLock protocol hooks.
    """

    def __init__(self, lock: TimedLock):
        super().__init__(lock)
        self.name = lock.name

    def wait(self, timeout: Optional[float] = None) -> bool:
        if not PROFILING.lock_timing:
            return super().wait(timeout)
        t0 = time.perf_counter()
        notified = super().wait(timeout)
        get_registry().histogram(COND_WAIT_SERIES, lock=self.name).observe(
            time.perf_counter() - t0
        )
        return notified


# -- contention snapshots -----------------------------------------------------


def contention_snapshot(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Dict[str, Any]]:
    """Per-lock contention report: acquisitions + wait/hold summaries.

    Returns ``{lock name: {"acquisitions": n, "wait": {...}, "hold":
    {...}[, "cond_wait": {...}]}}`` built from the registry's
    ``lock_*``/``cond_wait_seconds`` series.  Histogram summaries carry
    count/sum/max/mean/p50/p95/p99 like every registry histogram.
    """
    registry = registry if registry is not None else get_registry()
    locks: Dict[str, Dict[str, Any]] = {}

    def _lock_label(labels: Tuple[Tuple[str, str], ...]) -> Optional[str]:
        for key, value in labels:
            if key == "lock":
                return value
        return None

    for series, slot in (
        (LOCK_WAIT_SERIES, "wait"),
        (LOCK_HOLD_SERIES, "hold"),
        (COND_WAIT_SERIES, "cond_wait"),
    ):
        for histogram in registry.find_histograms(series):
            name = _lock_label(histogram.labels)
            if name is None:
                continue
            locks.setdefault(name, {})[slot] = histogram.summary()
    for counter in registry.find_counters(LOCK_ACQUISITIONS_SERIES):
        name = _lock_label(counter.labels)
        if name is None:
            continue
        locks.setdefault(name, {})["acquisitions"] = counter.value
    return locks


def contention_totals(
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, float]:
    """Aggregate contention across every lock: the soak-gauge view."""
    snapshot = contention_snapshot(registry)
    totals = {
        "acquisitions": 0.0,
        "wait_s": 0.0,
        "hold_s": 0.0,
        "max_wait_s": 0.0,
    }
    for entry in snapshot.values():
        totals["acquisitions"] += float(entry.get("acquisitions", 0.0))
        wait = entry.get("wait")
        if wait:
            totals["wait_s"] += wait["sum"]
            totals["max_wait_s"] = max(totals["max_wait_s"], wait["max"])
        hold = entry.get("hold")
        if hold:
            totals["hold_s"] += hold["sum"]
    return totals


# -- the sampling profiler ----------------------------------------------------


@dataclass(frozen=True)
class StackSample:
    """One observation of one thread: when, who, and the stack (root first)."""

    timestamp: float
    thread: str
    frames: Tuple[str, ...]


def _frame_label(frame) -> str:
    code = frame.f_code
    module = os.path.splitext(os.path.basename(code.co_filename))[0]
    return f"{module}.{code.co_name}"


class StackSampler:
    """Wall-clock sampling profiler over ``sys._current_frames()``.

    A daemon thread samples every other Python thread's stack at *hz*.
    Aggregation is per ``(thread name, stack)``; a bounded per-sample
    journal (for timestamped Chrome export) keeps the newest
    *max_samples* observations.  ``start``/``stop`` are idempotent; a
    sampler that was never started costs literally nothing.
    """

    def __init__(
        self,
        hz: float = 100.0,
        max_depth: int = 64,
        max_samples: int = 100_000,
    ):
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hz = hz
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._counts: Dict[Tuple[str, Tuple[str, ...]], int] = {}
        self._journal: Deque[StackSample] = deque(maxlen=max_samples)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.sample_count = 0
        self.tick_count = 0
        self.started_at = 0.0
        self.active_seconds = 0.0

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "StackSampler":
        """Begin sampling; a no-op if already running."""
        if self.running:
            return self
        self._stop.clear()
        self.started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="stack-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "StackSampler":
        """Stop sampling; a no-op if not running.  Samples stay readable."""
        thread = self._thread
        if thread is None:
            return self
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if self.started_at:
            self.active_seconds += time.perf_counter() - self.started_at
            self.started_at = 0.0
        return self

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._journal.clear()
            self.sample_count = 0
            self.tick_count = 0
            self.active_seconds = 0.0

    # -- sampling -------------------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.hz
        while not self._stop.wait(interval):
            self.sample_once()

    def sample_once(self) -> int:
        """Take one sample of every thread; returns threads observed.

        Public so tests (and burst profiles) can sample deterministically
        without the timer thread.
        """
        now = time.time()
        me = threading.get_ident()
        sampler_thread = self._thread
        sampler_ident = sampler_thread.ident if sampler_thread else me
        names = {t.ident: t.name for t in threading.enumerate()}
        observed = 0
        for ident, frame in sys._current_frames().items():
            if ident == sampler_ident or ident == me:
                continue
            frames: List[str] = []
            while frame is not None and len(frames) < self.max_depth:
                frames.append(_frame_label(frame))
                frame = frame.f_back
            frames.reverse()  # root first, flamegraph order
            sample = StackSample(
                timestamp=now,
                thread=names.get(ident, f"thread-{ident}"),
                frames=tuple(frames),
            )
            key = (sample.thread, sample.frames)
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
                self._journal.append(sample)
                self.sample_count += 1
            observed += 1
        with self._lock:
            self.tick_count += 1
        return observed

    # -- export ---------------------------------------------------------------

    def counts(self) -> Dict[Tuple[str, Tuple[str, ...]], int]:
        with self._lock:
            return dict(self._counts)

    def samples(self) -> List[StackSample]:
        with self._lock:
            return list(self._journal)

    def collapsed(self) -> str:
        """Collapsed-stack ("folded") lines: ``thread;frame;... count``.

        The format flamegraph.pl / speedscope / inferno consume directly.
        Hottest stacks first.
        """
        lines = [
            (";".join((thread,) + frames), count)
            for (thread, frames), count in self.counts().items()
        ]
        lines.sort(key=lambda pair: (-pair[1], pair[0]))
        return "\n".join(f"{stack} {count}" for stack, count in lines)

    def hottest(self, top_n: int = 10) -> List[Tuple[str, int]]:
        """The *top_n* hottest leaf frames with their sample counts."""
        leaves: Dict[str, int] = {}
        for (_thread, frames), count in self.counts().items():
            leaf = frames[-1] if frames else "<idle>"
            leaves[leaf] = leaves.get(leaf, 0) + count
        ranked = sorted(leaves.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:top_n]

    def chrome_trace(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` sampling data for Perfetto.

        Emits the documented sampling-profile shape: a ``stackFrames``
        tree (deduplicated ``{name, parent}`` nodes) plus timestamped
        ``samples`` referencing leaf frame ids, with one ``tid`` and
        ``thread_name`` metadata row per sampled thread.
        """
        samples = self.samples()
        threads = sorted({sample.thread for sample in samples})
        tid_of = {name: index + 1 for index, name in enumerate(threads)}
        frame_ids: Dict[Tuple[Optional[int], str], int] = {}
        stack_frames: Dict[str, Dict[str, Any]] = {}

        def _intern(parent: Optional[int], name: str) -> int:
            key = (parent, name)
            frame_id = frame_ids.get(key)
            if frame_id is None:
                frame_id = len(frame_ids) + 1
                frame_ids[key] = frame_id
                node: Dict[str, Any] = {"name": name, "category": "python"}
                if parent is not None:
                    node["parent"] = str(parent)
                stack_frames[str(frame_id)] = node
            return frame_id

        events = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
            for name, tid in tid_of.items()
        ]
        out_samples = []
        for sample in samples:
            parent: Optional[int] = None
            for frame in sample.frames or ("<idle>",):
                parent = _intern(parent, frame)
            out_samples.append({
                "cpu": 0,
                "pid": 1,
                "tid": tid_of[sample.thread],
                "ts": sample.timestamp * 1e6,
                "name": "sample",
                "sf": parent,
                "weight": 1,
            })
        return {
            "traceEvents": events,
            "stackFrames": stack_frames,
            "samples": out_samples,
            "displayTimeUnit": "ms",
        }

    def write_collapsed(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            text = self.collapsed()
            fh.write(text + ("\n" if text else ""))

    def write_chrome_trace(self, path: str) -> None:
        import json

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.chrome_trace(), fh)


#: The process-wide sampler served by ``/profile``; never rebound.
PROFILER = StackSampler()


def get_profiler() -> StackSampler:
    return PROFILER


# -- tail-based exemplars ------------------------------------------------------

#: Span layer → human segment name used in critical-path verdicts.
SEGMENT_OF_LAYER = {
    "queue": "queue-wait",
    "lock": "lock-wait",
    "metadata": "metadata",
    "storage": "storage",
    "sync": "sync",
    "skeleton": "dispatch",
    "proxy": "proxy",
    "client": "client",
    "bench": "client",
}


def segment_breakdown(spans: List[Span]) -> Dict[str, float]:
    """Per-segment *self time* over one span tree (or any span set).

    A span's self time is its duration minus the portions covered by its
    children, so nested layers are not double-counted; self times then
    aggregate by :data:`SEGMENT_OF_LAYER`.  Concurrent sibling spans can
    overlap (parallel chunk PUTs), which undercounts the parent — the
    conservative direction for "which segment dominates".
    """
    children: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    breakdown: Dict[str, float] = {}
    for span in spans:
        covered = 0.0
        for child in children.get(span.span_id, ()):
            overlap = min(child.end, span.end) - max(child.start, span.start)
            if overlap > 0:
                covered += overlap
        self_time = max(0.0, span.duration - covered)
        segment = SEGMENT_OF_LAYER.get(span.layer, span.layer)
        breakdown[segment] = breakdown.get(segment, 0.0) + self_time
    return breakdown


def dominant_segment(spans: List[Span]) -> Tuple[str, float, float]:
    """``(segment, seconds, fraction_of_total)`` of the largest self-time."""
    breakdown = segment_breakdown(spans)
    if not breakdown:
        return ("<empty>", 0.0, 0.0)
    total = sum(breakdown.values())
    segment, seconds = max(breakdown.items(), key=lambda kv: (kv[1], kv[0]))
    return (segment, seconds, seconds / total if total else 0.0)


@dataclass
class Exemplar:
    """One retained slow (or errored) trace: the full span tree."""

    trace_id: str
    root_name: str
    duration: float
    start: float
    errored: bool
    spans: List[Span] = field(default_factory=list)

    def breakdown(self) -> Dict[str, float]:
        return segment_breakdown(self.spans)

    def dominant_segment(self) -> Tuple[str, float, float]:
        return dominant_segment(self.spans)

    def to_dict(self) -> Dict[str, Any]:
        segment, seconds, fraction = self.dominant_segment()
        return {
            "trace_id": self.trace_id,
            "root": self.root_name,
            "duration_s": self.duration,
            "start": self.start,
            "errored": self.errored,
            "spans": len(self.spans),
            "dominant_segment": segment,
            "dominant_seconds": seconds,
            "dominant_fraction": fraction,
            "breakdown": self.breakdown(),
        }


class ExemplarReservoir:
    """Tail-based sampler: keep whole trees only for the slow tail.

    Offered every completed root span (by the tracer hook installed with
    :func:`enable_exemplars`), the reservoir tracks a rolling window of
    root durations and captures the full span tree when the root is at
    or above the window's *quantile* (default p99) — once *min_samples*
    roots have been seen — or when the root recorded an error.  Capacity
    is bounded: the fastest non-errored exemplar is evicted first.
    """

    def __init__(
        self,
        capacity: int = 16,
        window: int = 512,
        quantile: float = 0.99,
        min_samples: int = 32,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.quantile = quantile
        self.min_samples = min_samples
        self._lock = threading.Lock()
        self._durations: Deque[float] = deque(maxlen=window)
        self._exemplars: List[Exemplar] = []
        self.roots_seen = 0
        self.captured = 0
        self.evicted = 0

    # -- the tracer hook -------------------------------------------------------

    def offer(self, root: Span, tracer: Tracer) -> Optional[Exemplar]:
        """Consider one completed root span; capture its tree if tail-worthy."""
        duration = root.duration
        errored = "error" in root.attrs
        with self._lock:
            self.roots_seen += 1
            self._durations.append(duration)
            enough = len(self._durations) >= self.min_samples
            threshold = (
                percentile(list(self._durations), self.quantile)
                if enough
                else float("inf")
            )
        if not errored and duration < threshold:
            return None
        spans = [s for s in tracer.spans() if s.trace_id == root.trace_id]
        exemplar = Exemplar(
            trace_id=root.trace_id,
            root_name=root.name,
            duration=duration,
            start=root.start,
            errored=errored,
            spans=spans,
        )
        with self._lock:
            self._exemplars.append(exemplar)
            self.captured += 1
            if len(self._exemplars) > self.capacity:
                self._evict_locked()
        return exemplar

    def _evict_locked(self) -> None:
        """Drop the fastest non-errored exemplar (fastest overall if none)."""
        victims = [e for e in self._exemplars if not e.errored] or self._exemplars
        victim = min(victims, key=lambda e: e.duration)
        self._exemplars.remove(victim)
        self.evicted += 1

    # -- reading ---------------------------------------------------------------

    def exemplars(self) -> List[Exemplar]:
        """Retained exemplars, slowest first."""
        with self._lock:
            return sorted(
                self._exemplars, key=lambda e: e.duration, reverse=True
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._exemplars)

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "roots_seen": float(self.roots_seen),
                "captured": float(self.captured),
                "evicted": float(self.evicted),
                "retained": float(len(self._exemplars)),
            }


def enable_exemplars(
    tracer: Optional[Tracer] = None, **reservoir_kwargs: Any
) -> ExemplarReservoir:
    """Attach a fresh reservoir to *tracer* (default: the singleton)."""
    tracer = tracer if tracer is not None else TRACER
    reservoir = ExemplarReservoir(**reservoir_kwargs)
    tracer.exemplars = reservoir
    return reservoir


def disable_exemplars(tracer: Optional[Tracer] = None) -> None:
    tracer = tracer if tracer is not None else TRACER
    tracer.exemplars = None
