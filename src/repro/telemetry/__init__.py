"""End-to-end telemetry: trace propagation, unified metrics, exporters.

The observability layer the elasticity loop (§3.3) implies but the paper
never shows: per-hop spans across client → ObjectMQ proxy → broker queue
→ skeleton → SyncService → metadata/storage, a process-wide metrics
registry absorbing every scattered meter, and exporters (JSONL span
dumps, Chrome ``trace_event`` for about:tracing/Perfetto, Prometheus-style
text snapshots).

Everything is **off by default** and zero-cost when disabled: each
instrumentation site is guarded by a single ``TRACER.enabled`` attribute
check, and no trace bytes touch the wire unless tracing is on.

The control plane has its own observability on top
(:mod:`repro.telemetry.control`, :mod:`repro.telemetry.slo`,
:mod:`repro.telemetry.http`): an append-only :class:`DecisionJournal`
recording every Supervisor scaling decision with its policy reason, a
weakref :class:`HealthRegistry` of per-component liveness probes, a
declarative :class:`SloEngine` alerting on registry gauges, and an
:class:`OpsServer` exposing ``/metrics``, ``/health``, ``/ready``,
``/events`` and ``/slo`` over plain HTTP.

The hot-path profiling plane (:mod:`repro.telemetry.profiling`) answers
*where the wall-clock goes*: a wall-clock :class:`StackSampler` with
collapsed-stack / Chrome flamegraph export, :class:`TimedLock` /
:class:`TimedCondition` contention meters wired through the MOM layer,
and tail-based :class:`ExemplarReservoir` trace sampling that keeps full
span trees only for p99-slow (or errored) requests and names their
dominant critical-path segment.  Served at ``/profile`` and
``/contention`` and by the ``stacksync-repro profile`` CLI.

Typical use::

    from repro import telemetry

    telemetry.enable()
    ...  # run a workload
    spans = telemetry.get_tracer().spans()
    telemetry.write_chrome_trace(spans, "sync.trace.json")
    print(telemetry.get_registry().render_prometheus())
    telemetry.disable()
"""

from repro.telemetry.control import (
    HEALTH,
    KIND_ALERT_FIRED,
    KIND_ALERT_RESOLVED,
    KIND_DECISION,
    KIND_SHUTDOWN,
    KIND_SPAWN,
    REASON_CRASH_REPAIR,
    REASON_SCALE_DOWN,
    REASON_SCALE_UP,
    DecisionJournal,
    HealthRegistry,
    JournalEvent,
    ProbeResult,
    get_health_registry,
    load_journal_lines,
)
from repro.telemetry.export import (
    load_jsonl,
    render_flame_table,
    spans_to_chrome_trace,
    spans_to_jsonl,
    top_spans_by_layer,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.telemetry.http import OpsServer
from repro.telemetry.profiling import (
    PROFILER,
    PROFILING,
    Exemplar,
    ExemplarReservoir,
    StackSampler,
    TimedCondition,
    TimedLock,
    contention_snapshot,
    contention_totals,
    disable_exemplars,
    disable_lock_timing,
    dominant_segment,
    enable_exemplars,
    enable_lock_timing,
    get_profiler,
    lock_timing_enabled,
    segment_breakdown,
)
from repro.telemetry.slo import (
    DEFAULT_RULES_TEXT,
    SloEngine,
    SloRule,
    default_rules,
)
from repro.telemetry.stats import percentile, safe_percentile
from repro.telemetry.trace import (
    DEQUEUED_AT_KEY,
    ENQUEUED_AT_KEY,
    TRACE_KEY,
    TRACER,
    Span,
    TraceContext,
    Tracer,
    disable,
    enable,
    enabled,
    get_tracer,
)

__all__ = [
    "DEFAULT_RULES_TEXT",
    "DEQUEUED_AT_KEY",
    "ENQUEUED_AT_KEY",
    "HEALTH",
    "KIND_ALERT_FIRED",
    "KIND_ALERT_RESOLVED",
    "KIND_DECISION",
    "KIND_SHUTDOWN",
    "KIND_SPAWN",
    "REASON_CRASH_REPAIR",
    "REASON_SCALE_DOWN",
    "REASON_SCALE_UP",
    "REGISTRY",
    "TRACE_KEY",
    "TRACER",
    "Counter",
    "DecisionJournal",
    "Exemplar",
    "ExemplarReservoir",
    "Gauge",
    "HealthRegistry",
    "Histogram",
    "JournalEvent",
    "MetricsRegistry",
    "OpsServer",
    "PROFILER",
    "PROFILING",
    "ProbeResult",
    "SloEngine",
    "SloRule",
    "Span",
    "StackSampler",
    "TimedCondition",
    "TimedLock",
    "TraceContext",
    "Tracer",
    "contention_snapshot",
    "contention_totals",
    "default_rules",
    "disable",
    "disable_exemplars",
    "disable_lock_timing",
    "dominant_segment",
    "enable",
    "enable_exemplars",
    "enable_lock_timing",
    "enabled",
    "get_profiler",
    "lock_timing_enabled",
    "segment_breakdown",
    "get_health_registry",
    "get_registry",
    "get_tracer",
    "load_journal_lines",
    "load_jsonl",
    "percentile",
    "render_flame_table",
    "safe_percentile",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "top_spans_by_layer",
    "write_chrome_trace",
    "write_jsonl",
]
