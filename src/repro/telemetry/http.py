"""The ops endpoint: stdlib-``http.server`` scrape/health/alert surface.

Real deployments judge a sync middleware by its operational surfaces —
a Prometheus scrape target, liveness/readiness probes for the scheduler,
and a way to ask "what did the autoscaler just do, and why".  This
module serves all of them from one tiny threaded HTTP server with zero
dependencies:

=============  ==================================================================
Route          Payload
=============  ==================================================================
``/metrics``   Prometheus text exposition of the unified MetricsRegistry
``/health``    JSON per-component probe results (200 all-pass / 503 otherwise)
``/ready``     JSON readiness (required probes only; 200 / 503)
``/events``    JSON tail of the scaling-decision journal (``?n=``, ``?kind=``)
``/slo``       JSON SLO rule status from the alert engine
``/bench``     JSON tail of the performance trajectory (``?n=``), when the
               server was given a ``bench_path``
``/profile``   JSON sampling-profiler state: hottest stacks + collapsed
               lines; ``?seconds=&hz=`` runs a synchronous burst profile
``/contention``  JSON per-lock wait/hold histograms + exemplar summaries
``/``          JSON index of the routes above
=============  ==================================================================

Usage::

    ops = OpsServer(journal=journal, slo=engine, port=0)  # 0 = ephemeral
    ops.start()
    print(ops.url)      # e.g. http://127.0.0.1:49152
    ...
    ops.stop()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.telemetry.control import (
    HEALTH,
    DecisionJournal,
    HealthRegistry,
)
from repro.telemetry.registry import MetricsRegistry, get_registry
from repro.telemetry.slo import SloEngine


class _OpsHandler(BaseHTTPRequestHandler):
    """Routes one request against the owning :class:`OpsServer`."""

    server: "_OpsHTTPServer"

    # Silence the default stderr access log; ops surfaces are scraped
    # once a second and must not spam the console.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        ops = self.server.ops
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        query = parse_qs(parsed.query)
        try:
            if route == "/metrics":
                self._send_text(200, ops.registry.render_prometheus())
            elif route == "/health":
                status, payload = ops.health_payload()
                self._send_json(status, payload)
            elif route == "/ready":
                status, payload = ops.ready_payload()
                self._send_json(status, payload)
            elif route == "/events":
                self._send_json(200, ops.events_payload(
                    n=int(query.get("n", ["100"])[0]),
                    kind=query.get("kind", [None])[0],
                ))
            elif route == "/slo":
                self._send_json(200, ops.slo_payload())
            elif route == "/bench":
                self._send_json(200, ops.bench_payload(
                    n=int(query.get("n", ["5"])[0]),
                ))
            elif route == "/profile":
                seconds = float(query.get("seconds", ["0"])[0])
                self._send_json(200, ops.profile_payload(
                    seconds=seconds,
                    hz=float(query.get("hz", ["100"])[0]),
                    top=int(query.get("top", ["10"])[0]),
                ))
            elif route == "/contention":
                self._send_json(200, ops.contention_payload())
            elif route == "/":
                self._send_json(200, {
                    "service": "stacksync-repro ops",
                    "routes": [
                        "/metrics", "/health", "/ready", "/events", "/slo",
                        "/bench", "/profile", "/contention",
                    ],
                })
            else:
                self._send_json(404, {"error": f"no route {route!r}"})
        except Exception as exc:  # noqa: BLE001 - the endpoint must stay up
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- response helpers -------------------------------------------------------

    def _send_text(self, status: int, body: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _send_json(self, status: int, payload: Any) -> None:
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)


class _OpsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    ops: "OpsServer"


class OpsServer:
    """Serves the ops routes for one process on a background thread.

    Args:
        registry: Metrics registry backing ``/metrics`` (default: the
            process-wide one).
        journal: Decision journal backing ``/events`` (optional — the
            route serves an empty list without one).
        health: Health registry backing ``/health``/``/ready`` (default:
            the process-wide one).
        slo: Alert engine backing ``/slo`` (optional).
        bench_path: Performance-trajectory file backing ``/bench``
            (optional — normally the repo's ``BENCH_soak.json``).  Read
            fresh on every request so a soak appending to the file is
            visible without restarting the endpoint.
        port: TCP port; 0 picks an ephemeral port (read it back from
            :attr:`port` after :meth:`start`).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        journal: Optional[DecisionJournal] = None,
        health: Optional[HealthRegistry] = None,
        slo: Optional[SloEngine] = None,
        bench_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry if registry is not None else get_registry()
        self.journal = journal
        self.health = health if health is not None else HEALTH
        self.slo = slo
        self.bench_path = bench_path
        self.host = host
        self._requested_port = port
        self._server: Optional[_OpsHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "OpsServer":
        if self._server is not None:
            return self
        self._server = _OpsHTTPServer((self.host, self._requested_port), _OpsHandler)
        self._server.ops = self
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="ops-endpoint", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("ops server is not running")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- payload builders (shared with tests and the CLI) -------------------------

    def health_payload(self) -> Tuple[int, Dict[str, Any]]:
        results = self.health.check()
        all_ok = all(r.ok for r in results)
        return (
            200 if all_ok else 503,
            {
                "status": "ok" if all_ok else "degraded",
                "components": [r.to_dict() for r in results],
            },
        )

    def ready_payload(self) -> Tuple[int, Dict[str, Any]]:
        results = self.health.check()
        ready = all(r.ok for r in results if r.required)
        return (
            200 if ready else 503,
            {
                "ready": ready,
                "required": [r.to_dict() for r in results if r.required],
            },
        )

    def events_payload(self, n: int = 100, kind: Optional[str] = None) -> Dict[str, Any]:
        if self.journal is None:
            return {"events": [], "total": 0}
        return {
            "events": [e.to_dict() for e in self.journal.tail(n, kind=kind)],
            "total": len(self.journal),
        }

    def slo_payload(self) -> Dict[str, Any]:
        if self.slo is None:
            return {"rules": [], "active": []}
        return {"rules": self.slo.status(), "active": self.slo.active_alerts()}

    #: Upper bound on a synchronous `/profile?seconds=` burst: the request
    #: thread blocks while sampling, so keep bursts scrape-friendly.
    MAX_BURST_SECONDS = 10.0

    def profile_payload(
        self, seconds: float = 0.0, hz: float = 100.0, top: int = 10
    ) -> Dict[str, Any]:
        """Sampling-profiler state; optionally run a burst profile first.

        With ``seconds > 0`` the request synchronously runs the global
        :class:`StackSampler` for that long (capped at
        :data:`MAX_BURST_SECONDS`, skipped when it is already running)
        and then reports.  With ``seconds == 0`` it reports whatever the
        sampler has accumulated so far.
        """
        from repro.telemetry.profiling import get_profiler

        profiler = get_profiler()
        burst = 0.0
        if seconds > 0 and not profiler.running:
            burst = min(seconds, self.MAX_BURST_SECONDS)
            profiler.hz = max(1.0, hz)
            profiler.start()
            try:
                threading.Event().wait(burst)
            finally:
                profiler.stop()
        return {
            "running": profiler.running,
            "hz": profiler.hz,
            "burst_seconds": burst,
            "samples": profiler.sample_count,
            "ticks": profiler.tick_count,
            "active_seconds": profiler.active_seconds,
            "hottest": [
                {"frame": frame, "samples": count}
                for frame, count in profiler.hottest(top)
            ],
            "collapsed": profiler.collapsed().splitlines(),
        }

    def contention_payload(self) -> Dict[str, Any]:
        """Per-lock contention report plus tail-exemplar summaries."""
        from repro.telemetry.profiling import (
            contention_snapshot,
            contention_totals,
            lock_timing_enabled,
        )
        from repro.telemetry.trace import TRACER

        reservoir = TRACER.exemplars
        exemplars: list = []
        reservoir_stats: Dict[str, float] = {}
        if reservoir is not None:
            exemplars = [e.to_dict() for e in reservoir.exemplars()]
            reservoir_stats = reservoir.stats()
        return {
            "lock_timing_enabled": lock_timing_enabled(),
            "locks": contention_snapshot(self.registry),
            "totals": contention_totals(self.registry),
            "exemplars": exemplars,
            "reservoir": reservoir_stats,
        }

    def bench_payload(self, n: int = 5) -> Dict[str, Any]:
        if self.bench_path is None:
            return {"path": None, "benchmark": None, "total": 0, "entries": []}
        # Imported here: repro.bench pulls in the soak harness, which uses
        # the telemetry package — a module-level import would be circular.
        from repro.bench.trajectory import Trajectory

        trajectory = Trajectory.load(self.bench_path)
        entries = trajectory.entries[-max(0, n):] if n > 0 else []
        return {
            "path": self.bench_path,
            "benchmark": trajectory.benchmark,
            "total": len(trajectory),
            "entries": [entry.to_dict() for entry in entries],
        }
