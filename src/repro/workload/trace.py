"""The benchmark trace generator (§5.2.1).

"Our trace generator requires only 3 parameters: 1) initial number of
files; 2) number of training iterations; and 3) number of snapshots."

With the paper's parameters (20 initial files, 5 training iterations,
100 snapshots) the resulting trace has on the order of 940 ADDs, 72
UPDATEs and 228 REMOVEs, ≈535 MB of ADD volume and ≈14 KB of UPDATE
deltas, with an average file size of ≈583 KB (seed-dependent).

The trace is a flat list of :class:`TraceOp`; file *contents* are
materialized lazily through a :class:`~repro.workload.content.ContentStore`
during replay so that generating a trace stays cheap.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.workload.content import ContentStore
from repro.workload.filesizes import FileSizeSampler
from repro.workload.markov import FileStateMarkov
from repro.workload.modifications import ModificationEngine

OP_ADD = "ADD"
OP_UPDATE = "UPDATE"
OP_REMOVE = "REMOVE"

#: Paper defaults for the §5.2 experiments.
PAPER_INITIAL_FILES = 20
PAPER_TRAINING_ITERATIONS = 5
PAPER_SNAPSHOTS = 100


@dataclass(frozen=True)
class TraceOp:
    """One operation of the replayable workload trace."""

    op: str
    path: str
    snapshot: int
    size: int = 0
    pattern: str = ""  # modification pattern for UPDATEs


@dataclass
class Trace:
    """A generated trace plus its summary statistics."""

    ops: List[TraceOp] = field(default_factory=list)
    seed: int = 0

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def count(self, op: str) -> int:
        return sum(1 for o in self.ops if o.op == op)

    @property
    def add_volume(self) -> int:
        """Total bytes introduced by ADD operations (the benchmark size)."""
        return sum(o.size for o in self.ops if o.op == OP_ADD)

    @property
    def mean_file_size(self) -> float:
        adds = [o.size for o in self.ops if o.op == OP_ADD]
        return sum(adds) / len(adds) if adds else 0.0

    def file_sizes(self) -> List[int]:
        """ADD sizes, the sample plotted as the CDF of Fig 7(a)."""
        return [o.size for o in self.ops if o.op == OP_ADD]

    def only(self, op: str) -> "Trace":
        """Sub-trace with a single action type (the Fig 7c/d variants)."""
        return Trace(ops=[o for o in self.ops if o.op == op], seed=self.seed)

    def summary(self) -> Dict[str, float]:
        return {
            "ops": len(self.ops),
            "adds": self.count(OP_ADD),
            "updates": self.count(OP_UPDATE),
            "removes": self.count(OP_REMOVE),
            "add_volume_mb": self.add_volume / (1024 * 1024),
            "mean_file_size_kb": self.mean_file_size / 1024,
        }

    # -- persistence (the benchmark is shareable, like Drago et al.'s) --------

    def save(self, path: str) -> None:
        """Write the trace as JSON lines: one header, then one op per line.

        Together with the seed (stored in the header), a saved trace fully
        reproduces a replay including file *contents*, since contents are
        derived deterministically from (seed, path).
        """
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"format": "stacksync-trace-v1", "seed": self.seed}))
            fh.write("\n")
            for op in self.ops:
                fh.write(json.dumps(asdict(op), separators=(",", ":")))
                fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            header = json.loads(fh.readline())
            if header.get("format") != "stacksync-trace-v1":
                raise ValueError(f"{path!r} is not a stacksync trace file")
            ops = [TraceOp(**json.loads(line)) for line in fh if line.strip()]
        return cls(ops=ops, seed=header["seed"])


class TraceGenerator:
    """Generates Personal-Cloud workload traces from the Markov model."""

    def __init__(
        self,
        initial_files: int = PAPER_INITIAL_FILES,
        training_iterations: int = PAPER_TRAINING_ITERATIONS,
        snapshots: int = PAPER_SNAPSHOTS,
        seed: int = 42,
        scale: float = 1.0,
    ):
        """
        Args:
            initial_files: Size of the seed population.
            training_iterations: Warm-up snapshots whose operations are
                not recorded (they only evolve the population).
            snapshots: Recorded snapshots.
            seed: Master RNG seed; a trace is fully reproducible from it.
            scale: Multiplier on file sizes (<1 shrinks the data volume
                while preserving every count and ratio — the benches use
                this to keep full-trace replays fast).
        """
        self.initial_files = initial_files
        self.training_iterations = training_iterations
        self.snapshots = snapshots
        self.seed = seed
        self.scale = scale

    def generate(self) -> Trace:
        master = random.Random(self.seed)
        markov = FileStateMarkov(rng=random.Random(master.getrandbits(64)))
        sizes = FileSizeSampler(rng=random.Random(master.getrandbits(64)))
        mods = ModificationEngine(rng=random.Random(master.getrandbits(64)))

        file_sizes: Dict[str, int] = {}
        ops: List[TraceOp] = []

        def scaled(size: int) -> int:
            return max(16, int(size * self.scale))

        # Seed population counts as ADDs in snapshot 0 of the recording.
        pending_initial = markov.seed_files(self.initial_files)

        # Training phase: evolve without recording.
        for _ in range(self.training_iterations):
            step = markov.step()
            for path in step["deleted"]:
                file_sizes.pop(path, None)
                if path in pending_initial:
                    pending_initial.remove(path)
            for path in step["added"]:
                pending_initial.append(path)

        # Record the survivors of training as the initial ADD burst.
        for path in pending_initial:
            size = scaled(sizes.sample())
            file_sizes[path] = size
            ops.append(TraceOp(op=OP_ADD, path=path, snapshot=0, size=size))

        for snapshot in range(1, self.snapshots + 1):
            step = markov.step()
            for path in step["added"]:
                size = scaled(sizes.sample())
                file_sizes[path] = size
                ops.append(TraceOp(op=OP_ADD, path=path, snapshot=snapshot, size=size))
            for path in step["modified"]:
                size = file_sizes.get(path, 0)
                if not ModificationEngine.eligible(int(size / max(self.scale, 1e-9))):
                    # Paper: modifications only on files < 4 MB.
                    continue
                pattern = mods.sample_pattern()
                ops.append(
                    TraceOp(
                        op=OP_UPDATE,
                        path=path,
                        snapshot=snapshot,
                        size=size,
                        pattern=pattern,
                    )
                )
            for path in step["deleted"]:
                if path in file_sizes:
                    ops.append(
                        TraceOp(op=OP_REMOVE, path=path, snapshot=snapshot)
                    )
                    del file_sizes[path]

        return Trace(ops=ops, seed=self.seed)


class TraceReplayer:
    """Materializes trace operations into concrete file contents.

    Drives a :class:`ContentStore` so that every consumer (StackSync
    client, Dropbox baseline, provider profiles) replays byte-identical
    contents for fair traffic comparisons.
    """

    def __init__(
        self,
        trace: Trace,
        mod_seed: Optional[int] = None,
        compressible_fraction: Optional[float] = None,
    ):
        self.trace = trace
        self.content = ContentStore(
            seed=trace.seed, compressible_fraction=compressible_fraction
        )
        self._mods = ModificationEngine(
            rng=random.Random(mod_seed if mod_seed is not None else trace.seed ^ 0xABCD)
        )

    def materialize(self, op: TraceOp) -> Optional[bytes]:
        """Produce the post-operation content for *op* (None for REMOVE)."""
        if op.op == OP_ADD:
            return self.content.create(op.path, op.size)
        if op.op == OP_UPDATE:
            if not self.content.exists(op.path):
                # UPDATE on a file this replay never saw (e.g. filtered
                # sub-trace): treat as an ADD of the recorded size.
                return self.content.create(op.path, op.size)
            new_content, _ = self._mods.apply(
                self.content.get(op.path), op.pattern or None
            )
            self.content.set(op.path, new_content)
            return new_content
        if op.op == OP_REMOVE:
            self.content.delete(op.path)
            return None
        raise ValueError(f"unknown trace op {op.op!r}")
