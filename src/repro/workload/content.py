"""Deterministic synthetic file contents for trace replay.

The benchmarking tool of the paper replays traces "using real content".
We generate contents deterministically from (path, seed) so every replay
— StackSync, Dropbox baseline, every provider profile — sees byte-
identical files, making traffic comparisons fair.

Compressibility is controllable: each file interleaves pseudo-random
blocks (incompressible) with runs of repeated text (compressible), with
the compressible fraction drawn per file.  Real personal-cloud corpora
mix media (incompressible) and documents (compressible) the same way.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Optional

_FILLER = (
    b"the quick brown fox jumps over the lazy dog 0123456789 "
    b"lorem ipsum dolor sit amet consectetur adipiscing elit "
)


def generate_content(
    path: str,
    size: int,
    seed: int = 0,
    compressible_fraction: Optional[float] = None,
) -> bytes:
    """Deterministic pseudo-random content of exactly *size* bytes."""
    if size <= 0:
        return b""
    digest = hashlib.sha256(f"{seed}:{path}".encode("utf-8")).digest()
    rng = random.Random(digest)
    if compressible_fraction is None:
        compressible_fraction = rng.uniform(0.2, 0.8)

    blocks = []
    produced = 0
    block_size = 4096
    while produced < size:
        take = min(block_size, size - produced)
        if rng.random() < compressible_fraction:
            repeats = take // len(_FILLER) + 1
            blocks.append((_FILLER * repeats)[:take])
        else:
            blocks.append(rng.getrandbits(8 * take).to_bytes(take, "little"))
        produced += take
    return b"".join(blocks)


class ContentStore:
    """Tracks the current content of every live file during trace replay.

    *compressible_fraction* pins every file's compressibility (None lets
    each file draw its own); the overhead benches set it low because the
    paper's storage-traffic figures imply a mostly incompressible corpus.
    """

    def __init__(self, seed: int = 0, compressible_fraction: Optional[float] = None):
        self.seed = seed
        self.compressible_fraction = compressible_fraction
        self._contents: Dict[str, bytes] = {}

    def create(self, path: str, size: int) -> bytes:
        content = generate_content(
            path,
            size,
            seed=self.seed,
            compressible_fraction=self.compressible_fraction,
        )
        self._contents[path] = content
        return content

    def set(self, path: str, content: bytes) -> None:
        self._contents[path] = content

    def get(self, path: str) -> bytes:
        return self._contents[path]

    def delete(self, path: str) -> None:
        self._contents.pop(path, None)

    def exists(self, path: str) -> bool:
        return path in self._contents

    def total_bytes(self) -> int:
        return sum(len(c) for c in self._contents.values())
