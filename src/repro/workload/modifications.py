"""File-modification patterns (§5.2.1).

"We followed the same approach as in [23], which currently supports 3
modification types: B — the file is modified in the beginning by
prepending some bytes; E — the file is modified at the end; and M — the
file is modified somewhere in the middle. ... the probability for a B
change was 38%; for an E change 8%, and for an M change 3%. The rest of
the probability mass was granted to combinations of these changes."

The remaining 51% is split evenly over the three pairwise combinations
(BE, BM, EM — 17% each).  Modifications are intentionally tiny: the
paper's 72 UPDATEs changed only ≈14 KB in total (≈200 bytes each), which
is precisely what makes fixed-size chunking look so bad on UPDATE
traffic (one 512 KB chunk re-uploaded per ~200-byte edit).
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

PATTERN_B = "B"
PATTERN_E = "E"
PATTERN_M = "M"
PATTERN_BE = "BE"
PATTERN_BM = "BM"
PATTERN_EM = "EM"

#: Homes-dataset change-pattern distribution (§5.2.1).
HOMES_PATTERN_PROBABILITIES = {
    PATTERN_B: 0.38,
    PATTERN_E: 0.08,
    PATTERN_M: 0.03,
    PATTERN_BE: 0.17,
    PATTERN_BM: 0.17,
    PATTERN_EM: 0.17,
}

#: Only files below this size receive modifications (paper: "we only
#: applied these probabilities in files smaller than 4 MB").
MODIFICATION_SIZE_LIMIT = 4 * 1024 * 1024

#: Edit sizes calibrated to the paper's ≈14 KB over 72 updates.
MIN_EDIT_BYTES = 64
MAX_EDIT_BYTES = 384


class ModificationEngine:
    """Samples change patterns and applies them to file contents."""

    def __init__(self, rng: Optional[random.Random] = None):
        self._rng = rng if rng is not None else random.Random(91)

    def sample_pattern(self) -> str:
        roll = self._rng.random()
        cumulative = 0.0
        for pattern, probability in HOMES_PATTERN_PROBABILITIES.items():
            cumulative += probability
            if roll < cumulative:
                return pattern
        return PATTERN_EM

    def _edit_bytes(self) -> bytes:
        size = self._rng.randint(MIN_EDIT_BYTES, MAX_EDIT_BYTES)
        return bytes(self._rng.getrandbits(8) for _ in range(size))

    def apply(self, content: bytes, pattern: Optional[str] = None) -> Tuple[bytes, str]:
        """Apply a (sampled) pattern; returns (new_content, pattern)."""
        if pattern is None:
            pattern = self.sample_pattern()
        new_content = content
        if PATTERN_B in pattern:
            new_content = self._edit_bytes() + new_content
        if PATTERN_E in pattern:
            new_content = new_content + self._edit_bytes()
        if PATTERN_M in pattern:
            if len(new_content) > 1:
                position = self._rng.randint(1, len(new_content) - 1)
            else:
                position = 0
            new_content = (
                new_content[:position] + self._edit_bytes() + new_content[position:]
            )
        return new_content, pattern

    @staticmethod
    def eligible(size: int) -> bool:
        return size < MODIFICATION_SIZE_LIMIT
