"""File-size distribution of the benchmark trace (§5.2.1, Fig 7a).

The paper sizes files from the distribution reported by Liu et al. [16]
(a five-month study of ~20,000 users): 90% of files are smaller than
4 MB, and the paper's generated trace has an average file size of 583 KB.

We reproduce both constraints with a two-component mixture:

* with probability 0.9, a lognormal "body" (μ=11.0, σ=1.0: median ≈ 60 KB,
  mean ≈ 99 KB) — the mass of small documents/photos;
* with probability 0.1, a "tail" of large files: 4 MB + Exponential(1 MB)
  (mean 5 MB).

Mixture mean ≈ 0.9·99 KB + 0.1·5 MB ≈ 583 KB and P(size < 4 MB) ≈ 0.90,
matching the paper's two published statistics.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

#: Calibrated parameters (see module docstring).
BODY_MU = 11.0
BODY_SIGMA = 1.0
BODY_WEIGHT = 0.9
TAIL_OFFSET = 4 * 1024 * 1024
TAIL_MEAN_EXTRA = 1 * 1024 * 1024

#: Paper statistics the calibration targets.
PAPER_MEAN_SIZE = 583 * 1024
PAPER_P90_BOUND = 4 * 1024 * 1024


class FileSizeSampler:
    """Samples file sizes matching the paper's trace statistics."""

    def __init__(self, rng: Optional[random.Random] = None, min_size: int = 64):
        self._rng = rng if rng is not None else random.Random(7)
        self.min_size = min_size

    def sample(self) -> int:
        if self._rng.random() < BODY_WEIGHT:
            size = self._rng.lognormvariate(BODY_MU, BODY_SIGMA)
            # Keep the body below the 4 MB knee so the P90 target holds.
            size = min(size, TAIL_OFFSET - 1)
        else:
            size = TAIL_OFFSET + self._rng.expovariate(1.0 / TAIL_MEAN_EXTRA)
        return max(self.min_size, int(size))

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for _ in range(count)]

    @staticmethod
    def theoretical_mean() -> float:
        """Closed-form mean of the mixture, for calibration tests."""
        body_mean = math.exp(BODY_MU + BODY_SIGMA**2 / 2.0)
        tail_mean = TAIL_OFFSET + TAIL_MEAN_EXTRA
        return BODY_WEIGHT * body_mean + (1 - BODY_WEIGHT) * tail_mean


def empirical_cdf(sizes: List[int]) -> List[tuple]:
    """(size, cumulative fraction) points for plotting Fig 7(a)."""
    ordered = sorted(sizes)
    n = len(ordered)
    return [(size, (i + 1) / n) for i, size in enumerate(ordered)]
