"""Ubuntu One arrival-trace synthesizer (§5.3.1).

The paper drives its auto-scaling experiments with anonymized traces of
commit-request arrivals to the Ubuntu One control servers (November
2013): one week of history at 15-minute summaries to train the predictive
provisioner, plus the per-second arrivals of "day 8" (a typical day, peak
8,514 commit requests per minute) as the experiment input.

The production trace is not redistributable, so this module synthesizes
an equivalent: a strong diurnal profile (deep night trough, noon peak —
"the workload typically peaks around noon every day and reaches its
minimum level in the middle of the night"), mild weekday/weekend
modulation, slowly-varying day-to-day noise, and Poisson per-second
arrivals.  Day 8 replays the weekday profile with fresh noise, which is
exactly the property ("closely resembled that observed on the previous
week") the predictive provisioner exploits.

All series are expressed in *trace seconds*; ``seconds_per_day``
compresses the day so that simulations replay a full diurnal cycle in a
tractable number of steps without changing any arrival *rate*.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

#: The paper's reported peak for day 8.
PAPER_PEAK_PER_MINUTE = 8514.0


@dataclass(frozen=True)
class UB1Config:
    """Shape parameters of the synthetic UB1 workload."""

    peak_per_minute: float = PAPER_PEAK_PER_MINUTE
    #: Trough rate as a fraction of the peak (middle of the night).
    trough_fraction: float = 0.08
    #: Hour of day (0-24) where the workload peaks.
    peak_hour: float = 12.5
    #: Half-width of the morning ramp (hours): the workload rises from
    #: the trough to the peak over this span.
    rise_hours: float = 6.5
    #: Half-width of the evening decay (hours): slower than the morning
    #: ramp, so evenings stay busier than the small hours — the asymmetry
    #: real Personal-Cloud traces show (and the one that makes hour 30,
    #: 6 a.m., much quieter than hour 20, 8 p.m., in the misprediction
    #: experiment of §5.3.3).
    fall_hours: float = 16.0
    #: Weekend rates are scaled by this factor.
    weekend_factor: float = 0.75
    #: Std-dev of the per-day lognormal amplitude noise.
    day_noise: float = 0.05
    #: Std-dev of the slowly-varying intra-day noise.
    intra_day_noise: float = 0.08
    #: Number of trace seconds representing one day (86400 = real time).
    seconds_per_day: int = 86400

    @property
    def peak_per_second(self) -> float:
        return self.peak_per_minute / 60.0


class UbuntuOneTraceGenerator:
    """Synthesizes per-second arrival-rate and arrival-count series."""

    def __init__(self, config: Optional[UB1Config] = None, seed: int = 2013):
        self.config = config if config is not None else UB1Config()
        self.seed = seed

    # -- deterministic diurnal profile ---------------------------------------------

    def _diurnal_factor(self, hour: float) -> float:
        """Asymmetric 24h profile in [trough_fraction, 1], peaking at
        peak_hour.

        Two half raised-cosines of different widths: a steeper morning
        rise (``rise_hours``) and a gentler evening decay
        (``fall_hours``), matching the qualitative UB1 shape reported by
        the paper and by Gracia-Tinedo et al. [15] — quiet small hours, a
        noon peak, and evenings busier than mornings.
        """
        config = self.config
        # Signed distance from the peak within the day, in (-12, 12].
        distance = (hour - config.peak_hour) % 24.0
        if distance > 12.0:
            distance -= 24.0
        width = config.fall_hours if distance >= 0 else config.rise_hours
        phase = min(math.pi, abs(distance) / width * math.pi)
        raised = (1.0 + math.cos(phase)) / 2.0  # 1 at peak, 0 beyond width
        raised **= 1.5  # sharpen the peak slightly
        return config.trough_fraction + (1.0 - config.trough_fraction) * raised

    def rate_profile(self, day_index: int) -> List[float]:
        """Deterministic-plus-noise per-second arrival rates for one day."""
        config = self.config
        rng = random.Random(f"{self.seed}:{day_index}")
        weekend = day_index % 7 in (5, 6)
        day_amplitude = config.peak_per_second * math.exp(
            rng.gauss(0.0, config.day_noise)
        )
        if weekend:
            day_amplitude *= config.weekend_factor

        n = config.seconds_per_day
        rates: List[float] = []
        # Slowly varying multiplicative noise: an Ornstein-Uhlenbeck-ish
        # AR(1) walk refreshed every simulated minute.
        noise = 0.0
        minute_len = max(1, n // (24 * 60))
        for i in range(n):
            if i % minute_len == 0:
                noise = 0.9 * noise + rng.gauss(0.0, config.intra_day_noise * 0.44)
            hour = (i / n) * 24.0
            rate = day_amplitude * self._diurnal_factor(hour) * math.exp(noise)
            rates.append(max(0.0, rate))
        return rates

    def arrivals(self, day_index: int) -> List[int]:
        """Poisson-sampled integer arrivals per second for one day."""
        rng = random.Random(f"{self.seed}:{day_index}:arrivals")
        return [_poisson(rng, rate) for rate in self.rate_profile(day_index)]

    # -- provisioner inputs -----------------------------------------------------------

    def week_history_summaries(
        self, period: float = 900.0, start_day: int = 1, days: int = 7
    ) -> List[float]:
        """Mean arrival rate (req/s) per period over *days* days.

        This is the "history of the observed arrival rate for each time
        period" that feeds :class:`PredictiveProvisioner.load_history`.
        *period* is in trace seconds (900 = 15 real minutes when
        ``seconds_per_day`` is 86400; scale it proportionally otherwise).
        """
        summaries: List[float] = []
        for day in range(start_day, start_day + days):
            rates = self.rate_profile(day)
            step = max(1, int(round(period)))
            for start in range(0, len(rates), step):
                window = rates[start : start + step]
                summaries.append(sum(window) / len(window))
        return summaries

    def day8(self) -> List[int]:
        """The experiment input: per-second arrivals of day 8."""
        return self.arrivals(8)

    # -- soak-phase segments ---------------------------------------------------------

    def steady_arrivals(
        self, day_index: int, hour: float, seconds: int
    ) -> List[int]:
        """Per-second arrivals for a *seconds*-long segment starting at *hour*.

        The segment follows the day's actual rate profile (wrapping past
        midnight), so a "steady" phase still carries the trace's noise —
        it is a window of the day, not a flat synthetic rate.  Seeded
        independently of :meth:`arrivals`, so soak phases drawn from the
        same day as a full-day replay do not reuse its samples.
        """
        rates = self.rate_profile(day_index)
        start = int((hour / 24.0) * len(rates)) % len(rates)
        segment = [rates[(start + i) % len(rates)] for i in range(seconds)]
        rng = random.Random(f"{self.seed}:{day_index}:steady:{hour}:{seconds}")
        return [_poisson(rng, rate) for rate in segment]

    def flash_crowd_arrivals(
        self,
        day_index: int,
        hour: float,
        seconds: int,
        multiplier: float = 3.0,
        ramp_fraction: float = 0.1,
    ) -> List[int]:
        """A steady segment with a flash crowd in its middle third.

        The middle third of the window runs at *multiplier* times the
        underlying diurnal rate, with linear ramps of ``ramp_fraction``
        of the window on each edge — the "sudden but not instantaneous"
        surge shape of a viral share or a service coming back from an
        outage, which is the load pattern elasticity papers (and §5.3.3's
        misprediction experiment) stress provisioners with.
        """
        if multiplier < 1.0:
            raise ValueError("flash multiplier must be >= 1")
        rates = self.rate_profile(day_index)
        start = int((hour / 24.0) * len(rates)) % len(rates)
        segment = [rates[(start + i) % len(rates)] for i in range(seconds)]
        ramp = max(1, int(seconds * ramp_fraction))
        surge_start = seconds // 3
        surge_end = 2 * seconds // 3
        for i in range(len(segment)):
            if surge_start <= i < surge_end:
                factor = multiplier
            elif surge_start - ramp <= i < surge_start:
                factor = 1.0 + (multiplier - 1.0) * (
                    (i - (surge_start - ramp)) / ramp
                )
            elif surge_end <= i < surge_end + ramp:
                factor = multiplier - (multiplier - 1.0) * (
                    (i - surge_end) / ramp
                )
            else:
                factor = 1.0
            segment[i] *= factor
        rng = random.Random(
            f"{self.seed}:{day_index}:flash:{hour}:{seconds}:{multiplier}"
        )
        return [_poisson(rng, rate) for rate in segment]

    def peak_of(self, arrivals: List[int], window: Optional[int] = None) -> float:
        """Peak arrivals per minute of a per-second series."""
        if window is None:
            window = max(1, self.config.seconds_per_day // (24 * 60))
        best = 0
        for start in range(0, len(arrivals), window):
            total = sum(arrivals[start : start + window])
            best = max(best, total)
        # Normalize to a per-real-minute figure.
        return best * (60.0 / window) if window else 0.0


def _poisson(rng: random.Random, lam: float) -> int:
    """Poisson sample; Knuth for small λ, normal approximation for large."""
    if lam <= 0:
        return 0
    if lam > 50:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    limit = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > limit:
        count += 1
        product *= rng.random()
    return count
