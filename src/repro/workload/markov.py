"""Markov file-state model (§5.2.1).

"In order to determine the action to be performed to a file, we applied
the Markov model proposed in [23].  In this model, each file can be in 4
possible states: N — new; M — modified; U — unmodified; and D — deleted."

The transition probabilities are taken from the *Homes* dataset of
Tarasov et al. [23] (the public trace "that most resembles the user
behavior in a Personal Cloud service").  The paper prints only the
resulting trace statistics, so the matrix below is calibrated to
reproduce them: with 20 initial files, 5 training iterations and 100
snapshots, the generated trace contains on the order of 940 ADDs, 72
UPDATEs and 228 REMOVEs (≈9.4 new files per snapshot; per-file
per-snapshot modify ≈ 0.002 and delete ≈ 0.006 over an average live
population of ≈375 files).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

STATE_NEW = "N"
STATE_MODIFIED = "M"
STATE_UNMODIFIED = "U"
STATE_DELETED = "D"

STATES = (STATE_NEW, STATE_MODIFIED, STATE_UNMODIFIED, STATE_DELETED)

#: Per-file transition probabilities calibrated to the paper's trace
#: statistics (rows sum to 1; D is absorbing).  A freshly created (N) or
#: freshly modified (M) file is slightly "hotter" than an old unmodified
#: one, following the observation in [16] that updated files tend to be
#: read/changed sooner rather than later.
HOMES_TRANSITIONS: Dict[str, Dict[str, float]] = {
    STATE_NEW: {
        STATE_UNMODIFIED: 0.984,
        STATE_MODIFIED: 0.006,
        STATE_DELETED: 0.010,
    },
    STATE_MODIFIED: {
        STATE_UNMODIFIED: 0.986,
        STATE_MODIFIED: 0.006,
        STATE_DELETED: 0.008,
    },
    STATE_UNMODIFIED: {
        STATE_UNMODIFIED: 0.9933,
        STATE_MODIFIED: 0.0019,
        STATE_DELETED: 0.0048,
    },
    STATE_DELETED: {STATE_DELETED: 1.0},
}

#: Mean number of new files arriving per snapshot (calibrated so the full
#: trace, including the seed population, totals ≈940 ADDs).
HOMES_ARRIVALS_PER_SNAPSHOT = 8.8


@dataclass
class FileState:
    """Trajectory bookkeeping for one file in the model."""

    path: str
    state: str
    versions: int = 1


class FileStateMarkov:
    """Evolves a population of files through the N/M/U/D state machine."""

    def __init__(
        self,
        transitions: Optional[Dict[str, Dict[str, float]]] = None,
        arrivals_per_snapshot: float = HOMES_ARRIVALS_PER_SNAPSHOT,
        rng: Optional[random.Random] = None,
    ):
        self.transitions = transitions if transitions is not None else HOMES_TRANSITIONS
        self._validate(self.transitions)
        self.arrivals_per_snapshot = arrivals_per_snapshot
        self._rng = rng if rng is not None else random.Random(23)
        self.files: Dict[str, FileState] = {}
        self._counter = 0

    @staticmethod
    def _validate(transitions: Dict[str, Dict[str, float]]) -> None:
        for state, row in transitions.items():
            if state not in STATES:
                raise ValueError(f"unknown state {state!r}")
            total = sum(row.values())
            if abs(total - 1.0) > 1e-9:
                raise ValueError(f"row {state!r} sums to {total}, expected 1.0")
            for target in row:
                if target not in STATES:
                    raise ValueError(f"unknown target state {target!r}")

    # -- population management --------------------------------------------------

    def seed_files(self, count: int) -> List[str]:
        """Create the initial population (state N)."""
        return [self._create_file() for _ in range(count)]

    def _create_file(self) -> str:
        self._counter += 1
        path = f"file_{self._counter:05d}.dat"
        self.files[path] = FileState(path=path, state=STATE_NEW)
        return path

    def _sample_next(self, state: str) -> str:
        row = self.transitions[state]
        roll = self._rng.random()
        cumulative = 0.0
        for target, probability in row.items():
            cumulative += probability
            if roll < cumulative:
                return target
        return list(row)[-1]

    def _sample_arrivals(self) -> int:
        """Poisson(arrivals_per_snapshot) via Knuth's method (small λ)."""
        lam = self.arrivals_per_snapshot
        if lam <= 0:
            return 0
        limit = pow(2.718281828459045, -lam)
        count = 0
        product = self._rng.random()
        while product > limit:
            count += 1
            product *= self._rng.random()
        return count

    # -- evolution ------------------------------------------------------------------

    def step(self) -> Dict[str, List[str]]:
        """Advance one snapshot; returns {"added": [...], "modified": [...],
        "deleted": [...]} path lists."""
        added: List[str] = []
        modified: List[str] = []
        deleted: List[str] = []

        for file in list(self.files.values()):
            next_state = self._sample_next(file.state)
            if next_state == STATE_DELETED:
                deleted.append(file.path)
                del self.files[file.path]
            else:
                if next_state == STATE_MODIFIED:
                    modified.append(file.path)
                    file.versions += 1
                file.state = next_state

        for _ in range(self._sample_arrivals()):
            added.append(self._create_file())

        return {"added": added, "modified": modified, "deleted": deleted}

    @property
    def live_count(self) -> int:
        return len(self.files)
