"""Workload generation: Markov file traces (§5.2.1) and UB1 arrivals (§5.3.1)."""

from repro.workload.content import ContentStore, generate_content
from repro.workload.filesizes import (
    FileSizeSampler,
    PAPER_MEAN_SIZE,
    PAPER_P90_BOUND,
    empirical_cdf,
)
from repro.workload.markov import (
    FileStateMarkov,
    HOMES_ARRIVALS_PER_SNAPSHOT,
    HOMES_TRANSITIONS,
    STATE_DELETED,
    STATE_MODIFIED,
    STATE_NEW,
    STATE_UNMODIFIED,
)
from repro.workload.modifications import (
    HOMES_PATTERN_PROBABILITIES,
    MODIFICATION_SIZE_LIMIT,
    ModificationEngine,
)
from repro.workload.trace import (
    OP_ADD,
    OP_REMOVE,
    OP_UPDATE,
    PAPER_INITIAL_FILES,
    PAPER_SNAPSHOTS,
    PAPER_TRAINING_ITERATIONS,
    Trace,
    TraceGenerator,
    TraceOp,
    TraceReplayer,
)
from repro.workload.ubuntuone import (
    PAPER_PEAK_PER_MINUTE,
    UB1Config,
    UbuntuOneTraceGenerator,
)

__all__ = [
    "HOMES_ARRIVALS_PER_SNAPSHOT",
    "HOMES_PATTERN_PROBABILITIES",
    "HOMES_TRANSITIONS",
    "MODIFICATION_SIZE_LIMIT",
    "OP_ADD",
    "OP_REMOVE",
    "OP_UPDATE",
    "PAPER_INITIAL_FILES",
    "PAPER_MEAN_SIZE",
    "PAPER_P90_BOUND",
    "PAPER_PEAK_PER_MINUTE",
    "PAPER_SNAPSHOTS",
    "PAPER_TRAINING_ITERATIONS",
    "STATE_DELETED",
    "STATE_MODIFIED",
    "STATE_NEW",
    "STATE_UNMODIFIED",
    "ContentStore",
    "FileSizeSampler",
    "FileStateMarkov",
    "ModificationEngine",
    "Trace",
    "TraceGenerator",
    "TraceOp",
    "TraceReplayer",
    "UB1Config",
    "UbuntuOneTraceGenerator",
    "empirical_cdf",
    "generate_content",
]
