"""Workspace-to-shard routing for the partitioned metadata plane.

A :class:`ShardRouter` deterministically maps a routing key (normally a
``workspace_id``) onto one of N shards through the shared
:class:`~repro.routing.ring.HashRing`.  Every layer that must agree on
the mapping — clients publishing commits, the
:class:`~repro.metadata.sharded.ShardedMetadataBackend` choosing an
engine, the per-shard Supervisors — holds a router with the same shard
count and therefore computes the same shard for the same key, with no
coordination and no registry lookups (the ring hash is deterministic
across processes).

Keys hash uniformly, so adding shards re-routes only ~1/N of the key
space (the ring's minimal-movement property) — the lever a live
rebalance (:meth:`ShardedMetadataBackend.migrate_workspace`) exploits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.routing.ring import HashRing


class ShardRouter:
    """Consistent-hash mapping of routing keys onto ``num_shards`` shards."""

    def __init__(self, num_shards: int, power: int = 8):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.num_shards = num_shards
        self._ring = HashRing(
            [self.shard_name(k) for k in range(num_shards)],
            replicas=1,
            power=power,
        )
        # key -> shard memo.  The router's ring is fixed at construction
        # (shard count never changes on a live router), so entries never
        # go stale; the cap only bounds memory on adversarial key sets.
        # Plain dict ops are atomic under CPython — no lock, a racing
        # recompute just stores the same value twice.
        self._memo: Dict[str, int] = {}
        self._memo_cap = 65536

    @staticmethod
    def shard_name(shard: int) -> str:
        return f"shard.{shard}"

    def shard_for(self, key: str) -> int:
        """The shard index in ``[0, num_shards)`` owning *key*."""
        key = str(key)
        shard = self._memo.get(key)
        if shard is None:
            name = self._ring.primary_for(key)
            shard = int(name.rsplit(".", 1)[1])
            if len(self._memo) >= self._memo_cap:
                self._memo.clear()
            self._memo[key] = shard
        return shard

    def shards(self) -> List[int]:
        return list(range(self.num_shards))

    def group_by_shard(self, keys: Iterable[str]) -> Dict[int, List[str]]:
        """Partition *keys* by owning shard (insertion order preserved)."""
        groups: Dict[int, List[str]] = {}
        for key in keys:
            groups.setdefault(self.shard_for(key), []).append(key)
        return groups

    def load_distribution(self, keys: Iterable[str]) -> Dict[int, int]:
        """Count of keys per shard — for balance checks and tests."""
        counts = {shard: 0 for shard in range(self.num_shards)}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __repr__(self) -> str:
        return f"<ShardRouter shards={self.num_shards}>"
