"""Shared consistent-hash routing primitives.

One tested ring serves both placement problems in the stack:

* **chunk placement** — :class:`~repro.storage.object_store.SwiftLikeStore`
  maps chunk fingerprints onto storage devices (the Swift ring role);
* **metadata sharding** — :class:`ShardRouter` maps ``workspace_id`` onto
  one of N metadata shards, the partitioned commit path that lets the
  SyncService pool scale past a single back-end.

:mod:`repro.storage.ring` re-exports :class:`HashRing` from here for
backwards compatibility.
"""

from repro.routing.ring import HashRing
from repro.routing.shard import ShardRouter

__all__ = ["HashRing", "ShardRouter"]
