"""Consistent-hash ring with virtual partitions (the Swift ring).

OpenStack Swift places objects on storage nodes using a partitioned
consistent-hash ring with replicas.  We reproduce the essentials: a ring
of 2^power partitions, each mapped to *replicas* distinct devices, with
stable assignment under device addition/removal (only ~1/N of partitions
move).  The same ring routes metadata shards (see
:class:`repro.routing.shard.ShardRouter`), so object-store placement and
metadata sharding share one tested implementation.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence


def _hash_to_int(value: str) -> int:
    return int.from_bytes(hashlib.md5(value.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A Swift-style partition ring with virtual nodes."""

    def __init__(self, devices: Sequence[str], replicas: int = 3, power: int = 8):
        """
        Args:
            devices: Names of the storage devices (nodes).
            replicas: How many distinct devices store each partition.
            power: The ring has 2**power partitions.
        """
        if not devices:
            raise ValueError("ring needs at least one device")
        self.partition_count = 2**power
        self.replicas = min(replicas, len(devices))
        self.devices: List[str] = list(dict.fromkeys(devices))
        self._assignments: List[List[str]] = []
        self._rebuild()

    def _rebuild(self) -> None:
        """Assign each partition its replica devices by rendezvous hashing.

        Rendezvous (highest-random-weight) hashing gives the minimal-
        movement property without maintaining an explicit virtual-node
        ring, and is deterministic across processes.
        """
        self._assignments = []
        for partition in range(self.partition_count):
            scored = sorted(
                self.devices,
                key=lambda dev: _hash_to_int(f"{partition}:{dev}"),
                reverse=True,
            )
            self._assignments.append(scored[: self.replicas])

    def partition_for(self, key: str) -> int:
        return _hash_to_int(key) % self.partition_count

    def devices_for(self, key: str) -> List[str]:
        """The replica devices responsible for *key* (primary first)."""
        return list(self._assignments[self.partition_for(key)])

    def primary_for(self, key: str) -> str:
        return self._assignments[self.partition_for(key)][0]

    def add_device(self, device: str) -> None:
        if device in self.devices:
            return
        self.devices.append(device)
        self.replicas = min(max(self.replicas, 1), len(self.devices))
        self._rebuild()

    def remove_device(self, device: str) -> None:
        if device not in self.devices:
            return
        if len(self.devices) == 1:
            raise ValueError("cannot remove the last device")
        self.devices.remove(device)
        self.replicas = min(self.replicas, len(self.devices))
        self._rebuild()

    def load_distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """Count of primary assignments per device over *keys*."""
        counts: Dict[str, int] = {dev: 0 for dev in self.devices}
        for key in keys:
            counts[self.primary_for(key)] += 1
        return counts
