"""The SyncService: server-side commit processing (§4.2, Algorithm 1).

The service is *stateless* — every piece of durable state lives in the
Metadata back-end — so any number of instances can consume the shared
request queue, which is what makes the pool elastic.  Consistency comes
from the back-end's ACID version check: the first commitRequest processed
for a given version wins, the second aborts and is reported back as a
conflict with the winning metadata piggybacked (first-writer-wins, no
rollbacks).
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
import uuid
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import UnknownWorkspace
from repro.objectmq.broker import Broker
from repro.telemetry.control import HEALTH
from repro.telemetry.registry import REGISTRY
from repro.telemetry.trace import TRACER

if TYPE_CHECKING:  # avoid a circular import: metadata.base imports sync.models
    from repro.metadata.base import MetadataBackend
from repro.objectmq.introspection import HasObjectInfo
from repro.sync.interface import RemoteWorkspaceApi, workspace_oid
from repro.sync.models import (
    STATUS_NEW,
    CommitNotification,
    CommitResult,
    ItemMetadata,
    Workspace,
)

logger = logging.getLogger(__name__)


class SyncService(HasObjectInfo):
    """One SyncService instance (bind many of these under one oid).

    Args:
        metadata: The Metadata back-end (shared by all instances).
        broker: ObjectMQ broker used to push ``notifyCommit`` fanouts.
        service_delay: Optional callable returning seconds of artificial
            processing time per commit — used by elasticity experiments to
            impose the paper's measured 50 ms mean service time.
        workspace_proxy_cache_size: Maximum notification proxies kept
            alive; least-recently-used entries are evicted beyond it.
            A service instance commits for every workspace hashed to its
            queue, so the cache must not grow with the workspace
            population.
    """

    #: Monotonic source for health-probe names.  ``id(self)`` is NOT a
    #: stable identity: CPython reuses addresses after garbage collection,
    #: so a respawned instance could silently replace the registry entry
    #: of a dead sibling that had not been swept yet.
    _probe_seq = itertools.count(1)

    def __init__(
        self,
        metadata: "MetadataBackend",
        broker: Broker,
        service_delay: Optional[Callable[[], float]] = None,
        workspace_proxy_cache_size: int = 1024,
    ):
        self.metadata = metadata
        self.broker = broker
        self.service_delay = service_delay
        self._lock = threading.Lock()
        if workspace_proxy_cache_size < 1:
            raise ValueError("workspace_proxy_cache_size must be >= 1")
        self._workspace_proxy_cache_size = workspace_proxy_cache_size
        self._workspace_proxies: "OrderedDict[str, object]" = OrderedDict()
        self._proxy_cache_hits = 0
        self._proxy_cache_misses = 0
        self._proxy_cache_evictions = 0
        self.commit_count = 0
        self.conflict_count = 0
        self.health_probe_name = f"sync:{next(SyncService._probe_seq)}"
        HEALTH.register(self.health_probe_name, self, SyncService._health_probe)
        REGISTRY.register_source(
            "sync_workspace_proxy_cache",
            self,
            SyncService._proxy_cache_scrape,
            instance=self.health_probe_name,
        )

    def _health_probe(self) -> Dict[str, object]:
        """Ops-endpoint probe: the service is wired and processing commits."""
        return {
            "ok": True,
            "commits": self.commit_count,
            "conflicts": self.conflict_count,
        }

    def _proxy_cache_scrape(self) -> Dict[str, float]:
        """Registry-source view of the notification-proxy cache."""
        with self._lock:
            return {
                "size": float(len(self._workspace_proxies)),
                "capacity": float(self._workspace_proxy_cache_size),
                "hits": float(self._proxy_cache_hits),
                "misses": float(self._proxy_cache_misses),
                "evictions": float(self._proxy_cache_evictions),
            }

    # -- SyncServiceApi implementation --------------------------------------------

    def get_workspaces(self, user_id: str) -> List[Workspace]:
        return self.metadata.workspaces_for(user_id)

    def get_changes(self, workspace_id: str) -> List[ItemMetadata]:
        return self.metadata.get_workspace_state(workspace_id)

    def commit_request(
        self,
        workspace_id: str,
        device_id: str,
        objects_changed: List[ItemMetadata],
        request_id: str = "",
    ) -> None:
        """Algorithm 1 of the paper, one list of proposed changes."""
        with TRACER.span(
            "sync.commit_request",
            layer="sync",
            attrs={"workspace": workspace_id, "proposals": len(objects_changed)},
        ):
            if self.service_delay is not None:
                delay = self.service_delay()
                if delay > 0:
                    time.sleep(delay)
            if not self.metadata.workspace_exists(workspace_id):
                raise UnknownWorkspace(f"workspace {workspace_id!r} is not registered")

            # The whole bundle commits in one back-end transaction; conflicts
            # stay per item (first-writer-wins, winner piggybacked).
            outcomes = self.metadata.store_versions_bulk(objects_changed)
            conflicts = 0
            for new_object, (confirmed, current) in zip(objects_changed, outcomes):
                if not confirmed:
                    conflicts += 1
                    logger.debug(
                        "conflict on %s: proposed v%d, current v%s",
                        new_object.item_id,
                        new_object.version,
                        getattr(current, "version", None),
                    )

            with self._lock:
                self.commit_count += 1
                self.conflict_count += conflicts

            if not self.broker.multicast_has_listeners(workspace_oid(workspace_id)):
                # No device is bound to the workspace fanout: skip the
                # notification proxy, the per-item CommitResult envelopes,
                # and the notification itself (the multicast would be a
                # no-op anyway).  The probe is a lock-free exchange
                # lookup, so quiet workspaces never pay notification
                # plumbing at all.
                return
            results: List[CommitResult] = [
                CommitResult(metadata=new_object, confirmed=confirmed, current=current)
                for new_object, (confirmed, current) in zip(objects_changed, outcomes)
            ]
            workspace_proxy = self._workspace(workspace_id)
            notification = CommitNotification(
                workspace_id=workspace_id,
                source_device=device_id,
                results=results,
                committed_at=time.time(),
                request_id=request_id or uuid.uuid4().hex,
            )
            with TRACER.span("sync.notify_commit", layer="sync"):
                workspace_proxy.notify_commit(notification)

    def create_workspace(
        self, workspace_id: str, owner: str, name: str = ""
    ) -> Workspace:
        """Register a new workspace; idempotent for the same id/owner."""
        workspace = Workspace(workspace_id=workspace_id, owner=owner, name=name)
        self.metadata.create_workspace(workspace)
        return workspace

    def share_workspace(self, workspace_id: str, user_id: str) -> bool:
        """The sharing service: grant *user_id* access to the workspace.

        After the grant the user's devices can ``get_changes`` on the
        workspace and bind to its notification fanout like any owner
        device.
        """
        self.metadata.grant_access(workspace_id, user_id)
        return True

    def register_device(self, user_id: str, device_id: str, name: str = "") -> bool:
        """Record a device in the user's device registry (idempotent)."""
        self.metadata.register_device(user_id, device_id, name)
        return True

    # -- internals -------------------------------------------------------------------

    def _workspace(self, workspace_id: str):
        """LRU-cached proxy for the workspace's notification fanout."""
        with self._lock:
            proxy = self._workspace_proxies.get(workspace_id)
            if proxy is not None:
                self._proxy_cache_hits += 1
                self._workspace_proxies.move_to_end(workspace_id)
                return proxy
            self._proxy_cache_misses += 1
        # Lookup outside the lock: proxy construction talks to the MOM
        # (declares the fanout exchange) and must not serialize commits.
        proxy = self.broker.lookup(workspace_oid(workspace_id), RemoteWorkspaceApi)
        with self._lock:
            existing = self._workspace_proxies.get(workspace_id)
            if existing is not None:
                return existing
            self._workspace_proxies[workspace_id] = proxy
            while len(self._workspace_proxies) > self._workspace_proxy_cache_size:
                self._workspace_proxies.popitem(last=False)
                self._proxy_cache_evictions += 1
            return proxy


def sync_service_factory(
    metadata: "MetadataBackend",
    broker: Broker,
    service_delay: Optional[Callable[[], float]] = None,
) -> Callable[[], SyncService]:
    """Factory suitable for RemoteBroker.register_factory (elastic spawn)."""

    def build() -> SyncService:
        return SyncService(metadata, broker, service_delay=service_delay)

    return build
