"""The SyncService: server-side commit processing (§4.2, Algorithm 1).

The service is *stateless* — every piece of durable state lives in the
Metadata back-end — so any number of instances can consume the shared
request queue, which is what makes the pool elastic.  Consistency comes
from the back-end's ACID version check: the first commitRequest processed
for a given version wins, the second aborts and is reported back as a
conflict with the winning metadata piggybacked (first-writer-wins, no
rollbacks).
"""

from __future__ import annotations

import logging
import threading
import time
import uuid
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.errors import UnknownWorkspace
from repro.objectmq.broker import Broker
from repro.telemetry.control import HEALTH
from repro.telemetry.trace import TRACER

if TYPE_CHECKING:  # avoid a circular import: metadata.base imports sync.models
    from repro.metadata.base import MetadataBackend
from repro.objectmq.introspection import HasObjectInfo
from repro.sync.interface import RemoteWorkspaceApi, workspace_oid
from repro.sync.models import (
    STATUS_NEW,
    CommitNotification,
    CommitResult,
    ItemMetadata,
    Workspace,
)

logger = logging.getLogger(__name__)


class SyncService(HasObjectInfo):
    """One SyncService instance (bind many of these under one oid).

    Args:
        metadata: The Metadata back-end (shared by all instances).
        broker: ObjectMQ broker used to push ``notifyCommit`` fanouts.
        service_delay: Optional callable returning seconds of artificial
            processing time per commit — used by elasticity experiments to
            impose the paper's measured 50 ms mean service time.
    """

    def __init__(
        self,
        metadata: "MetadataBackend",
        broker: Broker,
        service_delay: Optional[Callable[[], float]] = None,
    ):
        self.metadata = metadata
        self.broker = broker
        self.service_delay = service_delay
        self._lock = threading.Lock()
        self._workspace_proxies: Dict[str, object] = {}
        self.commit_count = 0
        self.conflict_count = 0
        HEALTH.register(f"sync:{id(self):x}", self, SyncService._health_probe)

    def _health_probe(self) -> Dict[str, object]:
        """Ops-endpoint probe: the service is wired and processing commits."""
        return {
            "ok": True,
            "commits": self.commit_count,
            "conflicts": self.conflict_count,
        }

    # -- SyncServiceApi implementation --------------------------------------------

    def get_workspaces(self, user_id: str) -> List[Workspace]:
        return self.metadata.workspaces_for(user_id)

    def get_changes(self, workspace_id: str) -> List[ItemMetadata]:
        return self.metadata.get_workspace_state(workspace_id)

    def commit_request(
        self,
        workspace_id: str,
        device_id: str,
        objects_changed: List[ItemMetadata],
        request_id: str = "",
    ) -> None:
        """Algorithm 1 of the paper, one list of proposed changes."""
        with TRACER.span(
            "sync.commit_request",
            layer="sync",
            attrs={"workspace": workspace_id, "proposals": len(objects_changed)},
        ):
            if self.service_delay is not None:
                delay = self.service_delay()
                if delay > 0:
                    time.sleep(delay)
            if not self.metadata.workspace_exists(workspace_id):
                raise UnknownWorkspace(f"workspace {workspace_id!r} is not registered")

            # The whole bundle commits in one back-end transaction; conflicts
            # stay per item (first-writer-wins, winner piggybacked).
            outcomes = self.metadata.store_versions_bulk(objects_changed)
            results: List[CommitResult] = []
            for new_object, (confirmed, current) in zip(objects_changed, outcomes):
                if not confirmed:
                    logger.debug(
                        "conflict on %s: proposed v%d, current v%s",
                        new_object.item_id,
                        new_object.version,
                        getattr(current, "version", None),
                    )
                results.append(
                    CommitResult(
                        metadata=new_object, confirmed=confirmed, current=current
                    )
                )

            with self._lock:
                self.commit_count += 1
                self.conflict_count += sum(1 for r in results if not r.confirmed)

            notification = CommitNotification(
                workspace_id=workspace_id,
                source_device=device_id,
                results=results,
                committed_at=time.time(),
                request_id=request_id or uuid.uuid4().hex,
            )
            with TRACER.span("sync.notify_commit", layer="sync"):
                self._workspace(workspace_id).notify_commit(notification)

    def create_workspace(
        self, workspace_id: str, owner: str, name: str = ""
    ) -> Workspace:
        """Register a new workspace; idempotent for the same id/owner."""
        workspace = Workspace(workspace_id=workspace_id, owner=owner, name=name)
        self.metadata.create_workspace(workspace)
        return workspace

    def share_workspace(self, workspace_id: str, user_id: str) -> bool:
        """The sharing service: grant *user_id* access to the workspace.

        After the grant the user's devices can ``get_changes`` on the
        workspace and bind to its notification fanout like any owner
        device.
        """
        self.metadata.grant_access(workspace_id, user_id)
        return True

    def register_device(self, user_id: str, device_id: str, name: str = "") -> bool:
        """Record a device in the user's device registry (idempotent)."""
        self.metadata.register_device(user_id, device_id, name)
        return True

    # -- internals -------------------------------------------------------------------

    def _workspace(self, workspace_id: str):
        with self._lock:
            proxy = self._workspace_proxies.get(workspace_id)
            if proxy is None:
                proxy = self.broker.lookup(workspace_oid(workspace_id), RemoteWorkspaceApi)
                self._workspace_proxies[workspace_id] = proxy
            return proxy


def sync_service_factory(
    metadata: "MetadataBackend",
    broker: Broker,
    service_delay: Optional[Callable[[], float]] = None,
) -> Callable[[], SyncService]:
    """Factory suitable for RemoteBroker.register_factory (elastic spawn)."""

    def build() -> SyncService:
        return SyncService(metadata, broker, service_delay=service_delay)

    return build
