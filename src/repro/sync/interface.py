"""Remote interfaces of the StackSync protocol — the paper's Fig 6.

The SyncService interface exposes exactly the three operations of the
paper (``getWorkspaces``, ``getChanges``, ``commitRequest``) with the same
invocation semantics and the same retry/timeout configuration; the
RemoteWorkspace interface carries the one-to-many ``notifyCommit`` push.
"""

from __future__ import annotations

from typing import List

from repro.objectmq.annotations import (
    Remote,
    async_method,
    multi_method,
    remote_interface,
    sync_method,
)

#: Well-known oid the SyncService pool binds under.
SYNC_SERVICE_OID = "syncservice"

#: Prefetch window SyncService deployments bind with.  The service is
#: stateless and commit handling is short, so letting the MOM park a
#: run of requests in each instance's mailbox (filled in one batched
#: dispatch cycle, settled with one batched ack) amortizes the queue
#: lock without starving siblings.  Sized to the publish-buffer flush
#: batch: a whole client-side burst moves broker → consumer in one
#: dispatch round instead of dribbling through ack-at-a-time windows.
#: The cost is the standard AMQP trade — a wider redelivery window on
#: crash — which at-least-once semantics absorb; elasticity experiments
#: that depend on strict first-idle-instance balancing still pass
#: ``prefetch=1`` explicitly.
SYNC_SERVICE_PREFETCH = 64


def workspace_oid(workspace_id: str) -> str:
    """The oid whose fanout carries a workspace's commit notifications."""
    return f"workspace.{workspace_id}"


@remote_interface
class SyncServiceApi(Remote):
    """Client-to-server operations (Fig 6, upper interface)."""

    @sync_method(retry=5, timeout=1.5)
    def get_workspaces(self, user_id: str) -> List:
        """Workspaces the user may access; called once at startup."""
        raise NotImplementedError

    @sync_method(retry=5, timeout=1.5)
    def get_changes(self, workspace_id: str) -> List:
        """Full current state of a workspace; costly, startup-only."""
        raise NotImplementedError

    @async_method
    def commit_request(
        self,
        workspace_id: str,
        device_id: str,
        objects_changed: List,
        request_id: str = "",
    ) -> None:
        """Propose a list of metadata changes (Algorithm 1); fire-and-forget."""
        raise NotImplementedError

    @sync_method(retry=5, timeout=1.5)
    def create_workspace(self, workspace_id: str, owner: str, name: str = ""):
        """Register a new workspace owned by *owner*; returns it."""
        raise NotImplementedError

    @sync_method(retry=5, timeout=1.5)
    def share_workspace(self, workspace_id: str, user_id: str) -> bool:
        """Grant *user_id* access to the workspace (the sharing service)."""
        raise NotImplementedError

    @sync_method(retry=5, timeout=1.5)
    def register_device(self, user_id: str, device_id: str, name: str = "") -> bool:
        """Record the calling device; invoked once at client startup."""
        raise NotImplementedError


@remote_interface
class RemoteWorkspaceApi(Remote):
    """Server-to-clients push channel (Fig 6, lower interface)."""

    @multi_method
    @async_method
    def notify_commit(self, notification) -> None:
        """Pushed to every device bound to the workspace after a commit."""
        raise NotImplementedError
