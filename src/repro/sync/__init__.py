"""StackSync synchronization protocol: models, interfaces, SyncService."""

from repro.sync.auth import (
    AuthService,
    AuthToken,
    AuthenticatedStore,
    sync_auth_interceptor,
)
from repro.sync.interface import (
    RemoteWorkspaceApi,
    SYNC_SERVICE_OID,
    SYNC_SERVICE_PREFETCH,
    SyncServiceApi,
    workspace_oid,
)
from repro.sync.models import (
    STATUS_CHANGED,
    STATUS_DELETED,
    STATUS_NEW,
    CommitNotification,
    CommitResult,
    ItemMetadata,
    Workspace,
)
from repro.sync.service import SyncService, sync_service_factory

__all__ = [
    "AuthService",
    "AuthToken",
    "AuthenticatedStore",
    "STATUS_CHANGED",
    "STATUS_DELETED",
    "STATUS_NEW",
    "SYNC_SERVICE_OID",
    "SYNC_SERVICE_PREFETCH",
    "CommitNotification",
    "CommitResult",
    "ItemMetadata",
    "RemoteWorkspaceApi",
    "SyncService",
    "SyncServiceApi",
    "Workspace",
    "sync_auth_interceptor",
    "sync_service_factory",
    "workspace_oid",
]
