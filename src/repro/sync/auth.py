"""Authentication and authorization services (§4, §4.1).

The paper's architecture figure omits them "for clarity" but states that
the client "must be authenticated with both entities" — the SyncService
and the Storage back-end.  This module supplies both halves:

* :class:`AuthService` — account registry (salted PBKDF2 password
  hashes) issuing expiring bearer tokens;
* :func:`sync_auth_interceptor` — an ObjectMQ server interceptor that
  authenticates every SyncService call from the propagated call context
  and authorizes it against workspace ACLs in the metadata back-end;
* :class:`AuthenticatedStore` — a thin storage wrapper enforcing that a
  token's user only touches containers they own (the "digital locker").
"""

from __future__ import annotations

import hashlib
import hmac
import os
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import AuthenticationError, AuthorizationError
from repro.storage.object_store import SwiftLikeStore

if TYPE_CHECKING:  # avoid a circular import: metadata.base imports sync.models
    from repro.metadata.base import MetadataBackend

#: Default token lifetime, seconds.
DEFAULT_TOKEN_TTL = 3600.0
_PBKDF2_ITERATIONS = 10_000


@dataclass(frozen=True)
class AuthToken:
    """A bearer token bound to one user."""

    token: str
    user_id: str
    expires_at: float


class AuthService:
    """Password accounts + expiring bearer tokens."""

    def __init__(
        self,
        token_ttl: float = DEFAULT_TOKEN_TTL,
        clock: Callable[[], float] = time.time,
    ):
        self.token_ttl = token_ttl
        self.clock = clock
        self._lock = threading.Lock()
        self._accounts: Dict[str, tuple] = {}  # user -> (salt, hash)
        self._tokens: Dict[str, AuthToken] = {}

    # -- accounts -----------------------------------------------------------------

    @staticmethod
    def _hash(password: str, salt: bytes) -> bytes:
        return hashlib.pbkdf2_hmac(
            "sha256", password.encode("utf-8"), salt, _PBKDF2_ITERATIONS
        )

    def create_account(self, user_id: str, password: str) -> None:
        with self._lock:
            if user_id in self._accounts:
                raise AuthenticationError(f"account {user_id!r} already exists")
            salt = os.urandom(16)
            self._accounts[user_id] = (salt, self._hash(password, salt))

    def change_password(self, user_id: str, old: str, new: str) -> None:
        self._verify_password(user_id, old)
        with self._lock:
            salt = os.urandom(16)
            self._accounts[user_id] = (salt, self._hash(new, salt))
            # Password change invalidates outstanding sessions.
            self._tokens = {
                t: tok for t, tok in self._tokens.items() if tok.user_id != user_id
            }

    def _verify_password(self, user_id: str, password: str) -> None:
        with self._lock:
            entry = self._accounts.get(user_id)
        if entry is None:
            raise AuthenticationError(f"unknown account {user_id!r}")
        salt, expected = entry
        if not hmac.compare_digest(self._hash(password, salt), expected):
            raise AuthenticationError("bad credentials")

    # -- tokens --------------------------------------------------------------------

    def login(self, user_id: str, password: str) -> AuthToken:
        """Authenticate and issue a fresh bearer token."""
        self._verify_password(user_id, password)
        token = AuthToken(
            token=os.urandom(20).hex(),
            user_id=user_id,
            expires_at=self.clock() + self.token_ttl,
        )
        with self._lock:
            self._tokens[token.token] = token
        return token

    def validate(self, token: Optional[str]) -> str:
        """Return the user id behind *token*; raise if invalid/expired."""
        if not token:
            raise AuthenticationError("missing auth token")
        with self._lock:
            entry = self._tokens.get(token)
        if entry is None:
            raise AuthenticationError("unknown or revoked token")
        if entry.expires_at <= self.clock():
            with self._lock:
                self._tokens.pop(token, None)
            raise AuthenticationError("token expired")
        return entry.user_id

    def revoke(self, token: str) -> bool:
        with self._lock:
            return self._tokens.pop(token, None) is not None

    def active_sessions(self, user_id: str) -> int:
        now = self.clock()
        with self._lock:
            return sum(
                1
                for tok in self._tokens.values()
                if tok.user_id == user_id and tok.expires_at > now
            )


#: SyncService methods whose first argument is a workspace id.
_WORKSPACE_METHODS = {"get_changes", "commit_request"}


def sync_auth_interceptor(auth: AuthService, metadata: "MetadataBackend"):
    """Interceptor enforcing authentication + workspace ACLs.

    Plug into :meth:`repro.objectmq.Broker.bind`::

        broker.bind(SYNC_SERVICE_OID, service,
                    interceptors=[sync_auth_interceptor(auth, metadata)])

    Rules:

    * every call must carry a valid ``auth_token`` in its context;
    * ``get_workspaces(user_id)`` may only ask about the token's user;
    * workspace-scoped calls require the token's user to hold access to
      that workspace (owner or granted).
    """

    def interceptor(method: str, args, kwargs, context: dict) -> None:
        user = auth.validate(context.get("auth_token"))
        if method in ("get_workspaces", "register_device"):
            asked = args[0] if args else kwargs.get("user_id")
            if asked != user:
                raise AuthorizationError(
                    f"{user!r} may not act as {asked!r}"
                )
            return
        if method == "create_workspace":
            owner = args[1] if len(args) > 1 else kwargs.get("owner")
            if owner != user:
                raise AuthorizationError(
                    f"{user!r} may not create workspaces owned by {owner!r}"
                )
            return
        if method == "share_workspace":
            workspace_id = args[0] if args else kwargs.get("workspace_id")
            owns = any(
                w.workspace_id == workspace_id and w.owner == user
                for w in metadata.workspaces_for(user)
            )
            if not owns:
                raise AuthorizationError(
                    f"only the owner may share workspace {workspace_id!r}"
                )
            return
        if method in _WORKSPACE_METHODS:
            workspace_id = args[0] if args else kwargs.get("workspace_id")
            allowed = {
                w.workspace_id for w in metadata.workspaces_for(user)
            }
            if workspace_id not in allowed:
                raise AuthorizationError(
                    f"{user!r} has no access to workspace {workspace_id!r}"
                )

    return interceptor


class AuthenticatedStore:
    """Storage facade scoping a token to its own container.

    The client talks to the Storage back-end directly (decoupled data
    flow); this wrapper is the back-end-side check that the presented
    token only reaches the user's own digital locker.
    """

    def __init__(self, store: SwiftLikeStore, auth: AuthService):
        self._store = store
        self._auth = auth

    def _authorize(self, token: str, container: str) -> None:
        user = self._auth.validate(token)
        if container != f"u-{user}":
            raise AuthorizationError(
                f"{user!r} may not access container {container!r}"
            )

    def create_container(self, token: str, container: str) -> None:
        self._authorize(token, container)
        self._store.create_container(container)

    def put_object(self, token: str, container: str, name: str, data: bytes) -> None:
        self._authorize(token, container)
        self._store.put_object(container, name, data)

    def get_object(self, token: str, container: str, name: str) -> bytes:
        self._authorize(token, container)
        return self._store.get_object(container, name)

    def delete_object(self, token: str, container: str, name: str) -> bool:
        self._authorize(token, container)
        return self._store.delete_object(container, name)

    def head_object(self, token: str, container: str, name: str) -> bool:
        self._authorize(token, container)
        return self._store.head_object(container, name)
