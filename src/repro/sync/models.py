"""Domain model of the StackSync protocol (§4, Fig 6, Algorithm 1).

These are the DTOs crossing the ObjectMQ boundary between clients and the
SyncService: item metadata proposals, commit notifications, and workspace
descriptors.  Each registers with the serialization wire registry so the
JSON and binary codecs can carry them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.serialization.base import global_wire_registry

#: Item lifecycle states carried in commit proposals.
STATUS_NEW = "NEW"
STATUS_CHANGED = "CHANGED"
STATUS_DELETED = "DELETED"

VALID_STATUSES = (STATUS_NEW, STATUS_CHANGED, STATUS_DELETED)


@dataclass(frozen=True)
class Workspace:
    """A synced folder: the unit of sharing and of change notification."""

    workspace_id: str
    owner: str
    name: str = ""

    def to_wire(self) -> dict:
        return {
            "workspace_id": self.workspace_id,
            "owner": self.owner,
            "name": self.name,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "Workspace":
        return cls(**data)


@dataclass(frozen=True)
class ItemMetadata:
    """One version of one item (file or folder) in a workspace.

    ``version`` is the server-side monotonically increasing version
    number; a client proposing a change sends ``current version + 1``.
    ``chunks`` lists the SHA-1 fingerprints (hex) composing the file, in
    order — the Storage back-end is addressed purely by fingerprint.
    """

    item_id: str
    workspace_id: str
    version: int
    filename: str
    status: str = STATUS_NEW
    is_folder: bool = False
    size: int = 0
    checksum: str = ""
    chunks: List[str] = field(default_factory=list)
    modified_at: float = 0.0
    device_id: str = ""

    def __post_init__(self) -> None:
        if self.status not in VALID_STATUSES:
            raise ValueError(f"invalid status {self.status!r}")
        if self.version < 1:
            raise ValueError("version numbers start at 1")

    def with_version(self, version: int, status: Optional[str] = None) -> "ItemMetadata":
        return replace(self, version=version, status=status or self.status)

    def to_wire(self) -> dict:
        return {
            "item_id": self.item_id,
            "workspace_id": self.workspace_id,
            "version": self.version,
            "filename": self.filename,
            "status": self.status,
            "is_folder": self.is_folder,
            "size": self.size,
            "checksum": self.checksum,
            "chunks": list(self.chunks),
            "modified_at": self.modified_at,
            "device_id": self.device_id,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "ItemMetadata":
        return cls(**data)


@dataclass(frozen=True)
class CommitResult:
    """Per-item outcome inside a CommitNotification (Algorithm 1).

    When ``confirmed`` is False, ``current`` piggybacks the winning
    server-side version so the losing client can diff chunk lists and
    reconstruct the up-to-date file without another round trip.
    """

    metadata: ItemMetadata
    confirmed: bool
    current: Optional[ItemMetadata] = None

    def to_wire(self) -> dict:
        return {
            "metadata": self.metadata.to_wire(),
            "confirmed": self.confirmed,
            "current": self.current.to_wire() if self.current else None,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "CommitResult":
        return cls(
            metadata=_as_item(data["metadata"]),
            confirmed=data["confirmed"],
            current=_as_item(data["current"]) if data.get("current") else None,
        )


@dataclass(frozen=True)
class CommitNotification:
    """The multicast payload of ``notifyCommit`` (one per commitRequest)."""

    workspace_id: str
    source_device: str
    results: List[CommitResult] = field(default_factory=list)
    committed_at: float = field(default_factory=time.time)
    request_id: str = ""

    @property
    def confirmed(self) -> List[CommitResult]:
        return [r for r in self.results if r.confirmed]

    @property
    def conflicts(self) -> List[CommitResult]:
        return [r for r in self.results if not r.confirmed]

    def to_wire(self) -> dict:
        return {
            "workspace_id": self.workspace_id,
            "source_device": self.source_device,
            "results": [r.to_wire() for r in self.results],
            "committed_at": self.committed_at,
            "request_id": self.request_id,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "CommitNotification":
        return cls(
            workspace_id=data["workspace_id"],
            source_device=data["source_device"],
            results=[_as_result(r) for r in data["results"]],
            committed_at=data["committed_at"],
            request_id=data.get("request_id", ""),
        )


def _as_item(data) -> ItemMetadata:
    return data if isinstance(data, ItemMetadata) else ItemMetadata.from_wire(data)


def _as_result(data) -> CommitResult:
    return data if isinstance(data, CommitResult) else CommitResult.from_wire(data)


# Register the DTOs with the global wire registry so the JSON/binary codecs
# can transport them transparently.
global_wire_registry.register(
    Workspace, "stacksync.Workspace", Workspace.to_wire, Workspace.from_wire
)
global_wire_registry.register(
    ItemMetadata, "stacksync.ItemMetadata", ItemMetadata.to_wire, ItemMetadata.from_wire
)
global_wire_registry.register(
    CommitResult, "stacksync.CommitResult", CommitResult.to_wire, CommitResult.from_wire
)
global_wire_registry.register(
    CommitNotification,
    "stacksync.CommitNotification",
    CommitNotification.to_wire,
    CommitNotification.from_wire,
)
