"""Deprecated location of :class:`HashRing` — use :mod:`repro.routing`.

The consistent-hash ring started life here as a storage-only concern
(chunk placement on the Swift-like store).  The metadata plane now shards
by the same mechanism, so the implementation moved to
:mod:`repro.routing.ring` where both layers share one tested ring.  This
module remains as a compatibility re-export; new code should import from
:mod:`repro.routing`.
"""

from __future__ import annotations

from repro.routing.ring import HashRing, _hash_to_int  # noqa: F401

__all__ = ["HashRing"]
