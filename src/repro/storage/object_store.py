"""Swift-like object storage: proxy node + storage nodes + ring (§5.1).

The StackSync client addresses the Storage back-end with a narrow
container/object API: PUT/GET/DELETE/HEAD of immutable compressed chunks
keyed by fingerprint.  The testbed of the paper was one Swift proxy in
front of 4 storage nodes; :class:`SwiftLikeStore` mirrors that topology —
a proxy that consults the :class:`~repro.storage.ring.HashRing`, writes
all replicas, reads from the primary (falling over to replicas), and
charges every hop to a :class:`~repro.storage.latency.LatencyModel`.

Traffic accounting (``bytes_in`` / ``bytes_out``) is what the Fig 7
overhead experiments measure as *storage traffic*.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ObjectNotFound, StorageError
from repro.storage.latency import LatencyModel, LatencyProfile, ZERO_PROFILE
from repro.storage.ring import HashRing
from repro.telemetry.control import HEALTH
from repro.telemetry.registry import REGISTRY


@dataclass
class StorageNode:
    """One storage device: a flat object namespace with usage counters.

    Nodes are hit concurrently by the client-side transfer pools, so every
    access to the object map happens under a per-node lock; the proxy's
    latency charges stay outside it, which is what lets parallel transfers
    overlap their simulated wire time.
    """

    name: str
    objects: Dict[str, bytes] = field(default_factory=dict)
    failed: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def put(self, key: str, data: bytes) -> None:
        if self.failed:
            raise StorageError(f"storage node {self.name} is down")
        with self._lock:
            self.objects[key] = data

    def get(self, key: str) -> bytes:
        if self.failed:
            raise StorageError(f"storage node {self.name} is down")
        with self._lock:
            try:
                return self.objects[key]
            except KeyError:
                raise ObjectNotFound(key) from None

    def delete(self, key: str) -> bool:
        if self.failed:
            raise StorageError(f"storage node {self.name} is down")
        with self._lock:
            return self.objects.pop(key, None) is not None

    def has(self, key: str) -> bool:
        with self._lock:
            return not self.failed and key in self.objects

    def keys(self) -> List[str]:
        """Stable snapshot of the stored keys (safe under concurrent puts)."""
        with self._lock:
            return list(self.objects)

    def size_of(self, key: str) -> Optional[int]:
        if self.failed:
            return None
        with self._lock:
            data = self.objects.get(key)
            return len(data) if data is not None else None

    @property
    def used_bytes(self) -> int:
        with self._lock:
            return sum(len(v) for v in self.objects.values())


class SwiftLikeStore:
    """Proxy-fronted replicated object store.

    Keys are namespaced per container (``container/name``), matching the
    per-user "digital locker" model of the paper: each StackSync user owns
    a container and deduplication never crosses containers.
    """

    def __init__(
        self,
        node_count: int = 4,
        replicas: int = 2,
        latency: Optional[LatencyModel] = None,
    ):
        if node_count < 1:
            raise ValueError("need at least one storage node")
        self.nodes: Dict[str, StorageNode] = {
            f"storage-{i}": StorageNode(f"storage-{i}") for i in range(node_count)
        }
        self.ring = HashRing(list(self.nodes), replicas=replicas)
        self.latency = latency if latency is not None else LatencyModel(
            profile=ZERO_PROFILE, sleep=False
        )
        self._lock = threading.Lock()
        self._containers: Set[str] = set()
        self._put_times: Dict[str, float] = {}
        self.bytes_in = 0
        self.bytes_out = 0
        self.put_count = 0
        self.get_count = 0
        REGISTRY.register_source(
            "storage_proxy",
            self,
            SwiftLikeStore.scrape,
            nodes=node_count,
            replicas=replicas,
        )
        HEALTH.register("storage:proxy", self, SwiftLikeStore._health_probe)

    def _health_probe(self) -> Dict[str, object]:
        """Ops-endpoint probe: at least one storage node is reachable."""
        failed = sum(1 for node in self.nodes.values() if node.failed)
        total = len(self.nodes)
        return {"ok": failed < total, "nodes": total, "failed_nodes": failed}

    def scrape(self) -> Dict[str, int]:
        """Registry-source view of the proxy's traffic accounting."""
        with self._lock:
            return {
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "put_count": self.put_count,
                "get_count": self.get_count,
            }

    # -- containers -----------------------------------------------------------------

    def create_container(self, container: str) -> None:
        with self._lock:
            self._containers.add(container)

    def container_exists(self, container: str) -> bool:
        with self._lock:
            return container in self._containers

    def list_container(self, container: str) -> List[str]:
        self._require_container(container)
        prefix = container + "/"
        names: Set[str] = set()
        for node in self.nodes.values():
            for key in node.keys():
                if key.startswith(prefix):
                    names.add(key[len(prefix):])
        return sorted(names)

    # -- objects ---------------------------------------------------------------------

    def put_object(self, container: str, name: str, data: bytes) -> None:
        """Store *data* on every replica of its partition."""
        self._require_container(container)
        key = f"{container}/{name}"
        self.latency.charge(len(data))
        devices = self.ring.devices_for(key)
        stored = 0
        for device in devices:
            node = self.nodes[device]
            if node.failed:
                continue
            node.put(key, data)
            stored += 1
        if stored == 0:
            raise StorageError(f"no replica available for {key!r}")
        with self._lock:
            self.bytes_in += len(data)
            self.put_count += 1
            self._put_times[key] = time.time()

    def get_object(self, container: str, name: str) -> bytes:
        """Read from the primary replica, failing over along the ring."""
        self._require_container(container)
        key = f"{container}/{name}"
        last_error: Optional[Exception] = None
        for device in self.ring.devices_for(key):
            node = self.nodes[device]
            try:
                data = node.get(key)
            except ObjectNotFound as exc:
                last_error = exc
                continue
            except StorageError as exc:
                last_error = exc
                continue
            self.latency.charge(len(data))
            with self._lock:
                self.bytes_out += len(data)
                self.get_count += 1
            return data
        if isinstance(last_error, ObjectNotFound):
            raise last_error
        raise ObjectNotFound(key)

    def head_object(self, container: str, name: str) -> bool:
        """Existence probe (used by dedup before uploading a chunk)."""
        self._require_container(container)
        key = f"{container}/{name}"
        self.latency.charge(0)
        return any(self.nodes[d].has(key) for d in self.ring.devices_for(key))

    def put_time(self, container: str, name: str) -> Optional[float]:
        """When the object was last PUT (None if never via this proxy)."""
        with self._lock:
            return self._put_times.get(f"{container}/{name}")

    def object_size(self, container: str, name: str) -> Optional[int]:
        """Size of an object in bytes, without traffic accounting.

        Administrative helper (used by the garbage collector); returns
        None when no live replica holds the object.
        """
        self._require_container(container)
        key = f"{container}/{name}"
        for device in self.ring.devices_for(key):
            size = self.nodes[device].size_of(key)
            if size is not None:
                return size
        return None

    def delete_object(self, container: str, name: str) -> bool:
        self._require_container(container)
        key = f"{container}/{name}"
        self.latency.charge(0)
        deleted = False
        for device in self.ring.devices_for(key):
            node = self.nodes[device]
            if not node.failed and node.delete(key):
                deleted = True
        return deleted

    # -- operations & failures ----------------------------------------------------------

    def fail_node(self, name: str) -> None:
        self.nodes[name].failed = True

    def recover_node(self, name: str) -> None:
        self.nodes[name].failed = False

    def usage(self) -> Dict[str, int]:
        return {name: node.used_bytes for name, node in self.nodes.items()}

    def reset_traffic_counters(self) -> None:
        with self._lock:
            self.bytes_in = 0
            self.bytes_out = 0
            self.put_count = 0
            self.get_count = 0

    def _require_container(self, container: str) -> None:
        if not self.container_exists(container):
            raise StorageError(f"container {container!r} does not exist")
