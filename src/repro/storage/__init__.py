"""Swift-like object storage back-end (ring, nodes, proxy, latency, GC)."""

from repro.storage.latency import (
    LAN_PROFILE,
    LatencyModel,
    LatencyProfile,
    ZERO_PROFILE,
)
from repro.storage.gc import ChunkGarbageCollector, GcReport
from repro.storage.object_store import StorageNode, SwiftLikeStore
from repro.storage.ring import HashRing

__all__ = [
    "ChunkGarbageCollector",
    "GcReport",
    "LAN_PROFILE",
    "ZERO_PROFILE",
    "HashRing",
    "LatencyModel",
    "LatencyProfile",
    "StorageNode",
    "SwiftLikeStore",
]
