"""Latency/bandwidth model for the simulated storage and network paths.

The paper's testbed is a LAN OpenStack Swift deployment; chunk transfer
time there is dominated by a per-request cost plus a bandwidth term.  The
model below charges ``base + size/bandwidth (+ jitter)`` per operation and
can either *sleep* that long (live mode, for the Fig 7e/f sync-time
experiments) or merely *account* it (metered mode, for traffic-only
experiments where wall-clock time is irrelevant).

Benches use a scaled-down profile so the suite runs in seconds while
keeping the shape (a fixed floor for small files, linear growth for large
ones — exactly the knee the paper observes around 2.5 MB in Fig 7(f)).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class LatencyProfile:
    """Parameters of the affine latency model.

    Attributes:
        base: Fixed per-operation latency, seconds (connection setup,
            proxy hop, request processing).
        bandwidth: Payload throughput in bytes/second.
        jitter: Uniform jitter amplitude as a fraction of the computed
            latency (0.1 = ±10%).
    """

    base: float = 0.010
    bandwidth: float = 50e6
    jitter: float = 0.10

    def scaled(self, factor: float) -> "LatencyProfile":
        """A profile with all times multiplied by *factor* (<1 = faster)."""
        return LatencyProfile(
            base=self.base * factor,
            bandwidth=self.bandwidth / factor if factor > 0 else float("inf"),
            jitter=self.jitter,
        )


#: Rough LAN profile matching the paper's local-cluster testbed.
LAN_PROFILE = LatencyProfile(base=0.010, bandwidth=50e6, jitter=0.10)
#: Zero-cost profile for pure-logic tests.
ZERO_PROFILE = LatencyProfile(base=0.0, bandwidth=float("inf"), jitter=0.0)


class LatencyModel:
    """Computes, accumulates and (optionally) sleeps operation latencies."""

    def __init__(
        self,
        profile: LatencyProfile = LAN_PROFILE,
        sleep: bool = True,
        rng: Optional[random.Random] = None,
    ):
        self.profile = profile
        self.sleep_enabled = sleep
        self._rng = rng if rng is not None else random.Random(0xC0FFEE)
        self._lock = threading.Lock()
        self.total_simulated = 0.0
        self.operations = 0

    def latency_for(self, nbytes: int) -> float:
        latency = self.profile.base
        if self.profile.bandwidth and self.profile.bandwidth != float("inf"):
            latency += nbytes / self.profile.bandwidth
        if self.profile.jitter > 0:
            latency *= 1.0 + self._rng.uniform(-self.profile.jitter, self.profile.jitter)
        return max(0.0, latency)

    def charge(self, nbytes: int) -> float:
        """Account (and possibly sleep) one operation; returns its latency."""
        latency = self.latency_for(nbytes)
        with self._lock:
            self.total_simulated += latency
            self.operations += 1
        if self.sleep_enabled and latency > 0:
            time.sleep(latency)
        return latency
