"""Chunk garbage collection for the Storage back-end.

StackSync stores chunks forever by default: removing a file only writes a
DELETED metadata version, and old file versions keep referencing their
chunks.  A production deployment must eventually reclaim space.  This
module implements a mark-and-sweep collector:

* **mark** — walk the metadata back-end and collect every fingerprint
  referenced by any *retained* version (the latest ``keep_versions``
  versions of each item, plus everything younger than ``grace_seconds``);
* **sweep** — delete all objects in the user's container whose name is
  not marked.

The grace window makes the collector safe against the protocol's one
benign race: a client uploads chunks *before* its commitRequest is
processed (§4.1), so a freshly uploaded chunk may be unreferenced for a
moment.  Anything younger than the grace window is never swept.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.storage.object_store import SwiftLikeStore

if TYPE_CHECKING:  # avoid a circular import: metadata.base imports sync.models
    from repro.metadata.base import MetadataBackend


@dataclass
class GcReport:
    """Outcome of one collection run over one container."""

    container: str
    live_chunks: int = 0
    swept_chunks: int = 0
    swept_bytes: int = 0
    kept_recent: int = 0
    swept: List[str] = field(default_factory=list)


class ChunkGarbageCollector:
    """Mark-and-sweep over (metadata back-end, object store) pairs."""

    def __init__(
        self,
        metadata: "MetadataBackend",
        storage: SwiftLikeStore,
        keep_versions: int = 1,
        grace_seconds: float = 3600.0,
    ):
        """
        Args:
            metadata: Source of truth for referenced fingerprints.
            storage: The store whose containers are swept.
            keep_versions: How many trailing versions of each item keep
                their chunks alive (1 = only the current version; higher
                values preserve rollback ability).
            grace_seconds: Objects uploaded more recently than this are
                never swept (in-flight commit protection).
        """
        if keep_versions < 1:
            raise ValueError("keep_versions must be >= 1")
        self.metadata = metadata
        self.storage = storage
        self.keep_versions = keep_versions
        self.grace_seconds = grace_seconds

    # -- mark ---------------------------------------------------------------------

    def live_fingerprints(self, workspace_ids: List[str]) -> Set[str]:
        """Fingerprints referenced by retained versions of the workspaces."""
        live: Set[str] = set()
        for workspace_id in workspace_ids:
            for current in self.metadata.get_workspace_state(workspace_id):
                history = self.metadata.item_history(current.item_id)
                for version in history[-self.keep_versions :]:
                    live.update(version.chunks)
        # Items whose *current* version is DELETED no longer appear in the
        # workspace state; their old chunks are garbage by definition
        # (unless keep_versions covers them via another item).
        return live

    # -- sweep ---------------------------------------------------------------------

    def collect(
        self,
        container: str,
        workspace_ids: List[str],
        now: Optional[float] = None,
        dry_run: bool = False,
    ) -> GcReport:
        """Run one mark-and-sweep pass over *container*."""
        now = time.time() if now is None else now
        live = self.live_fingerprints(workspace_ids)
        report = GcReport(container=container, live_chunks=len(live))

        for name in self.storage.list_container(container):
            if name in live:
                continue
            uploaded_at = self.storage.put_time(container, name)
            if uploaded_at is not None and now - uploaded_at < self.grace_seconds:
                report.kept_recent += 1
                continue
            # Objects with unknown age are treated as old: every upload
            # through the proxy is timestamped, so an unknown object is a
            # leak — exactly what GC exists to reclaim.
            size = self.storage.object_size(container, name) or 0
            if not dry_run:
                self.storage.delete_object(container, name)
            report.swept_chunks += 1
            report.swept_bytes += size
            report.swept.append(name)
        return report
