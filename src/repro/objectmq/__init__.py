"""ObjectMQ: programmatic elasticity for distributed objects over messaging.

The paper's core contribution (§3).  Typical usage, mirroring Fig 2::

    from repro.mom import MessageBroker
    from repro.objectmq import (
        Broker, Remote, remote_interface, async_method, sync_method,
    )

    @remote_interface
    class HelloWorld(Remote):
        @sync_method(timeout=1.0)
        def hello(self, who):
            ...

    class HelloServer:
        def hello(self, who):
            return f"hello {who}"

    mom = MessageBroker()
    server_broker = Broker(mom)
    server_broker.bind("hello", HelloServer())

    client_broker = Broker(mom)
    hello = client_broker.lookup("hello", HelloWorld)
    assert hello.hello("world") == "hello world"
"""

from repro.objectmq.annotations import (
    CallSpec,
    Remote,
    async_method,
    interface_specs,
    is_remote_interface,
    multi_method,
    remote_interface,
    sync_method,
)
from repro.objectmq.broker import Broker
from repro.objectmq.naming import multi_exchange_name, parse_shard_oid, shard_oid
from repro.objectmq.sharding import ShardedProxy
from repro.objectmq.faults import CrashInjector
from repro.objectmq.futures import RemoteFuture
from repro.objectmq.ha import SupervisorNode
from repro.objectmq.introspection import (
    HasObjectInfo,
    ObjectInfo,
    ObjectInfoSnapshot,
    PoolObservation,
)
from repro.objectmq.leader_election import HeartbeatEmitter, LeaderElector
from repro.objectmq.provisioner import (
    BoundedProvisioner,
    FixedProvisioner,
    MaxOfProvisioners,
    Provisioner,
    QueueDepthProvisioner,
    UtilizationProvisioner,
)
from repro.objectmq.proxy import Proxy
from repro.objectmq.remote_broker import REMOTE_BROKER_OID, RemoteBroker, RemoteBrokerApi
from repro.objectmq.skeleton import Skeleton
from repro.objectmq.supervisor import (
    ArrivalMonitor,
    ShardedSupervisor,
    Supervisor,
    SupervisorRecord,
)

__all__ = [
    "REMOTE_BROKER_OID",
    "ArrivalMonitor",
    "BoundedProvisioner",
    "Broker",
    "CallSpec",
    "CrashInjector",
    "FixedProvisioner",
    "HasObjectInfo",
    "HeartbeatEmitter",
    "LeaderElector",
    "MaxOfProvisioners",
    "ObjectInfo",
    "ObjectInfoSnapshot",
    "PoolObservation",
    "Provisioner",
    "Proxy",
    "QueueDepthProvisioner",
    "Remote",
    "RemoteBroker",
    "RemoteBrokerApi",
    "RemoteFuture",
    "ShardedProxy",
    "ShardedSupervisor",
    "Skeleton",
    "Supervisor",
    "SupervisorNode",
    "SupervisorRecord",
    "UtilizationProvisioner",
    "async_method",
    "interface_specs",
    "is_remote_interface",
    "multi_exchange_name",
    "multi_method",
    "parse_shard_oid",
    "remote_interface",
    "shard_oid",
    "sync_method",
]
