"""Dynamic client stubs (§3.1-3.2).

A :class:`Proxy` is generated at ``lookup`` time from a @remote_interface
class: no compilation, no preprocessing, no knowledge of server addresses.
Each interface method becomes a bound callable whose behaviour follows its
:class:`~repro.objectmq.annotations.CallSpec`:

========  =====  ==============================================
kind      multi  behaviour
========  =====  ==============================================
async     no     publish to the ``oid`` queue, return None
sync      no     publish + block on the reply (timeout × retries)
async     yes    publish to the ``oid.multi`` fanout, return count
sync      yes    fanout publish + collect replies until timeout
========  =====  ==============================================
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List

from repro.errors import DeliveryError, RemoteInvocationError, RemoteTimeout
from repro.mom.message import Message, PERSISTENT
from repro.objectmq.annotations import CallSpec
from repro.objectmq.naming import multi_exchange_name
from repro.objectmq.envelope import make_request, new_correlation_id
from repro.telemetry.registry import REGISTRY
from repro.telemetry.stats import percentile as _shared_percentile
from repro.telemetry.trace import TRACE_KEY, TRACER

logger = logging.getLogger(__name__)


class CallStats:
    """Per-proxy client-side latency statistics (thread-safe).

    Aggregates (count / mean / max) are exact over every call ever made;
    the per-call samples backing the percentile accessors live in a
    bounded reservoir of the most recent :data:`RESERVOIR_SIZE` calls, so
    a proxy that serves millions of invocations stays O(1) in memory.
    """

    RESERVOIR_SIZE = 10_000

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.calls = 0
        self.timeouts = 0
        self.total_time = 0.0
        self.max_time = 0.0
        self._recent: Deque[float] = deque(maxlen=self.RESERVOIR_SIZE)

    def record(self, elapsed: float) -> None:
        with self._lock:
            self.calls += 1
            self.total_time += elapsed
            if elapsed > self.max_time:
                self.max_time = elapsed
            self._recent.append(elapsed)

    def record_timeout(self) -> None:
        with self._lock:
            self.calls += 1
            self.timeouts += 1

    @property
    def completed(self) -> int:
        """Calls that got a reply (every one contributes to the mean)."""
        with self._lock:
            return self.calls - self.timeouts

    @property
    def mean_time(self) -> float:
        with self._lock:
            completed = self.calls - self.timeouts
            return self.total_time / completed if completed else 0.0

    @property
    def response_times(self) -> List[float]:
        """Recent response-time samples (newest last, bounded)."""
        with self._lock:
            return list(self._recent)

    def percentile(self, fraction: float) -> float:
        """Percentile over the recent-sample reservoir.

        Delegates to :func:`repro.telemetry.stats.percentile` — the one
        linear-interpolation implementation shared with
        :mod:`repro.simulation.metrics` — so client-side and simulation
        percentiles agree even at small n.
        """
        with self._lock:
            recent = list(self._recent)
        return _shared_percentile(recent, fraction)

    def scrape(self) -> dict:
        """Registry-source view of this proxy's call statistics."""
        with self._lock:
            recent = list(self._recent)
            calls, timeouts = self.calls, self.timeouts
            total, maximum = self.total_time, self.max_time
        completed = calls - timeouts
        return {
            "calls": calls,
            "timeouts": timeouts,
            "mean_seconds": total / completed if completed else 0.0,
            "max_seconds": maximum,
            "p50_seconds": _shared_percentile(recent, 0.50),
            "p95_seconds": _shared_percentile(recent, 0.95),
        }


class Proxy:
    """Client stub for one remote object identifier."""

    def __init__(self, broker, oid: str, specs: Dict[str, CallSpec], interface_name: str):
        self._broker = broker
        self._oid = oid
        self._interface_name = interface_name
        self._specs = specs
        self._multi_exchange_declared = False
        self.call_stats = CallStats()
        REGISTRY.register_source(
            "omq_proxy",
            self.call_stats,
            CallStats.scrape,
            oid=oid,
            interface=interface_name,
        )
        for method_name, spec in specs.items():
            setattr(self, method_name, self._make_method(method_name, spec))

    def __repr__(self) -> str:
        return f"<Proxy {self._interface_name} -> {self._oid!r}>"

    # -- stub construction -----------------------------------------------------

    def _make_method(self, method_name: str, spec: CallSpec):
        if spec.multi and spec.kind == "sync":
            def call(*args: Any, **kwargs: Any) -> List[Any]:
                return self._invoke_multi_sync(method_name, spec, args, kwargs)
        elif spec.multi:
            def call(*args: Any, **kwargs: Any) -> int:
                return self._invoke_multi_async(method_name, spec, args, kwargs)
        elif spec.kind == "sync":
            def call(*args: Any, **kwargs: Any) -> Any:
                return self._invoke_sync(method_name, spec, args, kwargs)
        else:
            def call(*args: Any, **kwargs: Any) -> None:
                self._invoke_async(method_name, spec, args, kwargs)

        call.__name__ = method_name
        call.__qualname__ = f"{self._interface_name}.{method_name}"

        if spec.kind == "sync" and not spec.multi:
            # Future-based companion: begin_<name>() returns a
            # RemoteFuture instead of blocking (see repro.objectmq.futures).
            def begin(*args: Any, **kwargs: Any):
                return self._invoke_begin(method_name, spec, args, kwargs)

            begin.__name__ = f"begin_{method_name}"
            begin.__qualname__ = f"{self._interface_name}.begin_{method_name}"
            setattr(self, f"begin_{method_name}", begin)
        return call

    # -- invocation paths ----------------------------------------------------------

    def _publish(
        self, exchange: str, routing_key: str, envelope: dict, buffered: bool = False
    ) -> int:
        if self._broker.call_context:
            envelope["context"] = dict(self._broker.call_context)
        headers = None
        if TRACER.enabled:
            # Propagate the trace both inside the envelope (for the
            # skeleton) and as a MOM message property (for broker-level
            # tooling).  Nothing is attached when tracing is off, so the
            # wire bytes are identical to the untraced build.
            wire = TRACER.inject()
            if wire is not None:
                envelope[TRACE_KEY] = wire
                headers = {TRACE_KEY: wire}
            with TRACER.span(
                f"proxy.serialize:{envelope.get('method', '?')}", layer="proxy"
            ):
                body = self._broker.codec.encode(envelope)
        else:
            body = self._broker.codec.encode(envelope)
        message = Message(
            body=body,
            routing_key=routing_key,
            reply_to=envelope.get("reply_to"),
            correlation_id=envelope.get("correlation_id"),
            headers=headers if headers is not None else {},
            delivery_mode=PERSISTENT,
        )
        if buffered and self._broker.publish_buffered(exchange, routing_key, message):
            return 1
        # Unbuffered publishes drain the cast buffer first, so the order
        # the broker observes matches the order this client published in.
        self._broker.flush_publishes()
        return self._broker.mom.publish(exchange, routing_key, message)

    def _invoke_async(self, method: str, spec: CallSpec, args, kwargs) -> None:
        with TRACER.span(f"proxy.cast:{method}", layer="proxy"):
            envelope = make_request(method, list(args), kwargs, call="async", multi=False)
            self._publish("", self._oid, envelope, buffered=True)

    def _invoke_sync(self, method: str, spec: CallSpec, args, kwargs) -> Any:
        correlation_id = new_correlation_id()
        envelope = make_request(
            method,
            list(args),
            kwargs,
            call="sync",
            multi=False,
            reply_to=self._broker.response_queue_name,
            correlation_id=correlation_id,
        )
        waiter = self._broker.register_waiter(correlation_id)
        started = time.perf_counter()
        try:
            with TRACER.span(f"proxy.call:{method}", layer="proxy"):
                attempts = 1 + max(0, spec.retry)
                for attempt in range(attempts):
                    self._publish("", self._oid, envelope)
                    reply = waiter.take(spec.timeout)
                    if reply is not None:
                        self.call_stats.record(time.perf_counter() - started)
                        return self._unwrap(method, reply)
                    logger.debug(
                        "sync call %s.%s attempt %d/%d timed out",
                        self._oid, method, attempt + 1, attempts,
                    )
                self.call_stats.record_timeout()
                raise RemoteTimeout(
                    f"{self._interface_name}.{method} on {self._oid!r}: no reply after "
                    f"{attempts} attempt(s) x {spec.timeout}s"
                )
        finally:
            self._broker.unregister_waiter(correlation_id)

    def _invoke_begin(self, method: str, spec: CallSpec, args, kwargs):
        """Publish a sync request, return a RemoteFuture for its reply.

        Unlike the blocking path there are no republish retries: the
        caller owns the timeout via ``future.result(timeout)``, and the
        MOM's at-least-once delivery already covers server crashes.
        """
        from repro.objectmq.futures import RemoteFuture

        correlation_id = new_correlation_id()
        envelope = make_request(
            method,
            list(args),
            kwargs,
            call="sync",
            multi=False,
            reply_to=self._broker.response_queue_name,
            correlation_id=correlation_id,
        )
        waiter = self._broker.register_waiter(correlation_id)
        future = RemoteFuture(
            on_finalize=lambda: self._broker.unregister_waiter(correlation_id)
        )

        def complete(reply: dict) -> None:
            if reply.get("ok"):
                future.set_result(reply.get("result"))
            else:
                future.set_error(
                    RemoteInvocationError(method, reply.get("error") or "unknown error")
                )

        waiter.on_put = complete
        try:
            self._publish("", self._oid, envelope)
        except Exception as exc:  # publish failure completes the future
            future.set_error(exc)
        return future

    def _invoke_multi_async(self, method: str, spec: CallSpec, args, kwargs) -> int:
        with TRACER.span(f"proxy.multicast:{method}", layer="proxy"):
            exchange = self._multi_exchange()
            if not self._exchange_has_listeners(exchange):
                # Nobody is bound to the fanout: a multicast to an empty
                # group is a no-op by contract, so skip serialization and
                # the broker round trip entirely.
                return 0
            envelope = make_request(method, list(args), kwargs, call="async", multi=True)
            try:
                return self._publish(exchange, self._oid, envelope)
            except DeliveryError:
                # Raced the last unbind: same no-op.
                return 0

    def _invoke_multi_sync(self, method: str, spec: CallSpec, args, kwargs) -> List[Any]:
        correlation_id = new_correlation_id()
        envelope = make_request(
            method,
            list(args),
            kwargs,
            call="sync",
            multi=True,
            reply_to=self._broker.response_queue_name,
            correlation_id=correlation_id,
        )
        waiter = self._broker.register_waiter(correlation_id)
        results: List[Any] = []
        started = time.perf_counter()
        try:
            with TRACER.span(f"proxy.multicall:{method}", layer="proxy"):
                try:
                    fanout = self._publish(self._multi_exchange(), self._oid, envelope)
                except DeliveryError:
                    return []
                needed = fanout if spec.quorum is None else min(spec.quorum, fanout)
                deadline = time.monotonic() + spec.timeout
                while len(results) < needed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    reply = waiter.take(remaining)
                    if reply is None:
                        break
                    results.append(self._unwrap(method, reply))
                self.call_stats.record(time.perf_counter() - started)
                return results
        finally:
            self._broker.unregister_waiter(correlation_id)

    def _multi_exchange(self) -> str:
        exchange = multi_exchange_name(self._oid)
        if not self._multi_exchange_declared:
            # Declaration is idempotent; remember it so the multicast hot
            # path stops paying a broker-lock trip per call.
            self._broker.mom.declare_exchange(exchange, "fanout")
            self._multi_exchange_declared = True
        return exchange

    def _exchange_has_listeners(self, exchange: str) -> bool:
        has_bindings = getattr(self._broker.mom, "exchange_has_bindings", None)
        if has_bindings is None:
            # Adapter without the probe (e.g. SQS): assume listeners.
            return True
        return has_bindings(exchange)

    def has_multicast_listeners(self) -> bool:
        """True when at least one instance is bound to this oid's fanout.

        Callers with expensive payloads (e.g. commit notifications) probe
        this before even *building* the message; racing a concurrent bind
        is benign — identical to publishing just before it.
        """
        return self._exchange_has_listeners(self._multi_exchange())

    @staticmethod
    def _unwrap(method: str, reply: dict) -> Any:
        if reply.get("ok"):
            return reply.get("result")
        raise RemoteInvocationError(method, reply.get("error") or "unknown error")
