"""Server-side dispatcher for one bound remote object instance.

A :class:`Skeleton` subscribes the instance to two queues (Fig 1):

* the shared **unicast queue** named ``oid`` — the MOM round-robins each
  message to one idle instance (prefetch 1), which is ObjectMQ's
  transparent load balancing;
* the instance's **private queue** ``oid.inst.<id>``, bound to the fanout
  exchange ``oid.multi`` — every @MultiMethod call reaches every instance.

Deliveries are acked only after the invocation finishes, so a crash while
processing re-queues the message for another instance (§3.4).
"""

from __future__ import annotations

import logging
import time
import uuid
from typing import Any

from repro.mom.message import Delivery, Message, PERSISTENT
from repro.objectmq.naming import multi_exchange_name
from repro.objectmq.envelope import make_reply
from repro.objectmq.introspection import ObjectInfo
from repro.telemetry.registry import REGISTRY
from repro.telemetry.trace import (
    DEQUEUED_AT_KEY,
    ENQUEUED_AT_KEY,
    TRACE_KEY,
    TRACER,
    TraceContext,
)

logger = logging.getLogger(__name__)


class Skeleton:
    """Dispatches decoded RPC envelopes onto a target object."""

    def __init__(
        self, broker, oid: str, target: Any, prefetch: int = 1, interceptors=None
    ):
        self.broker = broker
        self.oid = oid
        self.target = target
        self.prefetch = prefetch
        self.interceptors = list(interceptors or ())
        self.instance_id = f"{oid}.inst.{uuid.uuid4().hex[:12]}"
        self.object_info = ObjectInfo(
            oid=oid, instance_id=self.instance_id, broker_id=broker.client_id
        )
        # Give HasObjectInfo subclasses (and duck-typed peers) access.
        try:
            target.object_info = self.object_info
        except AttributeError:
            pass
        self._unicast_tag = f"{self.instance_id}.uni"
        self._multi_tag = f"{self.instance_id}.multi"
        self._running = False
        self._metrics_token = None

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        mom = self.broker.mom
        mom.declare_queue(self.oid, durable=True)
        mom.declare_exchange(multi_exchange_name(self.oid), "fanout")
        mom.declare_queue(self.instance_id, exclusive=True)
        mom.bind_queue(multi_exchange_name(self.oid), self.instance_id)
        # Flip the flag *before* subscribing: queued messages are delivered
        # synchronously with consume(), and a delivery observed while
        # _running is False is treated as arriving into a crashed instance
        # (never acked).
        self._running = True
        if getattr(mom, "supports_batch_consume", False):
            # Batched dispatch hands this skeleton whole prefetch windows;
            # processing them via the batch callback lets the acks settle
            # in one broker round trip instead of one per message.
            mom.consume(
                self.oid, self._on_delivery, consumer_tag=self._unicast_tag,
                prefetch=self.prefetch, batch_callback=self._on_delivery_batch,
            )
            mom.consume(
                self.instance_id, self._on_delivery, consumer_tag=self._multi_tag,
                prefetch=max(self.prefetch, 8),
                batch_callback=self._on_delivery_batch,
            )
        else:
            mom.consume(
                self.oid, self._on_delivery, consumer_tag=self._unicast_tag,
                prefetch=self.prefetch,
            )
            mom.consume(
                self.instance_id, self._on_delivery, consumer_tag=self._multi_tag,
                prefetch=max(self.prefetch, 8),
            )
        self._metrics_token = REGISTRY.register_source(
            "omq_instance",
            self.object_info,
            ObjectInfo.scrape,
            oid=self.oid,
            instance=self.instance_id,
        )

    def stop(self) -> None:
        """Graceful unbind: in-flight unacked messages are redelivered."""
        if not self._running:
            return
        self._running = False
        if self._metrics_token is not None:
            REGISTRY.unregister_source(self._metrics_token)
            self._metrics_token = None
        mom = self.broker.mom
        mom.cancel(self.oid, self._unicast_tag)
        mom.cancel(self.instance_id, self._multi_tag)
        mom.unbind_queue(multi_exchange_name(self.oid), self.instance_id)
        mom.delete_queue(self.instance_id)

    def kill(self) -> None:
        """Simulate a crash: identical to :meth:`stop` at the MOM level.

        Unacked deliveries flow back to the shared queue with
        ``redelivered=True`` — the fault-injection hook used by the
        Fig 8(f) experiment.
        """
        self.stop()

    # -- dispatch ------------------------------------------------------------------

    def _on_delivery(self, delivery: Delivery) -> None:
        if not self._running:
            # Crash window: never ack, so the message is requeued when the
            # consumer is cancelled.
            return
        self._process_delivery(delivery)
        # Ack last: a crash before this point re-queues the request.
        self.broker.mom.ack(delivery)

    def _on_delivery_batch(self, deliveries) -> None:
        """Process a whole dispatch batch, then settle its acks at once.

        Each delivery is still processed (and its reply sent) before its
        ack is issued, so the at-least-once contract is unchanged — a
        crash mid-batch re-queues every message whose ack had not been
        settled yet, which can only widen the redelivery window, never
        lose a request.
        """
        processed = []
        for delivery in deliveries:
            if not self._running:
                # Crash window mid-batch: the rest is never processed and
                # never acked, so it is requeued on cancel.
                break
            self._process_delivery(delivery)
            processed.append(delivery)
        if not processed:
            return
        mom = self.broker.mom
        if len(processed) == 1:
            mom.ack(processed[0])
        else:
            mom.ack_many(processed)

    def _process_delivery(self, delivery: Delivery) -> None:
        envelope = None
        error: str = ""
        result = None
        self.object_info.invocation_started()
        started = time.perf_counter()
        try:
            envelope = self.broker.codec.decode(delivery.message.body)
            method_name = envelope["method"]
            method = getattr(self.target, method_name, None)
            if method is None or not callable(method):
                raise AttributeError(
                    f"{type(self.target).__name__} has no method {method_name!r}"
                )
            args = envelope.get("args", [])
            kwargs = envelope.get("kwargs", {})
            context = envelope.get("context") or {}
            for interceptor in self.interceptors:
                interceptor(method_name, args, kwargs, context)
            if TRACER.enabled:
                parent = TraceContext.from_wire(envelope.get(TRACE_KEY))
                headers = delivery.message.headers
                enqueued = headers.get(ENQUEUED_AT_KEY)
                dequeued = headers.get(DEQUEUED_AT_KEY)
                if parent is not None and enqueued is not None and dequeued is not None:
                    # Queue wait from the broker's own enqueue/dequeue
                    # stamps — the latency endpoint timers cannot see.
                    TRACER.record_span(
                        f"queue.wait:{delivery.queue_name}",
                        layer="queue",
                        start=enqueued,
                        end=dequeued,
                        parent=parent,
                        attrs={
                            "queue": delivery.queue_name,
                            "redelivered": delivery.message.redelivered,
                        },
                    )
                with TRACER.span(
                    f"skeleton.dispatch:{method_name}",
                    layer="skeleton",
                    parent=parent,
                    attrs={"oid": self.oid, "instance": self.instance_id},
                ):
                    result = method(*args, **kwargs)
            else:
                result = method(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - reported to caller, never fatal
            error = f"{type(exc).__name__}: {exc}"
            logger.debug("invocation failed on %s: %s", self.instance_id, error)
        service_time = time.perf_counter() - started
        self.object_info.invocation_finished(service_time, error=bool(error))

        if envelope is not None and envelope.get("call") == "sync" and envelope.get("reply_to"):
            self._send_reply(envelope, result, error)

    def _send_reply(self, envelope: dict, result: Any, error: str) -> None:
        reply = make_reply(
            correlation_id=envelope.get("correlation_id") or "",
            result=result if not error else None,
            error=error or None,
            responder=self.instance_id,
        )
        body = self.broker.codec.encode(reply)
        message = Message(
            body=body,
            routing_key=envelope["reply_to"],
            correlation_id=envelope.get("correlation_id"),
            delivery_mode=PERSISTENT,
        )
        try:
            self.broker.mom.publish("", envelope["reply_to"], message)
        except Exception:  # noqa: BLE001 - the caller may be gone; that is fine
            logger.debug("reply queue %s vanished", envelope["reply_to"])
