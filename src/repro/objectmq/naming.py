"""Queue/exchange naming conventions shared by proxies and skeletons."""

from __future__ import annotations

#: Suffix of the fanout exchange carrying @MultiMethod calls for an oid.
MULTI_EXCHANGE_SUFFIX = ".multi"


def multi_exchange_name(oid: str) -> str:
    """Name of the fanout exchange broadcasting to all instances of *oid*."""
    return oid + MULTI_EXCHANGE_SUFFIX


def response_queue_name(client_id: str) -> str:
    """Name of a connected Broker's private reply queue."""
    return f"response.{client_id}"
