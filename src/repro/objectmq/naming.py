"""Queue/exchange naming conventions shared by proxies and skeletons."""

from __future__ import annotations

from typing import Optional, Tuple

#: Suffix of the fanout exchange carrying @MultiMethod calls for an oid.
MULTI_EXCHANGE_SUFFIX = ".multi"

#: Infix separating a base oid from its shard index in a partitioned
#: deployment (``sync.shard.3`` is shard 3 of the ``sync`` pool).
SHARD_INFIX = ".shard."


def multi_exchange_name(oid: str) -> str:
    """Name of the fanout exchange broadcasting to all instances of *oid*."""
    return oid + MULTI_EXCHANGE_SUFFIX


def response_queue_name(client_id: str) -> str:
    """Name of a connected Broker's private reply queue."""
    return f"response.{client_id}"


def shard_oid(oid: str, shard: int) -> str:
    """The partitioned oid serving shard *shard* of the *oid* pool.

    Every shard is a full ObjectMQ oid of its own — request queue,
    ``.multi`` exchange, instance pool — so load balancing, multicast
    and elastic scaling all work per shard with no new machinery.
    """
    if shard < 0:
        raise ValueError(f"negative shard {shard}")
    return f"{oid}{SHARD_INFIX}{shard}"


def parse_shard_oid(name: str) -> Tuple[str, Optional[int]]:
    """Split a (possibly) partitioned oid into ``(base_oid, shard)``.

    Returns ``(name, None)`` for unpartitioned oids, so callers can
    treat every oid uniformly — e.g. the Supervisor labels its journal
    entries with whatever shard this returns.
    """
    base, infix, tail = name.rpartition(SHARD_INFIX)
    if infix and tail.isdigit():
        return base, int(tail)
    return name, None
