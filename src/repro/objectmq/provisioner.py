"""The Provisioner hotspot of the elasticity framework (§3.3, Fig 3).

A :class:`Provisioner` observes a server-object pool (queue metrics +
instance introspection) each control period and proposes how many
instances should exist.  The :class:`~repro.objectmq.supervisor.Supervisor`
enforces the proposal.  Third parties plug in policies by subclassing —
the paper's predictive and reactive policies live in
:mod:`repro.elasticity`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.objectmq.introspection import PoolObservation


class Provisioner(ABC):
    """Extensible hook deciding the size of a server-object pool."""

    #: Human-readable policy name, used in experiment reports.
    name = "provisioner"

    @abstractmethod
    def propose(self, observation: PoolObservation) -> int:
        """Return the number of instances this policy wants right now."""

    def reset(self) -> None:
        """Clear internal state (history windows, EWMA, ...)."""


class FixedProvisioner(Provisioner):
    """Always propose a constant pool size (the no-elasticity baseline)."""

    name = "fixed"

    def __init__(self, instances: int = 1):
        if instances < 0:
            raise ValueError("instances must be >= 0")
        self.instances = instances

    def propose(self, observation: PoolObservation) -> int:
        return self.instances


class UtilizationProvisioner(Provisioner):
    """Naive CPU/utilization-threshold scaling — the coarse-grained cloud
    baseline the paper argues against (§1, §4.3).

    Scales up by one when offered utilization exceeds *high*, down by one
    when it falls below *low*.  Included as an ablation baseline: it reacts
    only after saturation is already observable and one step at a time, so
    it lags fast diurnal ramps.
    """

    name = "utilization-threshold"

    def __init__(self, high: float = 0.8, low: float = 0.3):
        if not 0 <= low < high:
            raise ValueError("need 0 <= low < high")
        self.high = high
        self.low = low

    def propose(self, observation: PoolObservation) -> int:
        current = max(1, observation.instance_count)
        utilization = observation.utilization
        if utilization > self.high:
            return current + 1
        if utilization < self.low and current > 1:
            return current - 1
        return current


class QueueDepthProvisioner(Provisioner):
    """Ad-hoc policy on queue backlog — the paper's "observe that messages
    are not being processed at the adequate speed" example (§3.3).

    Scales so that the ready backlog per instance stays below
    ``max_backlog_per_instance``; shrinks when the pool could absorb the
    backlog with fewer instances at ``shrink_fill`` occupancy.  Purely
    queue-driven: no model of service times, no history — the simplest
    useful demonstration of the Provisioner hotspot.
    """

    name = "queue-depth"

    def __init__(self, max_backlog_per_instance: int = 10, shrink_fill: float = 0.3):
        if max_backlog_per_instance < 1:
            raise ValueError("max_backlog_per_instance must be >= 1")
        if not 0 < shrink_fill < 1:
            raise ValueError("shrink_fill must be in (0, 1)")
        self.max_backlog_per_instance = max_backlog_per_instance
        self.shrink_fill = shrink_fill

    def propose(self, observation: PoolObservation) -> int:
        current = max(1, observation.instance_count)
        needed = -(-observation.queue_depth // self.max_backlog_per_instance)  # ceil
        if needed > current:
            return needed
        comfortable = -(
            -observation.queue_depth
            // max(1, int(self.max_backlog_per_instance * self.shrink_fill))
        )
        if observation.queue_depth == 0 and not any(
            s.busy for s in observation.instances
        ):
            # Fully idle pool: release one instance per period.
            return max(1, current - 1)
        return max(1, min(current, max(comfortable, 1)))


class MaxOfProvisioners(Provisioner):
    """Combine policies by taking the maximum proposal.

    The paper's deployment runs the predictive policy for the long time
    scale and lets the reactive policy override it upward on short time
    scales — which is exactly max-composition.
    """

    name = "max-of"

    def __init__(self, provisioners: List[Provisioner]):
        if not provisioners:
            raise ValueError("need at least one provisioner")
        self.provisioners = list(provisioners)
        self.name = "max(" + ",".join(p.name for p in self.provisioners) + ")"

    def propose(self, observation: PoolObservation) -> int:
        return max(p.propose(observation) for p in self.provisioners)

    def reset(self) -> None:
        for provisioner in self.provisioners:
            provisioner.reset()


class BoundedProvisioner(Provisioner):
    """Clamp another policy's proposal into ``[minimum, maximum]``."""

    def __init__(self, inner: Provisioner, minimum: int = 1, maximum: Optional[int] = None):
        if maximum is not None and maximum < minimum:
            raise ValueError("maximum must be >= minimum")
        self.inner = inner
        self.minimum = minimum
        self.maximum = maximum
        self.name = f"bounded({inner.name})"

    def propose(self, observation: PoolObservation) -> int:
        proposal = self.inner.propose(observation)
        proposal = max(self.minimum, proposal)
        if self.maximum is not None:
            proposal = min(self.maximum, proposal)
        return proposal

    def reset(self) -> None:
        self.inner.reset()
