"""The Provisioner hotspot of the elasticity framework (§3.3, Fig 3).

A :class:`Provisioner` observes a server-object pool (queue metrics +
instance introspection) each control period and proposes how many
instances should exist.  The :class:`~repro.objectmq.supervisor.Supervisor`
enforces the proposal.  Third parties plug in policies by subclassing —
the paper's predictive and reactive policies live in
:mod:`repro.elasticity`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.objectmq.introspection import PoolObservation


class Provisioner(ABC):
    """Extensible hook deciding the size of a server-object pool."""

    #: Human-readable policy name, used in experiment reports.
    name = "provisioner"

    #: Human-readable explanation of the latest proposal, written by
    #: ``propose`` and journaled by the Supervisor's decision log so every
    #: scaling action in a run is attributable ("why did the pool grow?").
    last_reason: str = ""

    #: Which reactive threshold fired on the latest proposal ("tau1",
    #: "tau2", or None).  Only threshold-based policies set this; the
    #: base value keeps journal code free of hasattr checks.
    last_threshold: Optional[str] = None

    @abstractmethod
    def propose(self, observation: PoolObservation) -> int:
        """Return the number of instances this policy wants right now."""

    def reset(self) -> None:
        """Clear internal state (history windows, EWMA, ...)."""


class FixedProvisioner(Provisioner):
    """Always propose a constant pool size (the no-elasticity baseline)."""

    name = "fixed"

    def __init__(self, instances: int = 1):
        if instances < 0:
            raise ValueError("instances must be >= 0")
        self.instances = instances

    def propose(self, observation: PoolObservation) -> int:
        self.last_reason = f"fixed target of {self.instances} instance(s)"
        return self.instances


class UtilizationProvisioner(Provisioner):
    """Naive CPU/utilization-threshold scaling — the coarse-grained cloud
    baseline the paper argues against (§1, §4.3).

    Scales up by one when offered utilization exceeds *high*, down by one
    when it falls below *low*.  Included as an ablation baseline: it reacts
    only after saturation is already observable and one step at a time, so
    it lags fast diurnal ramps.
    """

    name = "utilization-threshold"

    def __init__(self, high: float = 0.8, low: float = 0.3):
        if not 0 <= low < high:
            raise ValueError("need 0 <= low < high")
        self.high = high
        self.low = low

    def propose(self, observation: PoolObservation) -> int:
        current = max(1, observation.instance_count)
        utilization = observation.utilization
        if utilization > self.high:
            self.last_reason = (
                f"utilization {utilization:.2f} > high {self.high:.2f}: "
                f"add one instance"
            )
            return current + 1
        if utilization < self.low and current > 1:
            self.last_reason = (
                f"utilization {utilization:.2f} < low {self.low:.2f}: "
                f"release one instance"
            )
            return current - 1
        self.last_reason = (
            f"utilization {utilization:.2f} within "
            f"[{self.low:.2f}, {self.high:.2f}]: hold at {current}"
        )
        return current


class QueueDepthProvisioner(Provisioner):
    """Ad-hoc policy on queue backlog — the paper's "observe that messages
    are not being processed at the adequate speed" example (§3.3).

    Scales so that the ready backlog per instance stays below
    ``max_backlog_per_instance``; shrinks when the pool could absorb the
    backlog with fewer instances at ``shrink_fill`` occupancy.  Purely
    queue-driven: no model of service times, no history — the simplest
    useful demonstration of the Provisioner hotspot.
    """

    name = "queue-depth"

    def __init__(self, max_backlog_per_instance: int = 10, shrink_fill: float = 0.3):
        if max_backlog_per_instance < 1:
            raise ValueError("max_backlog_per_instance must be >= 1")
        if not 0 < shrink_fill < 1:
            raise ValueError("shrink_fill must be in (0, 1)")
        self.max_backlog_per_instance = max_backlog_per_instance
        self.shrink_fill = shrink_fill

    def propose(self, observation: PoolObservation) -> int:
        current = max(1, observation.instance_count)
        depth = observation.queue_depth
        needed = -(-depth // self.max_backlog_per_instance)  # ceil
        if needed > current:
            self.last_reason = (
                f"backlog {depth} needs {needed} instance(s) at "
                f"{self.max_backlog_per_instance}/instance"
            )
            return needed
        comfortable = -(
            -depth
            // max(1, int(self.max_backlog_per_instance * self.shrink_fill))
        )
        if depth == 0 and not any(s.busy for s in observation.instances):
            # Fully idle pool: release one instance per period.
            self.last_reason = "queue empty and pool idle: release one instance"
            return max(1, current - 1)
        proposal = max(1, min(current, max(comfortable, 1)))
        self.last_reason = (
            f"backlog {depth} absorbable by {proposal} instance(s) at "
            f"{self.shrink_fill:.0%} fill"
        )
        return proposal


class MaxOfProvisioners(Provisioner):
    """Combine policies by taking the maximum proposal.

    The paper's deployment runs the predictive policy for the long time
    scale and lets the reactive policy override it upward on short time
    scales — which is exactly max-composition.
    """

    name = "max-of"

    def __init__(self, provisioners: List[Provisioner]):
        if not provisioners:
            raise ValueError("need at least one provisioner")
        self.provisioners = list(provisioners)
        self.name = "max(" + ",".join(p.name for p in self.provisioners) + ")"

    def propose(self, observation: PoolObservation) -> int:
        proposals = [(p.propose(observation), p) for p in self.provisioners]
        winning, winner = max(proposals, key=lambda pair: pair[0])
        self.last_reason = f"max-of winner {winner.name}: {winner.last_reason}"
        self.last_threshold = winner.last_threshold
        return winning

    def reset(self) -> None:
        for provisioner in self.provisioners:
            provisioner.reset()


class BoundedProvisioner(Provisioner):
    """Clamp another policy's proposal into ``[minimum, maximum]``."""

    def __init__(self, inner: Provisioner, minimum: int = 1, maximum: Optional[int] = None):
        if maximum is not None and maximum < minimum:
            raise ValueError("maximum must be >= minimum")
        self.inner = inner
        self.minimum = minimum
        self.maximum = maximum
        self.name = f"bounded({inner.name})"

    def propose(self, observation: PoolObservation) -> int:
        raw = self.inner.propose(observation)
        proposal = max(self.minimum, raw)
        if self.maximum is not None:
            proposal = min(self.maximum, proposal)
        self.last_reason = self.inner.last_reason
        if proposal != raw:
            self.last_reason += f" (clamped {raw} -> {proposal})"
        self.last_threshold = self.inner.last_threshold
        return proposal

    def reset(self) -> None:
        self.inner.reset()
