"""Supervisor: the Master entity enforcing provisioning policies (§3.3-3.4).

Each control period the Supervisor:

1. polls the RemoteBroker fleet with @MultiMethod calls (``ping``,
   ``get_object_info``) — this doubles as a failure detector: a crashed
   instance simply stops appearing in the census;
2. samples the shared request queue to measure the observed arrival rate
   λ_obs and interarrival variance;
3. hands the resulting :class:`PoolObservation` to the active
   :class:`~repro.objectmq.provisioner.Provisioner`;
4. reconciles reality with the proposal by calling ``spawn``/``shutdown``
   on RemoteBrokers.

Crash repair falls out of step 4: when an instance dies, the census count
drops below the enforced target and the Supervisor spawns a replacement —
the behaviour measured in the paper's Fig 8(f).
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.objectmq.broker import Broker
from repro.objectmq.introspection import ObjectInfoSnapshot, PoolObservation
from repro.objectmq.naming import parse_shard_oid, shard_oid
from repro.objectmq.provisioner import Provisioner
from repro.objectmq.remote_broker import REMOTE_BROKER_OID, RemoteBrokerApi
from repro.telemetry.control import (
    HEALTH,
    KIND_DECISION,
    KIND_SHUTDOWN,
    KIND_SPAWN,
    REASON_CRASH_REPAIR,
    REASON_SCALE_DOWN,
    REASON_SCALE_UP,
    DecisionJournal,
)
from repro.telemetry.registry import REGISTRY

logger = logging.getLogger(__name__)


class ArrivalMonitor:
    """Estimates arrival rate and interarrival variance from queue counters.

    Samples the monotonically increasing ``published`` counter of the
    shared request queue.  Per-sample counts give the rate directly; the
    interarrival variance is estimated from the dispersion of per-sample
    counts (for a renewal process observed over windows of length w,
    Var[N(w)] ≈ w·σ_a²/μ_a³, giving σ_a² = Var[N]·μ_a³/w).

    The sample window is a ``deque(maxlen=window)``: appending past
    capacity drops the oldest sample in O(1), where the previous list
    implementation re-sliced the whole window on every record.
    """

    def __init__(self, window: int = 60):
        self.window = window
        # (timestamp, cumulative_count); maxlen trims oldest-first exactly
        # like the previous ``samples[-window:]`` slice did.
        self._samples: Deque[Tuple[float, int]] = deque(maxlen=window)

    def record(self, timestamp: float, cumulative_count: int) -> None:
        self._samples.append((timestamp, cumulative_count))

    @property
    def rate(self) -> float:
        """Mean arrivals/second over the retained window."""
        if len(self._samples) < 2:
            return 0.0
        (t0, c0), (t1, c1) = self._samples[0], self._samples[-1]
        elapsed = t1 - t0
        if elapsed <= 0:
            return 0.0
        return max(0.0, (c1 - c0) / elapsed)

    @property
    def interarrival_variance(self) -> float:
        """Estimated variance of interarrival times (seconds²)."""
        if len(self._samples) < 3:
            return 0.0
        counts = []
        widths = []
        samples = list(self._samples)
        for (t0, c0), (t1, c1) in zip(samples, samples[1:]):
            if t1 > t0:
                counts.append(c1 - c0)
                widths.append(t1 - t0)
        if not counts:
            return 0.0
        width = sum(widths) / len(widths)
        mean_count = sum(counts) / len(counts)
        if mean_count <= 0:
            return 0.0
        var_count = sum((c - mean_count) ** 2 for c in counts) / len(counts)
        mean_interarrival = width / mean_count
        # Var[N(w)] = w sigma_a^2 / mu_a^3  =>  sigma_a^2 = Var[N] mu_a^3 / w
        return var_count * mean_interarrival**3 / width

    def reset(self) -> None:
        self._samples.clear()


@dataclass
class SupervisorRecord:
    """One control-period entry in the Supervisor's history log."""

    timestamp: float
    arrival_rate: float
    queue_depth: int
    instances_before: int
    desired: int
    spawned: int
    removed: int
    alive_brokers: int


@dataclass
class SupervisorHistory:
    records: List[SupervisorRecord] = field(default_factory=list)

    def append(self, record: SupervisorRecord) -> None:
        self.records.append(record)

    def instance_series(self) -> List[int]:
        return [r.instances_before + r.spawned - r.removed for r in self.records]


class Supervisor:
    """Centralized enforcement of a provisioning policy over one oid pool."""

    def __init__(
        self,
        broker: Broker,
        oid: str,
        provisioner: Provisioner,
        control_interval: float = 1.0,
        min_instances: int = 1,
        max_instances: int = 64,
        snapshot_horizon: Optional[float] = 30.0,
        journal: Optional[DecisionJournal] = None,
    ):
        self.broker = broker
        self.oid = oid
        # A Supervisor over a partitioned oid (``sync.shard.3``) is just a
        # plain Supervisor — per-shard queues are real queues — but it
        # labels its journal entries and gauges with the shard so the
        # control planes of N shards stay distinguishable.
        self.base_oid, self.shard = parse_shard_oid(oid)
        self.provisioner = provisioner
        self.control_interval = control_interval
        self.min_instances = min_instances
        self.max_instances = max_instances
        #: Discard ObjectInfo snapshots captured more than this many
        #: seconds ago (None disables the check).  A stale snapshot —
        #: e.g. replayed by a hiccuping broker — must not steer scaling.
        self.snapshot_horizon = snapshot_horizon
        #: Structured control-plane log; None keeps the loop journal-free.
        self.journal = journal
        self.fleet = broker.lookup(REMOTE_BROKER_OID, RemoteBrokerApi)
        self.monitor = ArrivalMonitor()
        self.history = SupervisorHistory()
        self.last_step_at: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._heartbeat_cb = None
        #: The pool size enforced by the previous step.  A census below
        #: it at the next step means instances died in between — the
        #: shortfall's replacement spawns are journaled as crash repair.
        self._enforced_target: Optional[int] = None
        HEALTH.register(
            f"supervisor:{oid}", self, Supervisor._health_probe, required=True
        )

    # -- observation -------------------------------------------------------------

    def observe(self, now: Optional[float] = None) -> PoolObservation:
        """Poll fleet + queue and build this period's PoolObservation."""
        now = time.time() if now is None else now
        try:
            stats = self.broker.mom.queue_stats(self.oid)
        except Exception:  # queue not declared yet: nothing bound
            stats = {"published": 0, "ready": 0}
        self.monitor.record(now, stats.get("published", 0))

        snapshots: List[ObjectInfoSnapshot] = []
        for chunk in self.fleet.get_object_info(self.oid):
            snapshots.extend(ObjectInfoSnapshot.from_wire(item) for item in chunk)
        if self.snapshot_horizon is not None:
            fresh = [s for s in snapshots if not s.is_stale(self.snapshot_horizon)]
            if len(fresh) < len(snapshots):
                logger.debug(
                    "discarding %d stale ObjectInfo snapshot(s) for %s "
                    "(horizon %.1fs)",
                    len(snapshots) - len(fresh), self.oid, self.snapshot_horizon,
                )
            snapshots = fresh

        service_times = [s.mean_service_time for s in snapshots if s.processed > 0]
        service_vars = [s.service_time_variance for s in snapshots if s.processed > 1]
        mean_service = sum(service_times) / len(service_times) if service_times else 0.0
        service_var = sum(service_vars) / len(service_vars) if service_vars else 0.0

        return PoolObservation(
            oid=self.oid,
            timestamp=now,
            instance_count=len(snapshots),
            queue_depth=stats.get("ready", 0),
            arrival_rate=self.monitor.rate,
            interarrival_variance=self.monitor.interarrival_variance,
            mean_service_time=mean_service,
            service_time_variance=service_var,
            instances=snapshots,
        )

    # -- control -----------------------------------------------------------------

    def step(self, now: Optional[float] = None) -> SupervisorRecord:
        """Run one control period synchronously (used by tests and benches)."""
        observation = self.observe(now)
        proposal = self.provisioner.propose(observation)
        desired = min(self.max_instances, max(self.min_instances, proposal))
        reason = getattr(self.provisioner, "last_reason", "") or (
            f"{self.provisioner.name} proposed {proposal}"
        )
        threshold = getattr(self.provisioner, "last_threshold", None)

        alive = self.fleet.ping()
        spawned = removed = 0
        current = observation.instance_count
        # Census shortfall against the previously enforced target means
        # instances died since last period (Fig 8(f)); their replacement
        # spawns are crash repair, any further growth is a scale-up.
        crash_shortfall = 0
        if self._enforced_target is not None and current < self._enforced_target:
            crash_shortfall = self._enforced_target - current

        decision_seq = 0
        if self.journal is not None:
            decision_seq = self.journal.append(
                KIND_DECISION,
                observation.timestamp,
                oid=self.oid,
                shard=self.shard,
                lam_obs=observation.arrival_rate,
                lam_pred=getattr(self.provisioner, "last_prediction", None)
                or self._predicted_rate(observation.timestamp),
                interarrival_variance=observation.interarrival_variance,
                queue_depth=observation.queue_depth,
                census=current,
                census_shortfall=crash_shortfall,
                alive_brokers=len(alive),
                policy=self.provisioner.name,
                proposal=proposal,
                desired=desired,
                threshold=threshold,
                reason=reason,
            ).seq

        removed_ids: List[str] = []
        if alive:
            while current + spawned < desired:
                try:
                    instance_id = self.fleet.spawn(self.oid)
                    spawned += 1
                except Exception:
                    logger.exception("spawn of %s failed", self.oid)
                    break
                if self.journal is not None:
                    repair = spawned <= min(crash_shortfall, desired - current)
                    self.journal.append(
                        KIND_SPAWN,
                        observation.timestamp,
                        oid=self.oid,
                        shard=self.shard,
                        instance_id=instance_id,
                        reason=REASON_CRASH_REPAIR if repair else REASON_SCALE_UP,
                        policy_reason=reason,
                        decision_seq=decision_seq,
                    )
            if current > desired:
                removed_ids = self._remove_surplus(observation, current - desired)
                removed = len(removed_ids)
                if self.journal is not None:
                    for instance_id in removed_ids:
                        self.journal.append(
                            KIND_SHUTDOWN,
                            observation.timestamp,
                            oid=self.oid,
                            shard=self.shard,
                            instance_id=instance_id,
                            reason=REASON_SCALE_DOWN,
                            policy_reason=reason,
                            decision_seq=decision_seq,
                        )
            self._enforced_target = desired

        record = SupervisorRecord(
            timestamp=observation.timestamp,
            arrival_rate=observation.arrival_rate,
            queue_depth=observation.queue_depth,
            instances_before=current,
            desired=desired,
            spawned=spawned,
            removed=removed,
            alive_brokers=len(alive),
        )
        self.history.append(record)
        self.last_step_at = time.monotonic()
        self._export_gauges(observation, desired, spawned, removed)
        if self._heartbeat_cb is not None:
            self._heartbeat_cb()
        return record

    def _predicted_rate(self, timestamp: float) -> float:
        """λ_pred from the active policy's predictor, if it has one."""
        predictive = getattr(self.provisioner, "predictive", None)
        if predictive is not None and hasattr(predictive, "predicted_rate"):
            return predictive.predicted_rate(timestamp)
        if hasattr(self.provisioner, "predicted_rate"):
            return self.provisioner.predicted_rate(timestamp)
        return 0.0

    def _export_gauges(
        self,
        observation: PoolObservation,
        desired: int,
        spawned: int,
        removed: int,
    ) -> None:
        """Publish control-plane gauges for SLO rules / the ops endpoint."""
        labels = {"oid": self.oid}
        if self.shard is not None:
            labels["shard"] = str(self.shard)
        REGISTRY.gauge("supervisor_pool_size", **labels).set(
            observation.instance_count + spawned - removed
        )
        REGISTRY.gauge("supervisor_desired", **labels).set(desired)
        REGISTRY.gauge("supervisor_queue_depth", **labels).set(
            observation.queue_depth
        )
        REGISTRY.gauge("supervisor_lambda_obs", **labels).set(
            observation.arrival_rate
        )
        try:
            stats = self.broker.mom.queue_stats(self.oid)
        except Exception:
            stats = {}
        if "redelivered" in stats:
            REGISTRY.gauge("supervisor_queue_redelivered", **labels).set(
                stats["redelivered"]
            )

    def _health_probe(self) -> dict:
        """Liveness: the control loop stepped recently (or hasn't started)."""
        detail = {
            "oid": self.oid,
            "steps": len(self.history.records),
            "running": self._thread is not None,
        }
        if self._thread is not None and self.last_step_at is not None:
            stalled = time.monotonic() - self.last_step_at > 5 * self.control_interval
            detail["ok"] = not stalled
            if stalled:
                detail["error"] = "control loop stalled"
        return detail

    def _remove_surplus(self, observation: PoolObservation, surplus: int) -> List[str]:
        """Shut down the most idle instances first; returns removed ids."""
        candidates = sorted(
            observation.instances,
            key=lambda s: (s.busy, s.last_invocation_at or 0.0),
        )
        removed: List[str] = []
        for snapshot in candidates[:surplus]:
            acks = self.fleet.shutdown(self.oid, snapshot.instance_id)
            if any(acks):
                removed.append(snapshot.instance_id)
        return removed

    # -- background operation --------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="supervisor", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def set_heartbeat_callback(self, callback) -> None:
        """Called after every control step (used by the leader-election layer)."""
        self._heartbeat_cb = callback

    def _run(self) -> None:
        while not self._stop.wait(self.control_interval):
            try:
                self.step()
            except Exception:  # noqa: BLE001 - the supervisor must survive hiccups
                logger.exception("supervisor step failed")


class ShardedSupervisor:
    """One independent control loop per shard of a partitioned oid.

    Each shard's queue has its own arrival process (its slice of the
    workspace population), so each gets its own λ observation, its own
    provisioner instance (policies carry state — EWMA predictors, last
    thresholds) and its own pool target.  All loops share one
    DecisionJournal; entries are distinguishable by their ``shard``
    field, which the per-shard :class:`Supervisor` stamps automatically
    from its oid.

    Args:
        broker: Connected ObjectMQ broker.
        oid: The *base* oid (e.g. ``"sync"``); shard oids are derived.
        provisioner_factory: Zero-arg callable building one fresh
            policy instance per shard.
        shards: Number of partitions.
        journal: Shared decision journal (optional).
        **supervisor_kwargs: Forwarded to every per-shard Supervisor
            (control_interval, min/max_instances, ...).
    """

    def __init__(
        self,
        broker: Broker,
        oid: str,
        provisioner_factory,
        shards: int,
        journal: Optional[DecisionJournal] = None,
        **supervisor_kwargs,
    ):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.oid = oid
        self.supervisors: List[Supervisor] = [
            Supervisor(
                broker,
                shard_oid(oid, shard),
                provisioner_factory(),
                journal=journal,
                **supervisor_kwargs,
            )
            for shard in range(shards)
        ]

    @property
    def num_shards(self) -> int:
        return len(self.supervisors)

    def step(self, now: Optional[float] = None) -> List[SupervisorRecord]:
        """Run one control period on every shard; returns records in shard order."""
        return [supervisor.step(now) for supervisor in self.supervisors]

    def pool_sizes(self) -> List[int]:
        """Currently enforced pool size per shard (0 before the first step)."""
        sizes = []
        for supervisor in self.supervisors:
            records = supervisor.history.records
            if records:
                last = records[-1]
                sizes.append(last.instances_before + last.spawned - last.removed)
            else:
                sizes.append(0)
        return sizes

    def start(self) -> None:
        for supervisor in self.supervisors:
            supervisor.start()

    def stop(self) -> None:
        for supervisor in self.supervisors:
            supervisor.stop()
