"""RemoteBroker: the slave node of the Master/Slave elasticity model (§3.3).

A RemoteBroker is an ObjectMQ server that can launch and shut down remote
object instances on demand.  It registers *factories* — callables that
build a fresh server object for a given oid — and is itself bound as a
remote object under the well-known identifier ``omq.remotebroker``, so the
Supervisor can reach the whole fleet with @MultiMethod calls:

* ``ping()`` (multi+sync) — liveness + discovery;
* ``get_object_info(oid)`` (multi+sync) — introspection for provisioners;
* ``spawn(oid)`` (sync, unicast) — the MOM's work-queue balancing picks a
  broker, which instantiates and binds a new instance;
* ``shutdown(oid, instance_id)`` (multi+sync) — only the owner acts.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable, Dict, List, Optional

from repro.errors import ProvisioningError
from repro.objectmq.annotations import (
    Remote,
    multi_method,
    remote_interface,
    sync_method,
)
from repro.objectmq.broker import Broker
from repro.objectmq.skeleton import Skeleton

logger = logging.getLogger(__name__)

#: Well-known oid every RemoteBroker binds itself under.
REMOTE_BROKER_OID = "omq.remotebroker"


@remote_interface
class RemoteBrokerApi(Remote):
    """Interface the Supervisor uses to manage the slave fleet."""

    @multi_method
    @sync_method(timeout=1.0, retry=0)
    def ping(self) -> dict:
        """Liveness probe; returns the broker id and its instance census."""
        raise NotImplementedError

    @multi_method
    @sync_method(timeout=1.0, retry=0)
    def get_object_info(self, oid: str) -> List[dict]:
        """Snapshots of every local instance bound under *oid*."""
        raise NotImplementedError

    @sync_method(timeout=2.0, retry=1)
    def spawn(self, oid: str) -> str:
        """Create and bind a new instance of *oid*; returns its instance id."""
        raise NotImplementedError

    @multi_method
    @sync_method(timeout=1.0, retry=0)
    def shutdown(self, oid: str, instance_id: str) -> bool:
        """Unbind *instance_id* if it lives here; returns True if it did."""
        raise NotImplementedError


class RemoteBroker:
    """Concrete slave node hosting dynamically spawned server objects."""

    def __init__(self, broker: Broker, broker_name: Optional[str] = None):
        self.broker = broker
        self.broker_name = broker_name or f"rbroker-{broker.client_id}"
        self._lock = threading.Lock()
        self._factories: Dict[str, Callable[[], object]] = {}
        self._instances: Dict[str, Dict[str, Skeleton]] = {}
        self._self_skeleton: Optional[Skeleton] = None

    # -- local administration ----------------------------------------------------

    def register_factory(self, oid: str, factory: Callable[[], object]) -> None:
        """Teach this node how to build server objects for *oid*."""
        with self._lock:
            self._factories[oid] = factory

    def serve(self) -> None:
        """Bind this RemoteBroker under the well-known fleet oid."""
        if self._self_skeleton is None:
            self._self_skeleton = self.broker.bind(REMOTE_BROKER_OID, self)

    def stop(self) -> None:
        """Shut down every hosted instance and leave the fleet."""
        with self._lock:
            hosted = [
                (oid, iid) for oid, insts in self._instances.items() for iid in insts
            ]
        for oid, instance_id in hosted:
            self.shutdown(oid, instance_id)
        if self._self_skeleton is not None:
            self.broker.unbind(self._self_skeleton)
            self._self_skeleton = None

    def instances_for(self, oid: str) -> Dict[str, Skeleton]:
        with self._lock:
            return dict(self._instances.get(oid, {}))

    def crash_instance(self, oid: str, instance_id: str) -> bool:
        """Fault-injection hook: kill without graceful handover."""
        with self._lock:
            skeleton = self._instances.get(oid, {}).pop(instance_id, None)
        if skeleton is None:
            return False
        skeleton.kill()
        return True

    # -- RemoteBrokerApi implementation ------------------------------------------------

    def ping(self) -> dict:
        with self._lock:
            census = {oid: len(insts) for oid, insts in self._instances.items()}
        return {"broker": self.broker_name, "instances": census}

    def get_object_info(self, oid: str) -> List[dict]:
        with self._lock:
            skeletons = list(self._instances.get(oid, {}).values())
        return [sk.object_info.snapshot().to_wire() for sk in skeletons]

    def spawn(self, oid: str) -> str:
        with self._lock:
            factory = self._factories.get(oid)
        if factory is None:
            raise ProvisioningError(
                f"{self.broker_name} has no factory for oid {oid!r}"
            )
        target = factory()
        skeleton = self.broker.bind(oid, target)
        with self._lock:
            self._instances.setdefault(oid, {})[skeleton.instance_id] = skeleton
        logger.info("%s spawned %s", self.broker_name, skeleton.instance_id)
        return skeleton.instance_id

    def shutdown(self, oid: str, instance_id: str) -> bool:
        with self._lock:
            skeleton = self._instances.get(oid, {}).pop(instance_id, None)
        if skeleton is None:
            return False
        self.broker.unbind(skeleton)
        logger.info("%s shut down %s", self.broker_name, instance_id)
        return True
