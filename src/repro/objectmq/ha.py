"""Supervisor high availability: election-driven failover (§3.4).

Ties the pieces together: a :class:`SupervisorNode` participates in the
heartbeat/election protocol of :mod:`repro.objectmq.leader_election` and,
when elected, builds and runs a fresh :class:`Supervisor` from a factory.
The active node heartbeats on every control step, so standbys detect its
death and the lowest-id survivor takes over — "whenever the actual
Supervisor crashes, a leader-election algorithm will be called using the
unique identifier of the Brokers".
"""

from __future__ import annotations

import threading
from typing import Callable, Optional

from repro.objectmq.leader_election import HeartbeatEmitter, LeaderElector
from repro.objectmq.supervisor import Supervisor


class SupervisorNode:
    """One participant in the HA supervisor group.

    Args:
        mom: The shared MOM system.
        supervisor_factory: Builds a fresh, unstarted Supervisor when
            this node becomes leader.
        node_id: Stable unique identifier; the *smallest* id among the
            election participants wins.
        heartbeat_timeout: Seconds of heartbeat silence before standbys
            start an election.
        settle_window: Candidate-collection window of the election.
    """

    def __init__(
        self,
        mom,
        supervisor_factory: Callable[[], Supervisor],
        node_id: str,
        heartbeat_timeout: float = 3.0,
        settle_window: float = 0.5,
        clock=None,
    ):
        self.mom = mom
        self.supervisor_factory = supervisor_factory
        self.node_id = node_id
        self._lock = threading.Lock()
        self.supervisor: Optional[Supervisor] = None
        self._heartbeat: Optional[HeartbeatEmitter] = None
        self._background = False
        kwargs = {"clock": clock} if clock is not None else {}
        self.elector = LeaderElector(
            mom,
            participant_id=node_id,
            heartbeat_timeout=heartbeat_timeout,
            settle_window=settle_window,
            on_elected=self._promote,
            **kwargs,
        )

    # -- leadership ----------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.elector.is_leader

    def lead(self) -> Supervisor:
        """Become the initial leader explicitly (bootstrap path)."""
        self.elector.is_leader = True
        self._promote()
        return self.supervisor

    def _promote(self) -> None:
        with self._lock:
            if self.supervisor is not None:
                return
            supervisor = self.supervisor_factory()
            heartbeat = HeartbeatEmitter(self.mom, supervisor_id=self.node_id)
            supervisor.set_heartbeat_callback(heartbeat.beat)
            self.supervisor = supervisor
            self._heartbeat = heartbeat
            background = self._background
        if background:
            supervisor.start()

    # -- operation -------------------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        """Deterministic single step (tests): election tick + one control
        period when leading."""
        self.elector.tick(now)
        with self._lock:
            supervisor = self.supervisor
        if supervisor is not None:
            supervisor.step()

    def start(self, poll_interval: float = 0.2) -> None:
        """Run in the background: elector always, supervisor when leading."""
        with self._lock:
            self._background = True
            supervisor = self.supervisor
        self.elector.start(poll_interval)
        if supervisor is not None:
            supervisor.start()

    def crash(self) -> None:
        """Simulate the node dying: supervisor and heartbeats stop."""
        self.stop()

    def stop(self) -> None:
        self.elector.stop()
        with self._lock:
            supervisor, self.supervisor = self.supervisor, None
            heartbeat, self._heartbeat = self._heartbeat, None
        if supervisor is not None:
            supervisor.stop()
        if heartbeat is not None:
            heartbeat.stop()
