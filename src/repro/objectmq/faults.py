"""Fault-injection helpers for the reliability experiments.

The Fig 8(f) experiment programs a SyncService instance to crash every 30
seconds and measures how the Supervisor's one-second census loop restores
service.  :class:`CrashInjector` reproduces that: on a fixed period it
crashes one live instance of the target oid (abrupt ``kill``, so in-flight
messages are redelivered) and lets the Supervisor respawn it.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.objectmq.remote_broker import RemoteBroker


class CrashInjector:
    """Periodically crash one instance of *oid* across a RemoteBroker fleet."""

    def __init__(
        self,
        remote_brokers: List[RemoteBroker],
        oid: str,
        period: float = 30.0,
        on_crash: Optional[Callable[[str], None]] = None,
    ):
        if period <= 0:
            raise ValueError("period must be positive")
        self.remote_brokers = list(remote_brokers)
        self.oid = oid
        self.period = period
        self.on_crash = on_crash
        self.crash_count = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def crash_one(self) -> Optional[str]:
        """Crash the first live instance found; returns its id or None."""
        for rbroker in self.remote_brokers:
            instances = rbroker.instances_for(self.oid)
            for instance_id in instances:
                if rbroker.crash_instance(self.oid, instance_id):
                    self.crash_count += 1
                    if self.on_crash is not None:
                        self.on_crash(instance_id)
                    return instance_id
        return None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(self.period):
                self.crash_one()

        self._thread = threading.Thread(target=run, name="crash-injector", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
