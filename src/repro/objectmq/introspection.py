"""Introspection: the paper's ``HasObjectInfo`` hook (§3.3, Fig 3).

Every bound remote object carries an :class:`ObjectInfo` that its skeleton
updates on each invocation: processed counts, service-time statistics, and
whether the instance is currently busy.  Provisioners consume snapshots of
these to decide "messages are not being processed at the adequate speed —
ask for another server instance", or "one server is idle — suppress it".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ObjectInfoSnapshot:
    """Immutable view of one instance's statistics at a point in time.

    ``captured_at`` is a **monotonic** stamp taken when the snapshot was
    built; consumers (the Supervisor) use :meth:`age` to discard stale
    snapshots instead of trusting any snapshot regardless of age.  It is
    None only for snapshots produced by pre-telemetry peers.
    """

    oid: str
    instance_id: str
    broker_id: str
    processed: int
    errors: int
    busy: bool
    mean_service_time: float
    service_time_variance: float
    last_invocation_at: Optional[float]
    uptime: float
    captured_at: Optional[float] = None

    def age(self, now: Optional[float] = None) -> float:
        """Seconds since capture (0.0 when the stamp is unknown)."""
        if self.captured_at is None:
            return 0.0
        now = time.monotonic() if now is None else now
        return max(0.0, now - self.captured_at)

    def is_stale(self, horizon: float, now: Optional[float] = None) -> bool:
        """True when the snapshot is older than *horizon* seconds.

        Unstamped snapshots are treated as stale: a peer that cannot say
        when it measured should not steer the provisioner.
        """
        if self.captured_at is None:
            return True
        return self.age(now) > horizon

    def to_wire(self) -> dict:
        return {
            "oid": self.oid,
            "instance_id": self.instance_id,
            "broker_id": self.broker_id,
            "processed": self.processed,
            "errors": self.errors,
            "busy": self.busy,
            "mean_service_time": self.mean_service_time,
            "service_time_variance": self.service_time_variance,
            "last_invocation_at": self.last_invocation_at,
            "uptime": self.uptime,
            "captured_at": self.captured_at,
        }

    @classmethod
    def from_wire(cls, data: dict) -> "ObjectInfoSnapshot":
        return cls(**data)


class ObjectInfo:
    """Mutable, thread-safe per-instance statistics (Welford online stats)."""

    def __init__(self, oid: str, instance_id: str, broker_id: str = ""):
        self.oid = oid
        self.instance_id = instance_id
        self.broker_id = broker_id
        self._lock = threading.Lock()
        self._processed = 0
        self._errors = 0
        self._busy = False
        self._mean = 0.0
        self._m2 = 0.0
        self._last_invocation_at: Optional[float] = None
        self._started_at = time.time()

    def invocation_started(self) -> None:
        with self._lock:
            self._busy = True

    def invocation_finished(self, service_time: float, error: bool = False) -> None:
        with self._lock:
            self._busy = False
            self._processed += 1
            if error:
                self._errors += 1
            self._last_invocation_at = time.time()
            delta = service_time - self._mean
            self._mean += delta / self._processed
            self._m2 += delta * (service_time - self._mean)

    def snapshot(self) -> ObjectInfoSnapshot:
        with self._lock:
            variance = self._m2 / (self._processed - 1) if self._processed > 1 else 0.0
            return ObjectInfoSnapshot(
                oid=self.oid,
                instance_id=self.instance_id,
                broker_id=self.broker_id,
                processed=self._processed,
                errors=self._errors,
                busy=self._busy,
                mean_service_time=self._mean,
                service_time_variance=variance,
                last_invocation_at=self._last_invocation_at,
                uptime=time.time() - self._started_at,
                captured_at=time.monotonic(),
            )

    def scrape(self) -> dict:
        """Registry-source view (see :mod:`repro.telemetry.registry`)."""
        snap = self.snapshot()
        return {
            "processed": snap.processed,
            "errors": snap.errors,
            "busy": int(snap.busy),
            "mean_service_seconds": snap.mean_service_time,
            "service_variance": snap.service_time_variance,
            "uptime_seconds": snap.uptime,
        }


class HasObjectInfo:
    """Mixin for remote objects that expose their statistics.

    The ObjectMQ skeleton attaches an :class:`ObjectInfo` to any bound
    object (whether or not it subclasses this mixin); subclassing simply
    gives application code typed access to ``self.object_info``.
    """

    object_info: Optional[ObjectInfo] = None


@dataclass
class PoolObservation:
    """What a Provisioner sees each control period (paper Fig 3).

    Combines queue-level metrics from the MOM broker (arrival rate, depth)
    with instance-level metrics from ObjectInfo snapshots.
    """

    oid: str
    timestamp: float
    instance_count: int
    queue_depth: int
    arrival_rate: float  # requests/second observed over the last period
    interarrival_variance: float
    mean_service_time: float
    service_time_variance: float
    instances: List[ObjectInfoSnapshot] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        """Offered load ρ = λ·s / n (dimensionless)."""
        if self.instance_count == 0:
            return float("inf") if self.arrival_rate > 0 else 0.0
        return self.arrival_rate * self.mean_service_time / self.instance_count
