"""Supervisor failover via leader election among Brokers (§3.4).

"Whenever the actual Supervisor crashes, a leader-election algorithm will
be called using the unique identifier of the Brokers."

Mechanics, kept deliberately simple and MOM-native:

* the live Supervisor multicasts heartbeats on the fanout exchange
  ``omq.supervisor.heartbeat``;
* every participant (normally a RemoteBroker host) subscribes a private
  queue to that exchange and tracks the last heartbeat;
* on heartbeat timeout, a participant multicasts its candidate id on
  ``omq.supervisor.election``; every participant that sees an election in
  progress joins with its own id;
* after a settle window, the *smallest* id among the observed candidates
  wins; the winner invokes its ``on_elected`` callback (which typically
  constructs and starts a new Supervisor) and resumes heartbeating.

The deterministic min-id rule means all participants agree without extra
rounds, at the price of a potential duplicated supervisor under message
loss — acceptable because Supervisor actions are reconciliations
(idempotent against the census), mirroring the paper's pragmatic stance.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Callable, Optional, Set

from repro.mom.message import Delivery, Message

HEARTBEAT_EXCHANGE = "omq.supervisor.heartbeat"
ELECTION_EXCHANGE = "omq.supervisor.election"


class HeartbeatEmitter:
    """Publishes supervisor liveness beacons on the heartbeat fanout."""

    def __init__(self, mom, supervisor_id: str, interval: float = 1.0):
        self.mom = mom
        self.supervisor_id = supervisor_id
        self.interval = interval
        self.mom.declare_exchange(HEARTBEAT_EXCHANGE, "fanout")
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def beat(self) -> None:
        """Publish a single heartbeat (call from the supervisor's step)."""
        body = self.supervisor_id.encode("utf-8")
        try:
            self.mom.publish(HEARTBEAT_EXCHANGE, "", Message(body))
        except Exception:  # no subscribers yet: harmless
            pass

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="sup-heartbeat", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()


class LeaderElector:
    """One participant in the supervisor-failover election."""

    def __init__(
        self,
        mom,
        participant_id: Optional[str] = None,
        heartbeat_timeout: float = 3.0,
        settle_window: float = 0.5,
        on_elected: Optional[Callable[[], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.mom = mom
        self.participant_id = participant_id or uuid.uuid4().hex
        self.heartbeat_timeout = heartbeat_timeout
        self.settle_window = settle_window
        self.on_elected = on_elected
        self.clock = clock

        self._lock = threading.Lock()
        self._last_heartbeat: float = clock()
        self._candidates: Set[str] = set()
        self._election_started_at: Optional[float] = None
        self.is_leader = False

        self._hb_queue = f"hb.{self.participant_id}"
        self._el_queue = f"el.{self.participant_id}"
        mom.declare_exchange(HEARTBEAT_EXCHANGE, "fanout")
        mom.declare_exchange(ELECTION_EXCHANGE, "fanout")
        mom.declare_queue(self._hb_queue, exclusive=True)
        mom.declare_queue(self._el_queue, exclusive=True)
        mom.bind_queue(HEARTBEAT_EXCHANGE, self._hb_queue)
        mom.bind_queue(ELECTION_EXCHANGE, self._el_queue)
        mom.consume(self._hb_queue, self._on_heartbeat, f"hbc.{self.participant_id}", auto_ack=True)
        mom.consume(self._el_queue, self._on_candidate, f"elc.{self.participant_id}", auto_ack=True)

        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- message handlers --------------------------------------------------------

    def _on_heartbeat(self, delivery: Delivery) -> None:
        with self._lock:
            self._last_heartbeat = self.clock()
            # A live supervisor cancels any election in progress.
            self._election_started_at = None
            self._candidates.clear()

    def _on_candidate(self, delivery: Delivery) -> None:
        candidate = delivery.message.body.decode("utf-8")
        announce = False
        with self._lock:
            if (
                self._election_started_at is None
                and self.clock() - self._last_heartbeat <= self.heartbeat_timeout
            ):
                # A candidacy while the supervisor looks alive is noise —
                # typically the delayed fanout echo of an election a
                # heartbeat already cancelled.  Don't (re)join.
                return
            self._candidates.add(candidate)
            if self._election_started_at is None:
                # Someone else started an election; join it.
                self._election_started_at = self.clock()
                announce = True
        if announce:
            self._announce_candidacy()

    def _announce_candidacy(self) -> None:
        body = self.participant_id.encode("utf-8")
        try:
            self.mom.publish(ELECTION_EXCHANGE, "", Message(body))
        except Exception:
            pass

    # -- state machine -----------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> None:
        """Advance the failure-detector/election state machine one step."""
        now = self.clock() if now is None else now
        start_election = False
        decide = False
        with self._lock:
            if self.is_leader:
                return
            if self._election_started_at is None:
                if now - self._last_heartbeat > self.heartbeat_timeout:
                    self._election_started_at = now
                    self._candidates.add(self.participant_id)
                    start_election = True
            elif now - self._election_started_at >= self.settle_window:
                decide = True
        if start_election:
            self._announce_candidacy()
        if decide:
            self._decide(now)

    def _decide(self, now: float) -> None:
        with self._lock:
            candidates = set(self._candidates) | {self.participant_id}
            winner = min(candidates)
            self._election_started_at = None
            self._candidates.clear()
            self._last_heartbeat = now  # fresh grace period either way
            if winner != self.participant_id:
                return
            self.is_leader = True
        if self.on_elected is not None:
            self.on_elected()

    # -- background operation ------------------------------------------------------

    def start(self, poll_interval: float = 0.2) -> None:
        if self._thread is not None:
            return
        self._stop.clear()

        def run() -> None:
            while not self._stop.wait(poll_interval):
                self.tick()

        self._thread = threading.Thread(target=run, name=f"elector-{self.participant_id[:6]}", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        for queue, tag in (
            (self._hb_queue, f"hbc.{self.participant_id}"),
            (self._el_queue, f"elc.{self.participant_id}"),
        ):
            try:
                self.mom.cancel(queue, tag)
                self.mom.delete_queue(queue)
            except Exception:
                pass
