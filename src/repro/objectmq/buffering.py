"""Publisher-side buffering with explicit backpressure.

The MOM broker charges every publish a full cycle: latency model, routing,
queue lock, dispatch, stats.  For fire-and-forget casts (the
``commitRequest`` hot path) none of that needs to happen per message — a
:class:`PublishBuffer` parks casts client-side and hands the broker a whole
run of them through :meth:`~repro.mom.broker_server.MessageBroker.publish_many`,
so N casts cost one broker round trip, one queue lock cycle per destination
queue, and one stats update.

Semantics:

* **Bounded + backpressure** — the buffer holds at most ``max_messages``
  casts.  The publish that fills it flushes *inline on the publishing
  thread*: a fast producer is slowed to the broker's drain rate instead of
  growing an unbounded client-side queue.
* **Flush deadline** — a background flusher guarantees no cast waits more
  than ``flush_deadline`` seconds, so a trickle of casts is never parked
  indefinitely.  The thread starts lazily on the first buffered cast.
* **Ordering** — FIFO within the buffer and preserved through
  ``publish_many``; the owning ObjectMQ Broker flushes before every
  unbuffered (sync) publish, so cross-call ordering from one client is
  exactly what an unbuffered client would produce.
* **At-least-once** — a cast is "sent" once the flush hands it to the
  broker; :meth:`close` performs a final synchronous flush, so a graceful
  shutdown never drops buffered casts.  (A hard client crash loses casts
  the broker never saw — the same window an unbuffered publisher has
  between deciding to send and ``publish`` returning.)

Telemetry rides along untouched: TraceContext is already inside the
envelope/headers when the message enters the buffer, and queue-wait spans
are stamped from broker-side enqueue time, so batching is visible as
(bounded) extra client-side latency, never as corrupted spans.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import List, Optional, Tuple

from repro.mom.message import Message
from repro.telemetry.registry import REGISTRY

logger = logging.getLogger(__name__)

#: Default flush deadline: casts wait at most this long (seconds).
DEFAULT_FLUSH_DEADLINE = 0.002


class PublishBuffer:
    """Bounded client-side buffer amortizing broker publish cycles.

    Args:
        mom: The message broker (or cluster/adapter) flushed into.  Uses
            ``publish_many`` when the target offers it, falling back to
            per-message ``publish`` (e.g. the SQS adapter).
        max_messages: Buffer capacity; the filling publish flushes inline
            (backpressure).
        flush_deadline: Upper bound on how long a buffered cast may wait
            before the background flusher pushes it out.
        name: Label for the metrics source (normally the client id).
    """

    def __init__(
        self,
        mom,
        max_messages: int = 64,
        flush_deadline: float = DEFAULT_FLUSH_DEADLINE,
        name: str = "",
    ):
        if max_messages < 1:
            raise ValueError("max_messages must be >= 1")
        if flush_deadline <= 0:
            raise ValueError("flush_deadline must be > 0")
        self._mom = mom
        self.max_messages = max_messages
        self.flush_deadline = flush_deadline
        self.name = name
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._pending: List[Tuple[str, str, Message]] = []
        self._oldest_at = 0.0
        self._closed = False
        self._flusher: Optional[threading.Thread] = None
        # Counters (all mutated under self._lock, scraped at snapshot).
        self.flushes = 0
        self.flushed_messages = 0
        self.size_flushes = 0
        self.deadline_flushes = 0
        self._source_token = REGISTRY.register_source(
            "omq_publish_buffer",
            self,
            PublishBuffer._scrape,
            client=name or "anonymous",
        )

    def _scrape(self) -> dict:
        with self._lock:
            return {
                "pending": float(len(self._pending)),
                "flushes": float(self.flushes),
                "flushed_messages": float(self.flushed_messages),
                "size_flushes": float(self.size_flushes),
                "deadline_flushes": float(self.deadline_flushes),
            }

    # -- producing ------------------------------------------------------------

    def publish(self, exchange_name: str, routing_key: str, message: Message) -> None:
        """Buffer one cast; flushes inline when the buffer is full."""
        flush_now = False
        with self._lock:
            if self._closed:
                # Late cast after close: degrade to a direct publish so
                # nothing is silently dropped.
                direct = True
            else:
                direct = False
                if not self._pending:
                    # Empty -> non-empty transition: (re)arm the deadline
                    # and wake the flusher so its wait is re-computed
                    # against the new oldest cast.  Later appends don't
                    # notify — the deadline they inherit is already armed,
                    # and a per-cast wakeup would cost a thread switch on
                    # every publish.
                    self._oldest_at = time.monotonic()
                    if self._flusher is None:
                        self._start_flusher_locked()
                    else:
                        self._wake.notify()
                self._pending.append((exchange_name, routing_key, message))
                if len(self._pending) >= self.max_messages:
                    flush_now = True
        if direct:
            self._mom.publish(exchange_name, routing_key, message)
        elif flush_now:
            # Backpressure: the producing thread pays the broker flush.
            self.flush(reason="size")

    def flush(self, reason: str = "explicit") -> int:
        """Synchronously drain the buffer into the broker.

        Returns the number of messages flushed.  Safe to call from any
        thread; concurrent flushes each take whatever is pending at their
        turn, so ordering within one flush batch is preserved.
        """
        with self._lock:
            batch, self._pending = self._pending, []
            if not batch:
                return 0
            self.flushes += 1
            self.flushed_messages += len(batch)
            if reason == "size":
                self.size_flushes += 1
            elif reason == "deadline":
                self.deadline_flushes += 1
        self._deliver(batch)
        return len(batch)

    def _deliver(self, batch: List[Tuple[str, str, Message]]) -> None:
        publish_many = getattr(self._mom, "publish_many", None)
        if publish_many is not None:
            publish_many(batch)
            return
        for exchange_name, routing_key, message in batch:
            self._mom.publish(exchange_name, routing_key, message)

    # -- background deadline flusher -------------------------------------------

    def _start_flusher_locked(self) -> None:
        label = self.name or f"{id(self):x}"
        self._flusher = threading.Thread(
            target=self._run_flusher,
            name=f"publish-buffer-{label}",
            daemon=True,
        )
        self._flusher.start()

    def _run_flusher(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
                if not self._pending:
                    self._wake.wait(self.flush_deadline)
                    continue
                due_in = self._oldest_at + self.flush_deadline - time.monotonic()
                if due_in > 0:
                    self._wake.wait(due_in)
                    continue
            try:
                self.flush(reason="deadline")
            except Exception:  # noqa: BLE001 - keep the flusher alive
                logger.exception("publish-buffer deadline flush failed")

    # -- introspection / lifecycle ----------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        """Final flush, then stop accepting buffered casts."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wake.notify_all()
            flusher = self._flusher
        if self._source_token is not None:
            REGISTRY.unregister_source(self._source_token)
            self._source_token = None
        self.flush(reason="close")
        if flusher is not None:
            flusher.join(timeout=1.0)
