"""Future-based invocation: non-blocking @SyncMethod calls.

The paper's conclusions ask whether ObjectMQ's "invocation abstractions
can be generalized".  This module adds one natural generalization: every
``@sync_method`` on a proxy gains a ``begin_<name>()`` companion that
publishes the request and immediately returns a :class:`RemoteFuture`;
the reply (or remote error) completes the future asynchronously.  Several
calls can then be in flight from one thread, with results collected in
any order::

    futures = [proxy.begin_get_changes(ws) for ws in workspaces]
    states = [f.result(timeout=5.0) for f in futures]
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.errors import RemoteInvocationError, RemoteTimeout


class RemoteFuture:
    """Completion handle for one in-flight sync invocation."""

    def __init__(self, on_finalize: Optional[Callable[[], None]] = None):
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._callbacks = []
        self._on_finalize = on_finalize

    # -- completion (called by the reply router) -----------------------------------

    def set_result(self, value: Any) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._result = value
            self._event.set()
            callbacks = list(self._callbacks)
        self._finalize()
        for callback in callbacks:
            callback(self)

    def set_error(self, error: BaseException) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self._error = error
            self._event.set()
            callbacks = list(self._callbacks)
        self._finalize()
        for callback in callbacks:
            callback(self)

    def _finalize(self) -> None:
        if self._on_finalize is not None:
            try:
                self._on_finalize()
            finally:
                self._on_finalize = None

    # -- consumption -----------------------------------------------------------------

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the reply; raises the remote error or RemoteTimeout."""
        if not self._event.wait(timeout):
            self._finalize()
            raise RemoteTimeout(
                f"no reply within {timeout}s" if timeout else "no reply"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            self._finalize()
            raise RemoteTimeout(
                f"no reply within {timeout}s" if timeout else "no reply"
            )
        return self._error

    def add_done_callback(self, callback: Callable[["RemoteFuture"], None]) -> None:
        """Run *callback(future)* on completion (immediately if done)."""
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)
