"""The ObjectMQ Broker: ``bind`` / ``lookup`` over a MOM system (§3.1).

This is the ``omq.Broker`` of the paper.  It connects to a message broker
(:class:`repro.mom.MessageBroker` or a :class:`repro.mom.BrokerCluster`)
and exposes two primitives:

* :meth:`Broker.bind(oid, remote_object)` — bind an object instance under
  the identifier *oid*.  Creates (idempotently) the shared unicast queue
  named ``oid``, a fanout exchange ``oid.multi`` for multicast, and a
  private per-instance queue bound to that exchange.  Binding several
  objects under one *oid* yields transparent load balancing: the MOM
  delivers each unicast RPC to the first idle instance.

* :meth:`Broker.lookup(oid, interface)` — return a dynamic client stub
  (:class:`~repro.objectmq.proxy.Proxy`) for a @remote_interface class.
  No registry lookup happens; knowing the queue name is enough.

There is no stub compilation step and no client-side server list: scaling
the server pool up or down never touches clients.
"""

from __future__ import annotations

import logging
import threading
import uuid
from typing import Any, Dict, Optional, Type

from repro.errors import BindingError, ObjectMqError
from repro.mom.message import Delivery, Message
from repro.objectmq.annotations import interface_specs
from repro.objectmq.buffering import DEFAULT_FLUSH_DEADLINE, PublishBuffer
from repro.objectmq.naming import multi_exchange_name, response_queue_name
from repro.objectmq.proxy import Proxy
from repro.objectmq.skeleton import Skeleton
from repro.serialization import Serializer, make_serializer

logger = logging.getLogger(__name__)


class _ReplyRouter:
    """Demultiplexes replies arriving on this broker's response queue.

    Every Broker (client side) owns exactly one response queue — "every
    stub has its own queue to receive responses" in the paper maps to one
    queue per connected Broker, shared by all its proxies and keyed by
    correlation id.
    """

    def __init__(self, codec: Serializer):
        self._codec = codec
        self._lock = threading.Lock()
        self._waiters: Dict[str, "_Waiter"] = {}

    def register(self, correlation_id: str) -> "_Waiter":
        waiter = _Waiter()
        with self._lock:
            self._waiters[correlation_id] = waiter
        return waiter

    def unregister(self, correlation_id: str) -> None:
        with self._lock:
            self._waiters.pop(correlation_id, None)

    def on_delivery(self, delivery: Delivery) -> None:
        try:
            envelope = self._codec.decode(delivery.message.body)
        except ObjectMqError:
            logger.warning("dropping undecodable reply on %s", delivery.queue_name)
            return
        correlation_id = envelope.get("correlation_id")
        with self._lock:
            waiter = self._waiters.get(correlation_id)
        if waiter is None:
            # A reply for a call that already timed out / completed: stale
            # retries make this normal, not an error.
            logger.debug("dropping stale reply %s", correlation_id)
            return
        waiter.put(envelope)


class _Waiter:
    """A blocking mailbox collecting reply envelopes for one call.

    Setting :attr:`on_put` switches the waiter into callback mode (used
    by the future-based invocation path): replies are handed to the
    callback instead of being buffered.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._replies: list = []
        self.on_put = None

    def put(self, envelope: dict) -> None:
        with self._ready:
            callback = self.on_put
            if callback is None:
                self._replies.append(envelope)
                self._ready.notify_all()
        if callback is not None:
            callback(envelope)

    def take(self, timeout: float) -> Optional[dict]:
        """Wait up to *timeout* seconds for the next reply."""
        with self._ready:
            if not self._replies:
                self._ready.wait(timeout)
            if self._replies:
                return self._replies.pop(0)
            return None

    def drain(self) -> list:
        with self._lock:
            replies, self._replies = self._replies, []
            return replies


class Broker:
    """ObjectMQ entry point: one connection to the MOM system.

    Args:
        mom: The message broker (or cluster) to communicate through.
        environment: Optional configuration; recognised keys are
            ``codec`` (``"pickle"`` | ``"json"`` | ``"binary"``, default
            pickle), ``client_id`` (stable id for the response queue),
            ``publish_buffer`` (max buffered async casts; 0 — the default
            — publishes every cast immediately) and
            ``publish_flush_deadline`` (seconds a buffered cast may wait
            before the background flusher pushes it out; default
            :data:`~repro.objectmq.buffering.DEFAULT_FLUSH_DEADLINE`).
    """

    def __init__(self, mom, environment: Optional[Dict[str, Any]] = None):
        environment = dict(environment or {})
        self.mom = mom
        self.client_id: str = environment.get("client_id") or uuid.uuid4().hex[:12]
        self.codec: Serializer = make_serializer(environment.get("codec", "pickle"))
        self._lock = threading.Lock()
        self._skeletons: Dict[str, Skeleton] = {}
        self._closed = False
        # Call context: headers attached to every outgoing request from
        # this Broker's proxies (auth tokens, tracing ids, ...).  Server
        # skeletons hand it to their interceptors.
        self.call_context: Dict[str, Any] = {}
        # Publisher-side buffering (opt-in): async casts from this
        # Broker's proxies are batched into publish_many flushes.
        buffer_size = int(environment.get("publish_buffer", 0) or 0)
        if buffer_size > 0:
            flush_deadline = float(
                environment.get("publish_flush_deadline", DEFAULT_FLUSH_DEADLINE)
            )
            self._publish_buffer: Optional[PublishBuffer] = PublishBuffer(
                mom,
                max_messages=buffer_size,
                flush_deadline=flush_deadline,
                name=self.client_id,
            )
        else:
            self._publish_buffer = None

        self.response_queue_name = response_queue_name(self.client_id)
        self.mom.declare_queue(self.response_queue_name, exclusive=True)
        self._reply_router = _ReplyRouter(self.codec)
        self._reply_consumer_tag = f"replies.{self.client_id}"
        self.mom.consume(
            self.response_queue_name,
            self._reply_router.on_delivery,
            consumer_tag=self._reply_consumer_tag,
            prefetch=64,
            auto_ack=True,
        )

    # -- server side ------------------------------------------------------------

    def bind(
        self, oid: str, remote_object: Any, prefetch: int = 1, interceptors=None
    ) -> Skeleton:
        """Bind *remote_object* under *oid* and start serving RPCs.

        Returns the :class:`Skeleton` handle, whose ``instance_id``
        identifies this particular instance (for shutdown and
        introspection) and whose ``object_info`` exposes live statistics.

        *interceptors* is an optional list of callables
        ``(method, args, kwargs, context) -> None`` executed before every
        invocation; raising aborts the call and reports the error to the
        caller (sync) or drops it (async).  This is the hook the security
        services plug into (:mod:`repro.sync.auth`).
        """
        if remote_object is None:
            raise BindingError("cannot bind None")
        self._check_open()
        skeleton = Skeleton(
            broker=self,
            oid=oid,
            target=remote_object,
            prefetch=prefetch,
            interceptors=interceptors,
        )
        with self._lock:
            self._skeletons[skeleton.instance_id] = skeleton
        skeleton.start()
        return skeleton

    def unbind(self, skeleton: Skeleton) -> None:
        """Gracefully remove one bound instance."""
        with self._lock:
            self._skeletons.pop(skeleton.instance_id, None)
        skeleton.stop()

    def bound_instances(self, oid: Optional[str] = None) -> Dict[str, Skeleton]:
        with self._lock:
            return {
                iid: sk
                for iid, sk in self._skeletons.items()
                if oid is None or sk.oid == oid
            }

    # -- client side -------------------------------------------------------------

    def lookup(self, oid: str, interface: Type) -> Any:
        """Return a dynamic proxy implementing *interface* against *oid*.

        The interface must be decorated with
        :func:`~repro.objectmq.annotations.remote_interface`; validation
        happens here so misuse fails at lookup time, not call time.
        """
        self._check_open()
        specs = interface_specs(interface)
        return Proxy(broker=self, oid=oid, specs=specs, interface_name=interface.__name__)

    def lookup_sharded(self, oid: str, interface: Type, shards: int, route_arg: int = 0):
        """Proxy for a partitioned oid: calls route by their first argument.

        Returns a :class:`~repro.objectmq.sharding.ShardedProxy` covering
        ``oid.shard.0`` … ``oid.shard.{shards-1}``.  ``shards=1`` is a
        valid degenerate deployment (one partition, same semantics).
        """
        from repro.objectmq.sharding import ShardedProxy

        self._check_open()
        return ShardedProxy(self, oid, interface, shards, route_arg=route_arg)

    # -- plumbing shared with Proxy/Skeleton ------------------------------------------

    def register_waiter(self, correlation_id: str) -> _Waiter:
        return self._reply_router.register(correlation_id)

    def unregister_waiter(self, correlation_id: str) -> None:
        self._reply_router.unregister(correlation_id)

    @property
    def publish_buffer(self) -> Optional[PublishBuffer]:
        """The publisher-side cast buffer, or None when disabled."""
        return self._publish_buffer

    def publish_buffered(
        self, exchange_name: str, routing_key: str, message: Message
    ) -> bool:
        """Buffer a fire-and-forget cast if buffering is enabled.

        Returns True when the message was accepted into the buffer (it
        will reach the broker within the flush deadline); False when
        buffering is off and the caller must publish directly.
        """
        buffer = self._publish_buffer
        if buffer is None:
            return False
        buffer.publish(exchange_name, routing_key, message)
        return True

    def multicast_has_listeners(self, oid: str) -> bool:
        """True when at least one instance is bound to *oid*'s fanout.

        Cheaper than :meth:`Proxy.has_multicast_listeners` for callers
        that have not built a proxy yet: probing a missing exchange is a
        plain negative (no declaration, no proxy construction), so a
        server can skip notification plumbing for quiet oids entirely.
        Racing a concurrent bind is benign — identical to publishing
        just before it.
        """
        has_bindings = getattr(self.mom, "exchange_has_bindings", None)
        if has_bindings is None:
            # Adapter without the probe (e.g. SQS): assume listeners.
            return True
        return has_bindings(multi_exchange_name(oid))

    def flush_publishes(self) -> int:
        """Drain any buffered casts to the broker; no-op when disabled.

        Called by proxies before every unbuffered (sync/multicast)
        publish so one client's observable publish order is identical to
        an unbuffered client's.
        """
        buffer = self._publish_buffer
        if buffer is None:
            return 0
        return buffer.flush()

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            skeletons = list(self._skeletons.values())
            self._skeletons.clear()
        if self._publish_buffer is not None:
            # Final flush first: buffered casts must reach the broker
            # before this client disappears (at-least-once on shutdown).
            self._publish_buffer.close()
        for skeleton in skeletons:
            skeleton.stop()
        try:
            self.mom.cancel(self.response_queue_name, self._reply_consumer_tag)
            self.mom.delete_queue(self.response_queue_name)
        except ObjectMqError:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise ObjectMqError(f"Broker {self.client_id} is closed")

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
