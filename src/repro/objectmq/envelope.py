"""Wire envelopes for ObjectMQ requests and replies.

Envelopes are plain dicts (so every codec can carry them) with a small
schema::

    request:  {"method": str, "args": list, "kwargs": dict,
               "call": "sync" | "async", "multi": bool,
               "correlation_id": str | None, "reply_to": str | None,
               "sent_at": float}
    reply:    {"correlation_id": str, "ok": bool,
               "result": any | None, "error": str | None,
               "responder": str}
"""

from __future__ import annotations

import time
import uuid
from typing import Any, Dict, List, Optional


def new_correlation_id() -> str:
    return uuid.uuid4().hex


def make_request(
    method: str,
    args: List[Any],
    kwargs: Dict[str, Any],
    call: str,
    multi: bool,
    reply_to: Optional[str] = None,
    correlation_id: Optional[str] = None,
    clock: Optional[float] = None,
) -> Dict[str, Any]:
    return {
        "method": method,
        "args": list(args),
        "kwargs": dict(kwargs),
        "call": call,
        "multi": multi,
        "correlation_id": correlation_id,
        "reply_to": reply_to,
        "sent_at": time.time() if clock is None else clock,
    }


def make_reply(
    correlation_id: str,
    result: Any = None,
    error: Optional[str] = None,
    responder: str = "",
) -> Dict[str, Any]:
    return {
        "correlation_id": correlation_id,
        "ok": error is None,
        "result": result,
        "error": error,
        "responder": responder,
    }


def is_request(envelope: Dict[str, Any]) -> bool:
    return "method" in envelope


def is_reply(envelope: Dict[str, Any]) -> bool:
    return "ok" in envelope and "method" not in envelope
