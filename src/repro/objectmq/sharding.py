"""Client-side routing over a partitioned oid (the sharded commit path).

The paper's SyncService pool consumes *one* shared request queue — the
right design while the single metadata server is the bottleneck, but
once the metadata plane is sharded
(:class:`~repro.metadata.sharded.ShardedMetadataBackend`) one queue
re-serializes what the back-end just parallelized.  A
:class:`ShardedProxy` completes the partition end to end: the base oid
becomes N real oids (``sync.shard.0`` … ``sync.shard.N-1``, see
:func:`~repro.objectmq.naming.shard_oid`), each with its own request
queue and instance pool, and every call routes to exactly one of them by
consistent-hashing its first positional argument — the workspace-scoped
routing key that every ``SyncServiceApi`` method already leads with.

Clients and servers need only agree on the shard count: the hash ring is
deterministic across processes, so there is still no registry and no
server list, exactly as in the unsharded design.  @MultiMethod calls
broadcast to every shard's ``.multi`` exchange and aggregate, preserving
fanout semantics for pool-wide operations.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional, Type

from repro.objectmq.annotations import CallSpec, interface_specs
from repro.objectmq.naming import shard_oid
from repro.routing.shard import ShardRouter


class ShardedProxy:
    """Dynamic stub routing each call to one shard of a partitioned oid.

    Args:
        broker: The connected :class:`~repro.objectmq.broker.Broker`.
        oid: Base object identifier (e.g. ``"sync"``).
        interface: The @remote_interface class, same as ``lookup``.
        num_shards: How many partitions ``oid`` is split into.
        router: Optional pre-built router (must match *num_shards*).
        route_arg: Index of the positional argument used as routing key.
    """

    def __init__(
        self,
        broker,
        oid: str,
        interface: Type,
        num_shards: int,
        router: Optional[ShardRouter] = None,
        route_arg: int = 0,
    ):
        if router is not None and router.num_shards != num_shards:
            raise ValueError(
                f"router covers {router.num_shards} shards, expected {num_shards}"
            )
        specs = interface_specs(interface)
        self._oid = oid
        self._interface_name = interface.__name__
        self._route_arg = route_arg
        self.router = router or ShardRouter(num_shards)
        self._proxies = [
            broker.lookup(shard_oid(oid, shard), interface)
            for shard in range(num_shards)
        ]
        self._route_counts = [0] * num_shards
        self._lock = threading.Lock()
        for method_name, spec in specs.items():
            setattr(self, method_name, self._make_method(method_name, spec))

    def __repr__(self) -> str:
        return (
            f"<ShardedProxy {self._interface_name} -> {self._oid!r} "
            f"x{self.num_shards}>"
        )

    @property
    def num_shards(self) -> int:
        return len(self._proxies)

    def shard_for(self, key: Any) -> int:
        """Shard index that calls keyed by *key* are routed to."""
        return self.router.shard_for(str(key))

    def shard_proxy(self, shard: int):
        """The plain per-shard :class:`Proxy` (for tests and tooling)."""
        return self._proxies[shard]

    def route_counts(self) -> List[int]:
        """Calls routed per shard since construction (index = shard)."""
        with self._lock:
            return list(self._route_counts)

    # -- stub construction -------------------------------------------------------

    def _target(self, method_name: str, args: tuple):
        if len(args) <= self._route_arg:
            raise TypeError(
                f"{self._interface_name}.{method_name} needs a positional "
                f"routing key at index {self._route_arg}"
            )
        shard = self.shard_for(args[self._route_arg])
        with self._lock:
            self._route_counts[shard] += 1
        return self._proxies[shard]

    def _make_method(self, method_name: str, spec: CallSpec):
        if spec.multi:
            # Pool-wide fanout: hit every shard's .multi exchange.
            if spec.kind == "sync":
                def call(*args: Any, **kwargs: Any) -> List[Any]:
                    results: List[Any] = []
                    for proxy in self._proxies:
                        results.extend(getattr(proxy, method_name)(*args, **kwargs))
                    return results
            else:
                def call(*args: Any, **kwargs: Any) -> int:
                    return sum(
                        getattr(proxy, method_name)(*args, **kwargs)
                        for proxy in self._proxies
                    )
        else:
            def call(*args: Any, **kwargs: Any) -> Any:
                proxy = self._target(method_name, args)
                return getattr(proxy, method_name)(*args, **kwargs)

        call.__name__ = method_name
        call.__qualname__ = f"{self._interface_name}.{method_name}"

        if spec.kind == "sync" and not spec.multi:
            def begin(*args: Any, **kwargs: Any):
                proxy = self._target(method_name, args)
                return getattr(proxy, f"begin_{method_name}")(*args, **kwargs)

            begin.__name__ = f"begin_{method_name}"
            begin.__qualname__ = f"{self._interface_name}.begin_{method_name}"
            setattr(self, f"begin_{method_name}", begin)
        return call
