"""Method decorators defining ObjectMQ invocation semantics (§3.2).

Following Waldo et al., ObjectMQ makes remoteness explicit: every method on
a remote interface must declare its invocation abstraction —

* :func:`async_method` — fire-and-forget one-way publish (@AsyncMethod);
* :func:`sync_method` — blocking request/reply with timeout and retries
  (@SyncMethod);
* :func:`multi_method` — one-to-many fanout, combinable with either of the
  above (@MultiMethod).

Example, mirroring Fig 6 of the paper::

    @remote_interface
    class SyncServiceApi(Remote):
        @sync_method(retry=5, timeout=1.5)
        def get_changes(self, workspace): ...

        @async_method
        def commit_request(self, workspace, objects_changed): ...

    @remote_interface
    class RemoteWorkspaceApi(Remote):
        @multi_method
        @async_method
        def notify_commit(self, notification): ...
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Type

from repro.errors import NotARemoteInterface

#: Attribute attached to decorated methods.
_CALL_ATTR = "_omq_call"
#: Attribute attached to classes decorated with @remote_interface.
_IFACE_ATTR = "_omq_remote_interface"

#: Defaults matching the paper's SyncService declarations.
DEFAULT_TIMEOUT = 1.5
DEFAULT_RETRY = 5


@dataclass(frozen=True)
class CallSpec:
    """Invocation semantics for one remote method."""

    kind: str  # "sync" or "async"
    multi: bool = False
    timeout: float = DEFAULT_TIMEOUT
    retry: int = DEFAULT_RETRY
    #: For sync multicasts: return as soon as this many replies arrived
    #: (None = collect from every bound instance until the timeout).
    quorum: Optional[int] = None

    @property
    def expects_reply(self) -> bool:
        return self.kind == "sync"


class Remote:
    """Marker base class for remote interfaces (the paper's ``Remote``)."""


def _get_spec(func: Callable) -> Optional[CallSpec]:
    return getattr(func, _CALL_ATTR, None)


def async_method(func: Callable) -> Callable:
    """Mark *func* as a non-blocking one-way invocation."""
    existing = _get_spec(func)
    multi = existing.multi if existing else False
    quorum = existing.quorum if existing else None
    setattr(func, _CALL_ATTR, CallSpec(kind="async", multi=multi, quorum=quorum))
    return func


def sync_method(
    func: Optional[Callable] = None,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    retry: int = DEFAULT_RETRY,
) -> Callable:
    """Mark a method as blocking request/reply.

    Usable bare (``@sync_method``) or parameterised
    (``@sync_method(retry=5, timeout=1.5)``).  *timeout* is in seconds per
    attempt; *retry* is the number of additional attempts before
    :class:`~repro.errors.RemoteTimeout` is raised.
    """

    def apply(target: Callable) -> Callable:
        existing = _get_spec(target)
        multi = existing.multi if existing else False
        quorum = existing.quorum if existing else None
        setattr(
            target,
            _CALL_ATTR,
            CallSpec(
                kind="sync", multi=multi, timeout=timeout, retry=retry, quorum=quorum
            ),
        )
        return target

    if func is not None:
        return apply(func)
    return apply


def multi_method(
    func: Optional[Callable] = None, *, quorum: Optional[int] = None
) -> Callable:
    """Mark a method as one-to-many; composes with sync/async decorators.

    Decorator order does not matter: ``@multi_method`` above or below
    ``@async_method``/``@sync_method`` produces the same spec.  For sync
    multicasts, ``quorum=N`` makes the call return as soon as N replies
    arrive instead of waiting out the timeout for the whole group —
    useful for read-any / majority patterns over replicated objects.
    """

    def apply(target: Callable) -> Callable:
        existing = _get_spec(target)
        if existing is None:
            # Default pairing is async, the common case in the paper.
            spec = CallSpec(kind="async", multi=True, quorum=quorum)
        else:
            spec = CallSpec(
                kind=existing.kind,
                multi=True,
                timeout=existing.timeout,
                retry=existing.retry,
                quorum=quorum if quorum is not None else existing.quorum,
            )
        setattr(target, _CALL_ATTR, spec)
        return target

    if func is not None:
        return apply(func)
    return apply


def remote_interface(cls: Type) -> Type:
    """Class decorator validating and registering a remote interface.

    Every public method must carry a :class:`CallSpec`; remoteness must be
    explicit, so an undecorated public method is an error rather than a
    silent default.
    """
    specs: Dict[str, CallSpec] = {}
    for name, member in inspect.getmembers(cls, predicate=callable):
        if name.startswith("_"):
            continue
        spec = _get_spec(member)
        if spec is None:
            raise NotARemoteInterface(
                f"{cls.__name__}.{name} lacks an invocation decorator "
                "(@async_method / @sync_method / @multi_method)"
            )
        specs[name] = spec
    setattr(cls, _IFACE_ATTR, specs)
    return cls


def interface_specs(cls: Type) -> Dict[str, CallSpec]:
    """Return the method->CallSpec map of a @remote_interface class."""
    specs = getattr(cls, _IFACE_ATTR, None)
    if specs is None:
        raise NotARemoteInterface(
            f"{cls.__name__} is not decorated with @remote_interface"
        )
    return specs


def is_remote_interface(cls: Type) -> bool:
    return getattr(cls, _IFACE_ATTR, None) is not None
