"""JSON codec — the interoperable, human-readable transport."""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.errors import SerializationError
from repro.serialization.base import WireRegistry, global_wire_registry

#: Tag used to carry raw bytes through JSON (latin-1 escape).
_BYTES_TAG = "__bytes__"


class JsonSerializer:
    """Encode/decode arbitrary envelope structures as UTF-8 JSON.

    Bytes values are transported latin-1-escaped under a reserved key, so
    chunk fingerprints and small payloads survive the round trip.
    """

    name = "json"

    def __init__(self, registry: Optional[WireRegistry] = None):
        self.registry = registry if registry is not None else global_wire_registry

    def encode(self, obj: Any) -> bytes:
        try:
            lowered = self._lower_bytes(self.registry.lower(obj))
            return json.dumps(lowered, separators=(",", ":")).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"json encode failed: {exc}") from exc

    def decode(self, data: bytes) -> Any:
        try:
            parsed = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SerializationError(f"json decode failed: {exc}") from exc
        return self.registry.raise_(self._raise_bytes(parsed))

    def _lower_bytes(self, obj: Any) -> Any:
        if isinstance(obj, bytes):
            return {_BYTES_TAG: obj.decode("latin-1")}
        if isinstance(obj, dict):
            return {key: self._lower_bytes(value) for key, value in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [self._lower_bytes(item) for item in obj]
        return obj

    def _raise_bytes(self, obj: Any) -> Any:
        if isinstance(obj, dict):
            if set(obj.keys()) == {_BYTES_TAG}:
                return obj[_BYTES_TAG].encode("latin-1")
            return {key: self._raise_bytes(value) for key, value in obj.items()}
        if isinstance(obj, list):
            return [self._raise_bytes(item) for item in obj]
        return obj
