"""Compact binary codec — the Kryo analogue.

A small self-describing format: one type tag byte per value, varint
lengths, IEEE-754 doubles, zigzag-varint integers.  Registered domain
types are lowered to tagged dicts by the :class:`WireRegistry` before
encoding, so the format itself only needs the JSON data model plus raw
bytes.

Compared to JSON this typically shrinks RPC envelopes by 30-60% (no key
quoting, binary ints, raw bytes) — the same motivation the paper gives for
shipping Kryo alongside Java serialization.
"""

from __future__ import annotations

import struct
from io import BytesIO
from typing import Any, Optional

from repro.errors import SerializationError
from repro.serialization.base import WireRegistry, global_wire_registry

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_DICT = 0x08


def _write_varint(out: BytesIO, value: int) -> None:
    """Write an unsigned LEB128 varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _read_varint(data: memoryview, pos: int) -> "tuple[int, int]":
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SerializationError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


class BinarySerializer:
    """Self-describing compact binary encoding of the JSON data model."""

    name = "binary"

    def __init__(self, registry: Optional[WireRegistry] = None):
        self.registry = registry if registry is not None else global_wire_registry

    # -- public API -------------------------------------------------------------

    def encode(self, obj: Any) -> bytes:
        out = BytesIO()
        try:
            self._encode_value(out, self.registry.lower(obj))
        except (TypeError, ValueError, struct.error) as exc:
            raise SerializationError(f"binary encode failed: {exc}") from exc
        return out.getvalue()

    def decode(self, data: bytes) -> Any:
        view = memoryview(data)
        try:
            value, pos = self._decode_value(view, 0)
        except (IndexError, struct.error) as exc:
            raise SerializationError(f"binary decode failed: {exc}") from exc
        if pos != len(view):
            raise SerializationError(
                f"binary decode left {len(view) - pos} trailing bytes"
            )
        return self.registry.raise_(value)

    # -- encoding -----------------------------------------------------------------

    def _encode_value(self, out: BytesIO, obj: Any) -> None:
        if obj is None:
            out.write(bytes((_T_NONE,)))
        elif obj is True:
            out.write(bytes((_T_TRUE,)))
        elif obj is False:
            out.write(bytes((_T_FALSE,)))
        elif isinstance(obj, int):
            # Zigzag mapping: non-negative n -> 2n, negative n -> -2n - 1.
            out.write(bytes((_T_INT,)))
            _write_varint(out, (obj << 1) if obj >= 0 else ((-obj << 1) - 1))
        elif isinstance(obj, float):
            out.write(bytes((_T_FLOAT,)))
            out.write(struct.pack(">d", obj))
        elif isinstance(obj, str):
            encoded = obj.encode("utf-8")
            out.write(bytes((_T_STR,)))
            _write_varint(out, len(encoded))
            out.write(encoded)
        elif isinstance(obj, (bytes, bytearray, memoryview)):
            raw = bytes(obj)
            out.write(bytes((_T_BYTES,)))
            _write_varint(out, len(raw))
            out.write(raw)
        elif isinstance(obj, (list, tuple)):
            out.write(bytes((_T_LIST,)))
            _write_varint(out, len(obj))
            for item in obj:
                self._encode_value(out, item)
        elif isinstance(obj, dict):
            out.write(bytes((_T_DICT,)))
            _write_varint(out, len(obj))
            for key, value in obj.items():
                if not isinstance(key, str):
                    raise TypeError(f"dict keys must be str, got {type(key).__name__}")
                encoded = key.encode("utf-8")
                _write_varint(out, len(encoded))
                out.write(encoded)
                self._encode_value(out, value)
        else:
            raise TypeError(f"unsupported type {type(obj).__name__}")

    # -- decoding -----------------------------------------------------------------

    def _decode_value(self, data: memoryview, pos: int) -> "tuple[Any, int]":
        tag = data[pos]
        pos += 1
        if tag == _T_NONE:
            return None, pos
        if tag == _T_TRUE:
            return True, pos
        if tag == _T_FALSE:
            return False, pos
        if tag == _T_INT:
            raw, pos = _read_varint(data, pos)
            value = (raw >> 1) if not raw & 1 else -((raw + 1) >> 1)
            return value, pos
        if tag == _T_FLOAT:
            value = struct.unpack_from(">d", data, pos)[0]
            return value, pos + 8
        if tag == _T_STR:
            length, pos = _read_varint(data, pos)
            value = bytes(data[pos : pos + length]).decode("utf-8")
            return value, pos + length
        if tag == _T_BYTES:
            length, pos = _read_varint(data, pos)
            return bytes(data[pos : pos + length]), pos + length
        if tag == _T_LIST:
            count, pos = _read_varint(data, pos)
            items = []
            for _ in range(count):
                item, pos = self._decode_value(data, pos)
                items.append(item)
            return items, pos
        if tag == _T_DICT:
            count, pos = _read_varint(data, pos)
            result = {}
            for _ in range(count):
                klen, pos = _read_varint(data, pos)
                key = bytes(data[pos : pos + klen]).decode("utf-8")
                pos += klen
                value, pos = self._decode_value(data, pos)
                result[key] = value
            return result, pos
        raise SerializationError(f"unknown type tag 0x{tag:02x}")
