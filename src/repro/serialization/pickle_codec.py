"""Pickle codec — the Python analogue of Java serialization.

Fast and fully general within one trust domain.  Only use between
components you control (as the paper's StackSync does with Java
serialization between its own client and server).
"""

from __future__ import annotations

import pickle
from typing import Any

from repro.errors import SerializationError


class PickleSerializer:
    """Encode/decode via the stdlib pickle protocol."""

    name = "pickle"

    def __init__(self, protocol: int = pickle.HIGHEST_PROTOCOL):
        self.protocol = protocol

    def encode(self, obj: Any) -> bytes:
        try:
            return pickle.dumps(obj, protocol=self.protocol)
        except Exception as exc:  # pickle raises many distinct types
            raise SerializationError(f"pickle encode failed: {exc}") from exc

    def decode(self, data: bytes) -> Any:
        try:
            return pickle.loads(data)
        except Exception as exc:
            raise SerializationError(f"pickle decode failed: {exc}") from exc
