"""Codec protocol shared by the pluggable serializers.

ObjectMQ "supports different transport protocols (Kryo, Java
Serialization, JSON)" (§3.4).  We mirror that with three codecs sharing one
protocol: JSON (readable, interoperable), pickle (the Python analogue of
Java serialization), and a compact binary codec (the Kryo analogue).

A codec maps between Python objects and bytes.  The RPC layer keeps its
envelope (method name, args, call type) as plain dict/list/str/int/float
structures so any codec can carry it; rich domain objects register
``to_wire``/``from_wire`` hooks via :class:`WireRegistry`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Protocol, Tuple, Type

from repro.errors import SerializationError


class Serializer(Protocol):
    """Encode/decode protocol implemented by all codecs."""

    name: str

    def encode(self, obj: Any) -> bytes:
        """Serialize *obj* into bytes; raises SerializationError on failure."""
        ...

    def decode(self, data: bytes) -> Any:
        """Deserialize bytes produced by :meth:`encode`."""
        ...


class WireRegistry:
    """Registry mapping dataclass-like types to wire dict representations.

    JSON and the binary codec cannot carry arbitrary classes; types that
    cross the RPC boundary register a ``(to_wire, from_wire)`` pair keyed by
    a stable type tag.  Encoded values become ``{"__wire__": tag, ...}``
    dicts that decode back into the original type.
    """

    def __init__(self) -> None:
        self._by_type: Dict[Type, Tuple[str, Callable[[Any], dict]]] = {}
        self._by_tag: Dict[str, Callable[[dict], Any]] = {}

    def register(
        self,
        cls: Type,
        tag: str,
        to_wire: Callable[[Any], dict],
        from_wire: Callable[[dict], Any],
    ) -> None:
        self._by_type[cls] = (tag, to_wire)
        self._by_tag[tag] = from_wire

    def lower(self, obj: Any) -> Any:
        """Recursively convert registered types into tagged dicts."""
        entry = self._by_type.get(type(obj))
        if entry is not None:
            tag, to_wire = entry
            payload = {key: self.lower(value) for key, value in to_wire(obj).items()}
            payload["__wire__"] = tag
            return payload
        if isinstance(obj, dict):
            return {key: self.lower(value) for key, value in obj.items()}
        if isinstance(obj, (list, tuple)):
            return [self.lower(item) for item in obj]
        return obj

    def raise_(self, obj: Any) -> Any:
        """Recursively convert tagged dicts back into registered types.

        Only string-valued ``__wire__`` entries are wire tags (tags are
        strings by construction); a dict whose ``__wire__`` holds any
        other type is plain application data and passes through intact.
        """
        if isinstance(obj, dict):
            tag = obj.get("__wire__")
            if isinstance(tag, str):
                from_wire = self._by_tag.get(tag)
                if from_wire is None:
                    raise SerializationError(f"unknown wire tag {tag!r}")
                return from_wire(
                    {
                        key: self.raise_(value)
                        for key, value in obj.items()
                        if key != "__wire__"
                    }
                )
            return {key: self.raise_(value) for key, value in obj.items()}
        if isinstance(obj, list):
            return [self.raise_(item) for item in obj]
        return obj


#: Process-global registry used by the default codecs.  Domain packages
#: (repro.sync, repro.client) register their DTOs here at import time.
global_wire_registry = WireRegistry()
