"""Pluggable serialization codecs for the RPC transport.

Mirrors the paper's transport options (§3.4): JSON, native serialization
(pickle), and a compact binary format (the Kryo analogue).
"""

from repro.serialization.base import Serializer, WireRegistry, global_wire_registry
from repro.serialization.binary_codec import BinarySerializer
from repro.serialization.json_codec import JsonSerializer
from repro.serialization.pickle_codec import PickleSerializer

#: Codec registry keyed by name, used by ObjectMQ's Environment config.
CODECS = {
    "json": JsonSerializer,
    "pickle": PickleSerializer,
    "binary": BinarySerializer,
}


def make_serializer(name: str) -> Serializer:
    """Instantiate the codec registered under *name*."""
    try:
        return CODECS[name]()
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {sorted(CODECS)}"
        ) from None


__all__ = [
    "CODECS",
    "BinarySerializer",
    "JsonSerializer",
    "PickleSerializer",
    "Serializer",
    "WireRegistry",
    "global_wire_registry",
    "make_serializer",
]
