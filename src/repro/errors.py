"""Exception hierarchy shared across the reproduction.

Every subsystem raises subclasses of :class:`ReproError` so that callers can
catch a single base type at the API boundary while tests can assert precise
failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Messaging layer (repro.mom)
# ---------------------------------------------------------------------------

class MomError(ReproError):
    """Base class for message-oriented-middleware failures."""


class QueueNotFound(MomError):
    """A queue name was referenced before being declared."""


class ExchangeNotFound(MomError):
    """An exchange name was referenced before being declared."""


class BrokerClosed(MomError):
    """The broker was shut down while an operation was in flight."""


class DeliveryError(MomError):
    """A message could not be routed to any queue."""


class DuplicateConsumer(MomError):
    """A consumer tag was registered twice on the same queue."""


# ---------------------------------------------------------------------------
# ObjectMQ layer
# ---------------------------------------------------------------------------

class ObjectMqError(ReproError):
    """Base class for ObjectMQ middleware failures."""


class RemoteTimeout(ObjectMqError):
    """A @SyncMethod call exhausted its retries without receiving a reply."""


class RemoteInvocationError(ObjectMqError):
    """The remote object raised an exception while executing an RPC."""

    def __init__(self, method: str, remote_repr: str):
        super().__init__(f"remote invocation of {method!r} failed: {remote_repr}")
        self.method = method
        self.remote_repr = remote_repr


class NotARemoteInterface(ObjectMqError):
    """lookup() was given a class not decorated with @remote_interface."""


class BindingError(ObjectMqError):
    """bind() was asked to bind an object that does not match its interface."""


class SerializationError(ObjectMqError):
    """A payload could not be encoded or decoded by the active codec."""


# ---------------------------------------------------------------------------
# Synchronization service layer
# ---------------------------------------------------------------------------

class SyncError(ReproError):
    """Base class for StackSync protocol failures."""


class CommitConflict(SyncError):
    """A commit proposed changes over a stale version (informational)."""


class UnknownWorkspace(SyncError):
    """An operation referenced a workspace the metadata back-end ignores."""


class StorageError(ReproError):
    """Base class for object-storage back-end failures."""


class ObjectNotFound(StorageError):
    """GET for a chunk fingerprint that was never uploaded."""


class MetadataError(ReproError):
    """Base class for metadata back-end failures."""


class TransactionAborted(MetadataError):
    """An ACID transaction could not commit and was rolled back."""


# ---------------------------------------------------------------------------
# Security layer
# ---------------------------------------------------------------------------

class AuthError(ReproError):
    """Base class for authentication/authorization failures."""


class AuthenticationError(AuthError):
    """Missing, invalid, expired or revoked credentials."""


class AuthorizationError(AuthError):
    """Valid identity, insufficient rights for the requested operation."""


# ---------------------------------------------------------------------------
# Elasticity / provisioning layer
# ---------------------------------------------------------------------------

class ProvisioningError(ReproError):
    """Base class for provisioning framework failures."""


class NoCapacityModel(ProvisioningError):
    """A provisioner was asked for a decision before observing any data."""
