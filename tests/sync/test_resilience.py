"""Cross-subsystem resilience: broker failover and storage failures during sync."""

from __future__ import annotations

import time

import pytest

from repro.client import StackSyncClient
from repro.errors import StorageError
from repro.metadata import MemoryMetadataBackend
from repro.mom import BrokerCluster, MessageBroker
from repro.objectmq import Broker
from repro.storage import SwiftLikeStore
from repro.sync import SYNC_SERVICE_OID, SyncService, Workspace


def build_world(mom):
    metadata = MemoryMetadataBackend()
    storage = SwiftLikeStore(node_count=4, replicas=2)
    metadata.create_user("alice")
    workspace = Workspace(workspace_id="ws", owner="alice")
    metadata.create_workspace(workspace)
    server = Broker(mom)
    service = SyncService(metadata, server)
    server.bind(SYNC_SERVICE_OID, service)
    return metadata, storage, workspace, server, service


def test_full_sync_over_broker_cluster():
    """The whole stack runs over the HA cluster facade unchanged."""
    cluster = BrokerCluster(size=2)
    _metadata, storage, workspace, server, _service = build_world(cluster)
    c1 = StackSyncClient("alice", workspace, cluster, storage, device_id="d1")
    c2 = StackSyncClient("alice", workspace, cluster, storage, device_id="d2")
    c1.start()
    c2.start()
    meta = c1.put_file("ha.txt", b"over the cluster")
    assert c2.wait_for_version(meta.item_id, meta.version, timeout=10)
    assert c2.fs.read("ha.txt") == b"over the cluster"
    for client in (c1, c2):
        client.stop()
    server.close()
    cluster.close()


def test_sync_continues_after_broker_failover():
    """After the primary broker dies, re-connected components resume.

    Consumers must re-subscribe after an AMQP failover; the test models a
    deployment script doing exactly that, then verifies no durable state
    was lost and traffic flows again.
    """
    cluster = BrokerCluster(size=2)
    metadata, storage, workspace, server, service = build_world(cluster)
    c1 = StackSyncClient("alice", workspace, cluster, storage, device_id="d1")
    c1.start()
    meta = c1.put_file("before.txt", b"pre-failover")
    assert c1.wait_for_version(meta.item_id, meta.version, timeout=10)
    c1.stop()
    server.close()

    cluster.fail_primary()

    # Reconnect everything against the promoted node.
    server2 = Broker(cluster)
    server2.bind(SYNC_SERVICE_OID, service)
    c2 = StackSyncClient("alice", workspace, cluster, storage, device_id="d2")
    c2.start()
    # Durable state (metadata + chunks) survived; new traffic works.
    assert c2.fs.read("before.txt") == b"pre-failover"
    meta2 = c2.put_file("after.txt", b"post-failover")
    assert c2.wait_for_version(meta2.item_id, meta2.version, timeout=10)
    c2.stop()
    server2.close()
    cluster.close()


def test_storage_node_failure_transparent_to_clients(testbed):
    """With 2 replicas, losing one storage node is invisible to sync."""
    c1 = testbed.client(device_id="d1")
    meta = c1.put_file("replicated.txt", b"R" * 2000)
    c1.wait_for_version(meta.item_id, meta.version)

    # Fail the primary holder of the file's chunk.
    chunk = meta.chunks[0]
    key = f"u-alice/{chunk}"
    primary = testbed.storage.ring.primary_for(key)
    testbed.storage.fail_node(primary)

    # A late joiner still reconstructs the file from the replica.
    c2 = testbed.client(device_id="d2")
    assert c2.fs.read("replicated.txt") == b"R" * 2000
    testbed.storage.recover_node(primary)


def test_total_storage_outage_surfaces_but_metadata_survives(testbed):
    c1 = testbed.client(device_id="d1")
    meta = c1.put_file("doomed.txt", b"D" * 1000)
    c1.wait_for_version(meta.item_id, meta.version)

    for node in list(testbed.storage.nodes):
        testbed.storage.fail_node(node)
    # Uploads now fail loudly at the client.
    with pytest.raises(StorageError):
        c1.put_file("new.txt", b"N" * 1000)
    for node in list(testbed.storage.nodes):
        testbed.storage.recover_node(node)
    # After recovery the client syncs normally again.
    meta2 = c1.put_file("recovered.txt", b"OK")
    assert c1.wait_for_version(meta2.item_id, meta2.version, timeout=10)


def test_notification_storm_many_devices(testbed):
    """One commit fans out to many devices; all converge."""
    writer = testbed.client(device_id="writer")
    readers = [testbed.client(device_id=f"r{i}") for i in range(8)]
    meta = writer.put_file("broadcast.txt", b"to everyone")
    for reader in readers:
        assert reader.wait_for_version(meta.item_id, meta.version, timeout=15)
        assert reader.fs.read("broadcast.txt") == b"to everyone"
