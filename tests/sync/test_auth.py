"""Tests for the authentication/authorization services and interceptors."""

from __future__ import annotations

import pytest

from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    RemoteInvocationError,
)
from repro.metadata import MemoryMetadataBackend
from repro.mom import MessageBroker
from repro.objectmq import Broker
from repro.sync import SYNC_SERVICE_OID, SyncService, SyncServiceApi, Workspace
from repro.sync.auth import (
    AuthService,
    AuthenticatedStore,
    sync_auth_interceptor,
)
from repro.storage import SwiftLikeStore


class FakeClock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t


# -- AuthService ---------------------------------------------------------------------


def test_account_lifecycle_and_login():
    auth = AuthService()
    auth.create_account("alice", "s3cret")
    token = auth.login("alice", "s3cret")
    assert auth.validate(token.token) == "alice"
    assert auth.active_sessions("alice") == 1


def test_duplicate_account_rejected():
    auth = AuthService()
    auth.create_account("alice", "x")
    with pytest.raises(AuthenticationError):
        auth.create_account("alice", "y")


def test_bad_password_rejected():
    auth = AuthService()
    auth.create_account("alice", "right")
    with pytest.raises(AuthenticationError):
        auth.login("alice", "wrong")
    with pytest.raises(AuthenticationError):
        auth.login("ghost", "any")


def test_token_expiry():
    clock = FakeClock()
    auth = AuthService(token_ttl=10.0, clock=clock)
    auth.create_account("alice", "pw")
    token = auth.login("alice", "pw")
    clock.t += 5
    assert auth.validate(token.token) == "alice"
    clock.t += 6
    with pytest.raises(AuthenticationError):
        auth.validate(token.token)


def test_revoke():
    auth = AuthService()
    auth.create_account("alice", "pw")
    token = auth.login("alice", "pw")
    assert auth.revoke(token.token)
    with pytest.raises(AuthenticationError):
        auth.validate(token.token)
    assert not auth.revoke(token.token)


def test_missing_token_rejected():
    auth = AuthService()
    with pytest.raises(AuthenticationError):
        auth.validate(None)
    with pytest.raises(AuthenticationError):
        auth.validate("made-up")


def test_password_change_invalidates_sessions():
    auth = AuthService()
    auth.create_account("alice", "old")
    token = auth.login("alice", "old")
    auth.change_password("alice", "old", "new")
    with pytest.raises(AuthenticationError):
        auth.validate(token.token)
    auth.login("alice", "new")
    with pytest.raises(AuthenticationError):
        auth.login("alice", "old")


# -- secured SyncService over ObjectMQ ---------------------------------------------------


@pytest.fixture
def secured():
    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    auth = AuthService()
    for user in ("alice", "bob"):
        metadata.create_user(user)
        auth.create_account(user, f"{user}-pw")
    workspace = Workspace(workspace_id="ws-alice", owner="alice")
    metadata.create_workspace(workspace)

    server = Broker(mom)
    service = SyncService(metadata, server)
    server.bind(
        SYNC_SERVICE_OID,
        service,
        interceptors=[sync_auth_interceptor(auth, metadata)],
    )
    client = Broker(mom)
    proxy = client.lookup(SYNC_SERVICE_OID, SyncServiceApi)
    yield auth, metadata, client, proxy
    client.close()
    server.close()
    mom.close()


def test_valid_token_passes(secured):
    auth, _metadata, client, proxy = secured
    token = auth.login("alice", "alice-pw")
    client.call_context["auth_token"] = token.token
    assert [w.workspace_id for w in proxy.get_workspaces("alice")] == ["ws-alice"]
    assert proxy.get_changes("ws-alice") == []


def test_missing_token_rejected_remotely(secured):
    _auth, _metadata, _client, proxy = secured
    with pytest.raises(RemoteInvocationError) as excinfo:
        proxy.get_workspaces("alice")
    assert "AuthenticationError" in str(excinfo.value)


def test_cannot_list_other_users_workspaces(secured):
    auth, _metadata, client, proxy = secured
    client.call_context["auth_token"] = auth.login("bob", "bob-pw").token
    with pytest.raises(RemoteInvocationError) as excinfo:
        proxy.get_workspaces("alice")
    assert "AuthorizationError" in str(excinfo.value)


def test_workspace_acl_enforced(secured):
    auth, metadata, client, proxy = secured
    client.call_context["auth_token"] = auth.login("bob", "bob-pw").token
    with pytest.raises(RemoteInvocationError):
        proxy.get_changes("ws-alice")
    # Granting access flips the decision.
    metadata.grant_access("ws-alice", "bob")
    assert proxy.get_changes("ws-alice") == []


def test_expired_token_rejected_remotely():
    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    clock = FakeClock()
    auth = AuthService(token_ttl=10.0, clock=clock)
    metadata.create_user("alice")
    auth.create_account("alice", "pw")
    metadata.create_workspace(Workspace(workspace_id="ws", owner="alice"))
    server = Broker(mom)
    server.bind(
        SYNC_SERVICE_OID,
        SyncService(metadata, server),
        interceptors=[sync_auth_interceptor(auth, metadata)],
    )
    client = Broker(mom)
    proxy = client.lookup(SYNC_SERVICE_OID, SyncServiceApi)
    client.call_context["auth_token"] = auth.login("alice", "pw").token
    assert proxy.get_changes("ws") == []
    clock.t += 11
    with pytest.raises(RemoteInvocationError):
        proxy.get_changes("ws")
    client.close()
    server.close()
    mom.close()


# -- AuthenticatedStore --------------------------------------------------------------------


def test_authenticated_store_scopes_containers():
    auth = AuthService()
    auth.create_account("alice", "pw")
    auth.create_account("bob", "pw")
    store = SwiftLikeStore(node_count=2, replicas=1)
    secured = AuthenticatedStore(store, auth)

    alice = auth.login("alice", "pw").token
    bob = auth.login("bob", "pw").token

    secured.create_container(alice, "u-alice")
    secured.put_object(alice, "u-alice", "fp", b"chunk")
    assert secured.get_object(alice, "u-alice", "fp") == b"chunk"

    with pytest.raises(AuthorizationError):
        secured.get_object(bob, "u-alice", "fp")
    with pytest.raises(AuthorizationError):
        secured.put_object(bob, "u-alice", "x", b"y")
    with pytest.raises(AuthenticationError):
        secured.get_object("bogus-token", "u-alice", "fp")
