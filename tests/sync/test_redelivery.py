"""§3.4 at-least-once delivery: commits stuck in a crashed SyncService
instance flow back to the shared queue and succeed on a survivor."""

from __future__ import annotations

import time

from repro.client import StackSyncClient
from repro.metadata import MemoryMetadataBackend
from repro.mom import MessageBroker
from repro.objectmq import Broker
from repro.storage import SwiftLikeStore
from repro.sync import SYNC_SERVICE_OID, SyncService, Workspace


def wait_for(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_redelivered_commit_succeeds_on_surviving_instance():
    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    storage = SwiftLikeStore(node_count=2, replicas=2)
    metadata.create_user("alice")
    workspace = Workspace(workspace_id="ws", owner="alice")
    metadata.create_workspace(workspace)
    server = Broker(mom)
    service = SyncService(metadata, server)
    doomed = server.bind(SYNC_SERVICE_OID, service)

    client = StackSyncClient("alice", workspace, mom, storage, device_id="d1")
    client.start()

    # Simulate a crash mid-operation: the instance stops processing (the
    # skeleton's crash window — deliveries arrive but are never acked)
    # while its consumer registration lingers, as for a hung process.
    doomed._running = False
    meta = client.put_file("crash.txt", b"at least once")

    queue = mom.declare_queue(SYNC_SERVICE_OID, durable=True)
    assert wait_for(lambda: queue.unacked_count == 1)
    assert client.applied_at(meta.item_id, meta.version) is None
    assert metadata.get_current(meta.item_id) is None

    # A survivor joins the pool; tearing down the crashed instance's
    # consumer requeues the commit at the head with redelivered=True.
    # (kill() is a no-op on an already-"crashed" skeleton, so re-arm the
    # flag first — the delivery stays unacked either way.)
    server.bind(SYNC_SERVICE_OID, service)
    doomed._running = True
    doomed.kill()

    assert client.wait_for_version(meta.item_id, meta.version, timeout=10)
    assert queue.redelivered_count >= 1
    assert metadata.get_current(meta.item_id).version == 1
    assert client.fs.read("crash.txt") == b"at least once"

    client.stop()
    server.close()
    mom.close()
