"""Tests for end-to-end chunk integrity verification."""

from __future__ import annotations

import time
import zlib

import pytest

from repro.errors import SyncError


def corrupt_object(storage, container, name, data):
    """Overwrite an object on every replica, bypassing the client."""
    key = f"{container}/{name}"
    for device in storage.ring.devices_for(key):
        node = storage.nodes[device]
        if key in node.objects:
            node.objects[key] = data


def test_corrupted_chunk_detected_on_download(testbed):
    c1 = testbed.client(device_id="d1")
    meta = c1.put_file("doc.txt", b"important " * 100)
    c1.wait_for_version(meta.item_id, meta.version)

    # Corrupt the stored chunk with *valid gzip* of different content, so
    # only the fingerprint check can catch it.
    evil = zlib.compress(b"evil " * 100, 1)
    corrupt_object(testbed.storage, "u-alice", meta.chunks[0], evil)

    from repro.client import StackSyncClient

    c2 = StackSyncClient(
        "alice", testbed.workspaces["alice"], testbed.mom, testbed.storage,
        device_id="d2",
    )
    with pytest.raises(SyncError, match="integrity"):
        c2.start()
    c2.stop()


def test_corruption_during_notification_does_not_crash_client(testbed):
    """A corrupted chunk hitting the push path is logged, not fatal."""
    c1 = testbed.client(device_id="d1")
    c2 = testbed.client(device_id="d2")

    base = c1.put_file("a.txt", b"A" * 500)
    assert c2.wait_for_version(base.item_id, base.version, timeout=10)

    # Pre-corrupt the chunk that the *next* version will reference: write
    # the file, then tamper before c2 downloads.  To make the race
    # deterministic, tamper with a fresh file c2 has never seen.
    meta = c1.put_file("b.txt", b"B" * 500)
    # c1 has it cached; corrupt the store before c2 fetches.
    evil = zlib.compress(b"X" * 500, 1)
    corrupt_object(testbed.storage, "u-alice", meta.chunks[0], evil)
    time.sleep(0.5)
    # c2 failed to apply (integrity), but keeps running and can sync
    # other files afterwards.
    meta2 = c1.put_file("c.txt", b"C" * 500)
    assert c2.wait_for_version(meta2.item_id, meta2.version, timeout=10)
    assert c2.fs.read("c.txt") == b"C" * 500
    assert not c2.fs.exists("b.txt") or c2.fs.read("b.txt") != b"X" * 500


def test_clean_chunks_pass_verification(testbed):
    c1 = testbed.client(device_id="d1")
    c2 = testbed.client(device_id="d2")
    meta = c1.put_file("fine.txt", b"no tampering here " * 50)
    assert c2.wait_for_version(meta.item_id, meta.version, timeout=10)
    assert c2.fs.read("fine.txt") == b"no tampering here " * 50
