"""Tests for the protocol DTOs."""

from __future__ import annotations

import pytest

from repro.sync.models import (
    STATUS_CHANGED,
    STATUS_DELETED,
    STATUS_NEW,
    CommitNotification,
    CommitResult,
    ItemMetadata,
    Workspace,
)


def make_item(**overrides):
    base = dict(
        item_id="ws:a.txt",
        workspace_id="ws",
        version=1,
        filename="a.txt",
        status=STATUS_NEW,
        size=5,
        checksum="c",
        chunks=["f1"],
        modified_at=1.0,
        device_id="dev",
    )
    base.update(overrides)
    return ItemMetadata(**base)


def test_item_validates_status():
    with pytest.raises(ValueError):
        make_item(status="BOGUS")


def test_item_validates_version():
    with pytest.raises(ValueError):
        make_item(version=0)


def test_with_version_bumps_immutably():
    item = make_item()
    bumped = item.with_version(2, status=STATUS_CHANGED)
    assert bumped.version == 2 and bumped.status == STATUS_CHANGED
    assert item.version == 1


def test_item_wire_round_trip():
    item = make_item(chunks=["a", "b"])
    assert ItemMetadata.from_wire(item.to_wire()) == item


def test_workspace_wire_round_trip():
    workspace = Workspace(workspace_id="ws", owner="alice", name="n")
    assert Workspace.from_wire(workspace.to_wire()) == workspace


def test_notification_partitions_results():
    ok = CommitResult(metadata=make_item(), confirmed=True)
    bad = CommitResult(
        metadata=make_item(version=2, status=STATUS_CHANGED),
        confirmed=False,
        current=make_item(version=3, status=STATUS_CHANGED),
    )
    notification = CommitNotification(
        workspace_id="ws", source_device="dev", results=[ok, bad]
    )
    assert notification.confirmed == [ok]
    assert notification.conflicts == [bad]


def test_notification_wire_round_trip():
    notification = CommitNotification(
        workspace_id="ws",
        source_device="dev",
        results=[
            CommitResult(metadata=make_item(), confirmed=True),
            CommitResult(
                metadata=make_item(version=2, status=STATUS_DELETED),
                confirmed=False,
                current=make_item(version=5, status=STATUS_CHANGED),
            ),
        ],
        committed_at=7.0,
        request_id="rq",
    )
    decoded = CommitNotification.from_wire(notification.to_wire())
    assert decoded == notification
