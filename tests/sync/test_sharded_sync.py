"""End-to-end sync through the workspace-partitioned commit path."""

from __future__ import annotations

import uuid

import pytest

from repro.client import StackSyncClient
from repro.metadata import ShardedMetadataBackend
from repro.mom import MessageBroker
from repro.objectmq import Broker, shard_oid
from repro.storage import SwiftLikeStore
from repro.sync import SYNC_SERVICE_OID, SyncService, Workspace

SHARDS = 3


class ShardedTestbed:
    """Full deployment with per-shard request queues and a sharded DAO."""

    def __init__(self, users=("alice", "bob")):
        self.mom = MessageBroker()
        self.metadata = ShardedMetadataBackend.memory(SHARDS)
        self.storage = SwiftLikeStore(node_count=4, replicas=2)
        self.server_broker = Broker(self.mom)
        # One instance per shard queue; each holds the whole composite
        # (the DAO routes internally), the queue decides which commits
        # it serializes.
        self.services = []
        self.skeletons = []
        for shard in range(SHARDS):
            service = SyncService(self.metadata, self.server_broker)
            self.services.append(service)
            self.skeletons.append(
                self.server_broker.bind(shard_oid(SYNC_SERVICE_OID, shard), service)
            )
        self.workspaces = {}
        for user in users:
            self.metadata.create_user(user)
            workspace = Workspace(
                workspace_id=f"ws-{user}-{uuid.uuid4().hex[:6]}", owner=user
            )
            self.metadata.create_workspace(workspace)
            self.workspaces[user] = workspace
        self.clients = []

    def client(self, user="alice", device_id=None, **kwargs) -> StackSyncClient:
        client = StackSyncClient(
            user,
            self.workspaces[user],
            self.mom,
            self.storage,
            device_id=device_id,
            shards=SHARDS,
            **kwargs,
        )
        client.start()
        self.clients.append(client)
        return client

    def close(self):
        for client in self.clients:
            client.stop()
        self.server_broker.close()
        self.mom.close()


@pytest.fixture
def sharded_bed():
    bed = ShardedTestbed()
    yield bed
    bed.close()


def test_two_devices_sync_through_sharded_path(sharded_bed):
    laptop = sharded_bed.client("alice", device_id="laptop")
    phone = sharded_bed.client("alice", device_id="phone")
    meta = laptop.put_file("notes.txt", b"hello sharded world")
    assert phone.wait_for_version(meta.item_id, meta.version, timeout=10) is not None
    assert phone.fs.read("notes.txt") == b"hello sharded world"


def test_workspaces_of_different_users_land_on_their_hashed_shards(sharded_bed):
    alice = sharded_bed.client("alice", device_id="a1")
    bob = sharded_bed.client("bob", device_id="b1")
    meta_a = alice.put_file("a.txt", b"from alice")
    meta_b = bob.put_file("b.txt", b"from bob")
    assert alice.wait_for_version(meta_a.item_id, meta_a.version, timeout=10)
    assert bob.wait_for_version(meta_b.item_id, meta_b.version, timeout=10)

    backend = sharded_bed.metadata
    for workspace in (
        sharded_bed.workspaces["alice"],
        sharded_bed.workspaces["bob"],
    ):
        owner_shard = backend.shard_for_workspace(workspace.workspace_id)
        for shard, engine in enumerate(backend.engines):
            assert engine.workspace_exists(workspace.workspace_id) == (
                shard == owner_shard
            )


def test_conflict_resolution_still_works_when_sharded(sharded_bed):
    laptop = sharded_bed.client("alice", device_id="laptop")
    phone = sharded_bed.client("alice", device_id="phone")
    meta = laptop.put_file("doc.txt", b"v1")
    assert phone.wait_for_version(meta.item_id, meta.version, timeout=10)

    # Both devices propose version 2: the first writer wins, the loser
    # keeps a conflicted copy — semantics unchanged by partitioning.
    laptop_meta = laptop.put_file("doc.txt", b"laptop v2")
    assert phone.wait_for_version(laptop_meta.item_id, 2, timeout=10)
    history = sharded_bed.metadata.item_history(meta.item_id)
    assert [m.version for m in history] == [1, 2]


def test_client_commits_route_to_the_owning_shard_queue(sharded_bed):
    client = sharded_bed.client("alice", device_id="laptop")
    workspace_id = sharded_bed.workspaces["alice"].workspace_id
    expected = client.sync_service.shard_for(workspace_id)
    before = client.sync_service.route_counts()
    meta = client.put_file("routed.txt", b"x")
    assert client.wait_for_version(meta.item_id, meta.version, timeout=10)
    after = client.sync_service.route_counts()
    assert after[expected] > before[expected]
