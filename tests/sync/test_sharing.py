"""Tests for workspace creation and sharing over the protocol."""

from __future__ import annotations

import pytest

from repro.client import StackSyncClient
from repro.errors import RemoteInvocationError
from repro.metadata import MemoryMetadataBackend
from repro.mom import MessageBroker
from repro.objectmq import Broker
from repro.sync import SYNC_SERVICE_OID, SyncService, SyncServiceApi, Workspace
from repro.sync.auth import AuthService, sync_auth_interceptor


def test_create_and_share_via_rpc(testbed):
    client_broker = Broker(testbed.mom)
    proxy = client_broker.lookup(SYNC_SERVICE_OID, SyncServiceApi)

    testbed.metadata.create_user("bob")
    workspace = proxy.create_workspace("ws-team", "alice", name="Team")
    assert workspace.workspace_id == "ws-team"
    assert proxy.share_workspace("ws-team", "bob") is True
    assert "ws-team" in {
        w.workspace_id for w in testbed.metadata.workspaces_for("bob")
    }
    client_broker.close()


def test_shared_workspace_syncs_across_users(testbed):
    """Full flow: create → share → both users' devices converge."""
    testbed.metadata.create_user("bob")
    admin = Broker(testbed.mom)
    proxy = admin.lookup(SYNC_SERVICE_OID, SyncServiceApi)
    team = proxy.create_workspace("ws-shared", "alice")
    proxy.share_workspace("ws-shared", "bob")

    alice_dev = StackSyncClient(
        "alice", team, testbed.mom, testbed.storage, device_id="alice-dev"
    )
    bob_dev = StackSyncClient(
        "bob", team, testbed.mom, testbed.storage, device_id="bob-dev"
    )
    alice_dev.start()
    bob_dev.start()
    testbed.clients.extend([alice_dev, bob_dev])

    meta = alice_dev.put_file("minutes.txt", b"decisions...")
    assert bob_dev.wait_for_version(meta.item_id, meta.version, timeout=10)
    assert bob_dev.fs.read("minutes.txt") == b"decisions..."

    # And back: bob's edits reach alice.
    meta2 = bob_dev.put_file("minutes.txt", b"decisions... and actions")
    assert alice_dev.wait_for_version(meta2.item_id, meta2.version, timeout=10)
    admin.close()


def test_share_requires_ownership_when_secured():
    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    auth = AuthService()
    for user in ("alice", "bob", "carol"):
        metadata.create_user(user)
        auth.create_account(user, "pw")
    metadata.create_workspace(Workspace(workspace_id="ws-a", owner="alice"))
    metadata.grant_access("ws-a", "bob")  # bob: member, not owner

    server = Broker(mom)
    server.bind(
        SYNC_SERVICE_OID,
        SyncService(metadata, server),
        interceptors=[sync_auth_interceptor(auth, metadata)],
    )
    client = Broker(mom)
    proxy = client.lookup(SYNC_SERVICE_OID, SyncServiceApi)

    # A member cannot re-share.
    client.call_context["auth_token"] = auth.login("bob", "pw").token
    with pytest.raises(RemoteInvocationError) as excinfo:
        proxy.share_workspace("ws-a", "carol")
    assert "AuthorizationError" in str(excinfo.value)

    # The owner can.
    client.call_context["auth_token"] = auth.login("alice", "pw").token
    assert proxy.share_workspace("ws-a", "carol") is True

    # Nobody can create workspaces for someone else.
    with pytest.raises(RemoteInvocationError):
        proxy.create_workspace("ws-x", "bob")
    created = proxy.create_workspace("ws-mine", "alice")
    assert created.owner == "alice"

    client.close()
    server.close()
    mom.close()
