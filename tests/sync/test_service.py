"""Unit tests for the SyncService commit logic (Algorithm 1)."""

from __future__ import annotations

import time

import pytest

from repro.errors import RemoteInvocationError
from repro.metadata import MemoryMetadataBackend
from repro.mom import MessageBroker
from repro.objectmq import Broker
from repro.sync import (
    RemoteWorkspaceApi,
    SyncService,
    Workspace,
    workspace_oid,
)
from repro.sync.models import STATUS_CHANGED, STATUS_DELETED, ItemMetadata


class NotificationSink:
    """Binds to the workspace fanout and records notifications."""

    def __init__(self):
        self.notifications = []

    def notify_commit(self, notification):
        self.notifications.append(notification)


@pytest.fixture
def rig():
    mom = MessageBroker()
    broker = Broker(mom)
    metadata = MemoryMetadataBackend()
    metadata.create_user("alice")
    workspace = Workspace(workspace_id="ws", owner="alice")
    metadata.create_workspace(workspace)
    service = SyncService(metadata, broker)
    sink = NotificationSink()
    broker.bind(workspace_oid("ws"), sink)
    yield metadata, service, sink
    broker.close()
    mom.close()


def proposal(version=1, status="NEW", device="dev-1", chunks=None):
    return ItemMetadata(
        item_id="ws:a.txt",
        workspace_id="ws",
        version=version,
        filename="a.txt",
        status=status,
        size=4,
        checksum="c",
        chunks=chunks if chunks is not None else ["f1"],
        modified_at=1.0,
        device_id=device,
    )


def wait_for(predicate, timeout=2.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_commit_new_object_confirmed(rig):
    metadata, service, sink = rig
    service.commit_request("ws", "dev-1", [proposal()])
    assert metadata.get_current("ws:a.txt").version == 1
    assert wait_for(lambda: len(sink.notifications) == 1)
    notification = sink.notifications[0]
    assert notification.results[0].confirmed
    assert notification.source_device == "dev-1"


def test_commit_successor_version_confirmed(rig):
    metadata, service, sink = rig
    service.commit_request("ws", "dev-1", [proposal(1)])
    service.commit_request("ws", "dev-1", [proposal(2, STATUS_CHANGED)])
    assert metadata.get_current("ws:a.txt").version == 2
    assert wait_for(lambda: len(sink.notifications) == 2)


def test_stale_version_conflicts_with_piggybacked_current(rig):
    metadata, service, sink = rig
    service.commit_request("ws", "dev-1", [proposal(1)])
    service.commit_request("ws", "dev-1", [proposal(2, STATUS_CHANGED, chunks=["f2"])])
    # dev-2 proposes v2 again (stale base): conflict.
    service.commit_request("ws", "dev-2", [proposal(2, STATUS_CHANGED, device="dev-2")])
    assert wait_for(lambda: len(sink.notifications) == 3)
    conflict = sink.notifications[2].results[0]
    assert not conflict.confirmed
    assert conflict.current is not None
    assert conflict.current.version == 2
    assert conflict.current.chunks == ["f2"]  # losing client can reconstruct
    # First-writer-wins: the metadata back-end was never rolled back.
    assert metadata.get_current("ws:a.txt").version == 2
    assert service.conflict_count == 1


def test_duplicate_new_object_conflicts(rig):
    metadata, service, sink = rig
    service.commit_request("ws", "dev-1", [proposal(1)])
    service.commit_request("ws", "dev-2", [proposal(1, device="dev-2")])
    assert wait_for(lambda: len(sink.notifications) == 2)
    assert not sink.notifications[1].results[0].confirmed


def test_batch_commit_mixed_outcomes(rig):
    metadata, service, sink = rig
    other = ItemMetadata(
        item_id="ws:b.txt",
        workspace_id="ws",
        version=1,
        filename="b.txt",
        device_id="dev-1",
    )
    service.commit_request("ws", "dev-1", [proposal(1)])
    # Batch: one conflicting (duplicate v1), one fresh.
    service.commit_request("ws", "dev-1", [proposal(1), other])
    assert wait_for(lambda: len(sink.notifications) == 2)
    results = sink.notifications[1].results
    assert [r.confirmed for r in results] == [False, True]


def test_delete_version_recorded(rig):
    metadata, service, sink = rig
    service.commit_request("ws", "dev-1", [proposal(1)])
    service.commit_request("ws", "dev-1", [proposal(2, STATUS_DELETED, chunks=[])])
    assert metadata.get_current("ws:a.txt").status == STATUS_DELETED
    assert metadata.get_workspace_state("ws") == []


def test_unknown_workspace_rejected(rig):
    _metadata, service, _sink = rig
    from repro.errors import UnknownWorkspace

    with pytest.raises(UnknownWorkspace):
        service.commit_request("ghost", "dev-1", [proposal(1)])


def test_get_workspaces_and_changes(rig):
    metadata, service, _sink = rig
    assert [w.workspace_id for w in service.get_workspaces("alice")] == ["ws"]
    assert service.get_workspaces("nobody") == []
    service.commit_request("ws", "dev-1", [proposal(1)])
    state = service.get_changes("ws")
    assert len(state) == 1 and state[0].item_id == "ws:a.txt"


def test_service_delay_hook(rig):
    metadata, service, _sink = rig
    service.service_delay = lambda: 0.05
    started = time.monotonic()
    service.commit_request("ws", "dev-1", [proposal(1)])
    assert time.monotonic() - started >= 0.05


def test_commit_count_statistics(rig):
    _metadata, service, _sink = rig
    service.commit_request("ws", "dev-1", [proposal(1)])
    service.commit_request("ws", "dev-1", [proposal(2, STATUS_CHANGED)])
    assert service.commit_count == 2


def test_bundle_commits_successive_versions_of_one_item(rig):
    """A bundled commitRequest may carry v1 and v2 of the same item; the
    second proposal sees the first inside the same transaction."""
    metadata, service, sink = rig
    service.commit_request(
        "ws", "dev-1", [proposal(1), proposal(2, STATUS_CHANGED)]
    )
    assert wait_for(lambda: len(sink.notifications) == 1)
    assert [r.confirmed for r in sink.notifications[0].results] == [True, True]
    assert metadata.get_current("ws:a.txt").version == 2


def test_bundle_conflict_piggybacks_winner_to_loser(rig):
    metadata, service, sink = rig
    service.commit_request("ws", "dev-1", [proposal(1)])
    service.commit_request("ws", "dev-2", [proposal(1, device="dev-2")])
    assert wait_for(lambda: len(sink.notifications) == 2)
    result = sink.notifications[1].results[0]
    assert not result.confirmed
    assert result.current is not None
    assert result.current.device_id == "dev-1"
    assert service.conflict_count == 1
