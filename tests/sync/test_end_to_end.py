"""Integration tests: full StackSync stack, multiple devices (§4-5.2)."""

from __future__ import annotations

import time

import pytest

from repro.client import conflicted_copy_name
from repro.client.chunker import FixedChunker


def test_add_propagates_to_all_devices(testbed):
    c1 = testbed.client(device_id="dev-1")
    c2 = testbed.client(device_id="dev-2")
    c3 = testbed.client(device_id="dev-3")

    meta = c1.put_file("docs/report.txt", b"final version " * 100)
    for client in (c2, c3):
        assert client.wait_for_version(meta.item_id, meta.version, timeout=10)
        assert client.fs.read("docs/report.txt") == b"final version " * 100


def test_update_propagates(testbed):
    c1 = testbed.client(device_id="dev-1")
    c2 = testbed.client(device_id="dev-2")
    meta1 = c1.put_file("a.txt", b"v1")
    assert c2.wait_for_version(meta1.item_id, 1, timeout=10)
    meta2 = c1.put_file("a.txt", b"v2 content")
    assert meta2.version == 2
    assert c2.wait_for_version(meta2.item_id, 2, timeout=10)
    assert c2.fs.read("a.txt") == b"v2 content"


def test_remove_propagates(testbed):
    c1 = testbed.client(device_id="dev-1")
    c2 = testbed.client(device_id="dev-2")
    meta = c1.put_file("bye.txt", b"x")
    assert c2.wait_for_version(meta.item_id, 1, timeout=10)
    deletion = c2.delete_file("bye.txt")
    assert c1.wait_for_version(deletion.item_id, deletion.version, timeout=10)
    assert not c1.fs.exists("bye.txt")


def test_late_joiner_gets_full_state(testbed):
    c1 = testbed.client(device_id="dev-1")
    metas = [c1.put_file(f"f{i}.txt", f"content {i}".encode()) for i in range(5)]
    for meta in metas:
        assert c1.wait_for_version(meta.item_id, meta.version, timeout=10)
    c2 = testbed.client(device_id="dev-2")
    assert set(c2.fs.list_paths()) == {f"f{i}.txt" for i in range(5)}
    assert c2.fs.read("f3.txt") == b"content 3"


def test_conflict_creates_conflicted_copy(testbed):
    c1 = testbed.client(device_id="dev-1")
    c2 = testbed.client(device_id="dev-2")
    base = c1.put_file("shared.txt", b"base")
    assert c2.wait_for_version(base.item_id, 1, timeout=10)

    # Both propose version 2 from the same base.
    c1.put_file("shared.txt", b"from dev-1")
    c2.put_file("shared.txt", b"from dev-2")
    time.sleep(1.0)

    # Exactly one device holds a conflicted copy; both converge on the
    # winner's content for the original path.
    conflicts = c1.stats.conflicts + c2.stats.conflicts
    assert conflicts == 1
    assert c1.fs.read("shared.txt") == c2.fs.read("shared.txt")
    loser = c1 if c1.stats.conflicts else c2
    copy_name = conflicted_copy_name("shared.txt", loser.device_id)
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline and not (
        c1.fs.exists(copy_name) and c2.fs.exists(copy_name)
    ):
        time.sleep(0.05)
    assert c1.fs.exists(copy_name) and c2.fs.exists(copy_name)


def test_dedup_avoids_reupload(testbed):
    client = testbed.client(device_id="dev-1", chunker=FixedChunker(chunk_size=1024))
    content = bytes(range(256)) * 8  # 2 chunks of 1 KB
    client.put_file("one.bin", content)
    puts_after_first = testbed.storage.put_count
    # Identical content under a different name: all chunks dedup away.
    client.put_file("two.bin", content)
    assert testbed.storage.put_count == puts_after_first


def test_multiple_service_instances_share_load():
    from tests.conftest import SyncTestbed

    bed = SyncTestbed(instances=3)
    try:
        c1 = bed.client(device_id="dev-1")
        c2 = bed.client(device_id="dev-2")
        metas = [c1.put_file(f"f{i}.txt", b"data") for i in range(10)]
        for meta in metas:
            assert c2.wait_for_version(meta.item_id, meta.version, timeout=10)
        assert bed.service.commit_count == 10
    finally:
        bed.close()


def test_service_instance_crash_does_not_lose_commits(testbed):
    """§3.4: kill the only SyncService instance mid-stream; a replacement
    drains the queued commits (at-least-once)."""
    c1 = testbed.client(device_id="dev-1")
    c2 = testbed.client(device_id="dev-2")
    # Kill the single instance: commits now pile up in the global queue.
    testbed.server_broker.unbind(testbed.skeletons[0])
    meta = c1.put_file("resilient.txt", b"survives")
    time.sleep(0.3)
    assert c2.applied_at(meta.item_id, meta.version) is None
    # Bind a replacement instance: the queued commit is processed.
    testbed.server_broker.bind("syncservice", testbed.service)
    assert c2.wait_for_version(meta.item_id, meta.version, timeout=10)
    assert c2.fs.read("resilient.txt") == b"survives"


def test_watcher_driven_sync(testbed):
    """End-to-end via the watcher path instead of explicit put_file."""
    c1 = testbed.client(device_id="dev-1")
    c2 = testbed.client(device_id="dev-2")
    c1.fs.write("auto.txt", b"detected")
    events = c1.scan()
    assert len(events) == 1
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and not c2.fs.exists("auto.txt"):
        time.sleep(0.05)
    assert c2.fs.read("auto.txt") == b"detected"


def test_sharing_across_users():
    from tests.conftest import SyncTestbed

    bed = SyncTestbed(users=("alice",))
    try:
        bed.metadata.create_user("bob")
        bed.metadata.grant_access(bed.workspaces["alice"].workspace_id, "bob")
        alice_dev = bed.client("alice", device_id="alice-dev")
        # Bob joins alice's workspace with his own client.
        from repro.client import StackSyncClient

        bob_dev = StackSyncClient(
            "bob", bed.workspaces["alice"], bed.mom, bed.storage, device_id="bob-dev"
        )
        bob_dev.start()
        bed.clients.append(bob_dev)
        meta = alice_dev.put_file("shared/doc.txt", b"hello bob")
        assert bob_dev.wait_for_version(meta.item_id, meta.version, timeout=10)
        assert bob_dev.fs.read("shared/doc.txt") == b"hello bob"
    finally:
        bed.close()


def test_batched_commits(testbed):
    client = testbed.client(device_id="dev-1", batch_size=5)
    other = testbed.client(device_id="dev-2")
    metas = [client.put_file(f"b{i}.txt", b"x") for i in range(5)]
    # The 5th put triggers the flush of one bundled commitRequest.
    for meta in metas:
        assert other.wait_for_version(meta.item_id, meta.version, timeout=10)
    assert client.stats.commits_sent == 1
