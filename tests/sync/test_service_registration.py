"""SyncService registry hygiene: stable probe names, bounded proxy cache."""

from __future__ import annotations

import gc

from repro.metadata import MemoryMetadataBackend
from repro.mom import MessageBroker
from repro.objectmq import Broker
from repro.sync import SyncService
from repro.telemetry.control import HEALTH
from repro.telemetry.registry import REGISTRY


def make_service(**kwargs):
    mom = MessageBroker()
    broker = Broker(mom)
    service = SyncService(MemoryMetadataBackend(), broker, **kwargs)
    return service, broker, mom


def test_probe_names_are_unique_across_instance_lifetimes():
    """A respawned instance must never reuse a dead sibling's probe name.

    The old scheme derived the name from ``id(self)``; CPython reuses
    addresses after garbage collection, so a new instance could silently
    replace the registry entry of a dead one that had not been swept yet.
    The monotonic counter cannot collide.
    """
    seen = set()
    for _round in range(5):
        service, broker, mom = make_service()
        assert service.health_probe_name not in seen
        seen.add(service.health_probe_name)
        broker.close()
        mom.close()
        del service
        gc.collect()  # make address reuse as likely as possible


def test_probe_is_registered_and_reports():
    service, broker, mom = make_service()
    try:
        results = HEALTH.check()
        mine = [r for r in results if r.component == service.health_probe_name]
        assert len(mine) == 1
        assert mine[0].ok
    finally:
        broker.close()
        mom.close()


def test_two_live_services_report_independently():
    a, broker_a, mom_a = make_service()
    b, broker_b, mom_b = make_service()
    try:
        assert a.health_probe_name != b.health_probe_name
        components = {r.component for r in HEALTH.check()}
        assert {a.health_probe_name, b.health_probe_name} <= components
    finally:
        broker_a.close()
        mom_a.close()
        broker_b.close()
        mom_b.close()


def test_workspace_proxy_cache_is_lru_bounded():
    service, broker, mom = make_service(workspace_proxy_cache_size=3)
    try:
        proxies = {wid: service._workspace(wid) for wid in ("w1", "w2", "w3")}
        assert len(service._workspace_proxies) == 3
        # Touch w1 so it becomes most-recently-used, then overflow.
        assert service._workspace("w1") is proxies["w1"]
        service._workspace("w4")
        assert len(service._workspace_proxies) == 3
        # w2 was least recently used and must be the eviction victim.
        assert "w2" not in service._workspace_proxies
        assert "w1" in service._workspace_proxies
        # A re-lookup of the evicted workspace builds a fresh proxy.
        assert service._workspace("w2") is not proxies["w2"]
    finally:
        broker.close()
        mom.close()


def test_workspace_proxy_cache_metrics_exported():
    service, broker, mom = make_service(workspace_proxy_cache_size=2)
    try:
        service._workspace("w1")
        service._workspace("w1")
        service._workspace("w2")
        service._workspace("w3")  # evicts w1
        text = REGISTRY.render_prometheus()
        label = f'instance="{service.health_probe_name}"'
        assert f"sync_workspace_proxy_cache_size{{{label}}} 2.0" in text
        assert f"sync_workspace_proxy_cache_hits{{{label}}} 1.0" in text
        assert f"sync_workspace_proxy_cache_misses{{{label}}} 3.0" in text
        assert f"sync_workspace_proxy_cache_evictions{{{label}}} 1.0" in text
    finally:
        broker.close()
        mom.close()


def test_cache_size_must_be_positive():
    import pytest

    mom = MessageBroker()
    broker = Broker(mom)
    with pytest.raises(ValueError):
        SyncService(MemoryMetadataBackend(), broker, workspace_proxy_cache_size=0)
    broker.close()
    mom.close()
