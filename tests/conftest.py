"""Shared fixtures: brokers, metadata, storage, and full testbeds."""

from __future__ import annotations

import os
import uuid

import pytest

from repro.metadata import (
    MemoryMetadataBackend,
    ShardedMetadataBackend,
    SqliteMetadataBackend,
)
from repro.mom import MessageBroker
from repro.objectmq import Broker
from repro.storage import SwiftLikeStore
from repro.sync import SYNC_SERVICE_OID, SyncService, Workspace
from repro.client import StackSyncClient


def make_metadata_backend(kind: str):
    """Build a metadata engine by name (also consumed by CI's matrix)."""
    if kind == "memory":
        return MemoryMetadataBackend()
    if kind == "sqlite":
        return SqliteMetadataBackend(":memory:")
    if kind == "sharded":
        return ShardedMetadataBackend.memory(3)
    if kind == "sharded-sqlite":
        return ShardedMetadataBackend.sqlite(":memory:", 3)
    raise ValueError(f"unknown metadata backend {kind!r}")


@pytest.fixture
def mom():
    broker = MessageBroker()
    yield broker
    broker.close()


@pytest.fixture
def omq(mom):
    broker = Broker(mom)
    yield broker
    broker.close()


@pytest.fixture(params=["memory", "sqlite", "sharded", "sharded-sqlite"])
def metadata_backend(request):
    backend = make_metadata_backend(request.param)
    yield backend
    backend.close()


@pytest.fixture
def storage():
    return SwiftLikeStore(node_count=4, replicas=2)


class SyncTestbed:
    """A full single-process StackSync deployment for integration tests."""

    def __init__(self, users=("alice",), instances=1, backend=None):
        self.mom = MessageBroker()
        # CI's backend matrix swaps the engine under every integration
        # test via REPRO_METADATA_BACKEND without touching the tests.
        backend = backend or os.environ.get("REPRO_METADATA_BACKEND", "memory")
        self.metadata = make_metadata_backend(backend)
        self.storage = SwiftLikeStore(node_count=4, replicas=2)
        self.server_broker = Broker(self.mom)
        self.service = SyncService(self.metadata, self.server_broker)
        self.skeletons = [
            self.server_broker.bind(SYNC_SERVICE_OID, self.service)
            for _ in range(instances)
        ]
        self.workspaces = {}
        for user in users:
            self.metadata.create_user(user)
            workspace = Workspace(
                workspace_id=f"ws-{user}-{uuid.uuid4().hex[:6]}", owner=user
            )
            self.metadata.create_workspace(workspace)
            self.workspaces[user] = workspace
        self.clients = []

    def client(self, user="alice", device_id=None, **kwargs) -> StackSyncClient:
        client = StackSyncClient(
            user,
            self.workspaces[user],
            self.mom,
            self.storage,
            device_id=device_id,
            **kwargs,
        )
        client.start()
        self.clients.append(client)
        return client

    def close(self):
        for client in self.clients:
            client.stop()
        self.server_broker.close()
        self.mom.close()


@pytest.fixture
def testbed():
    bed = SyncTestbed()
    yield bed
    bed.close()
