"""Tests for future-based invocations and supervisor HA failover."""

from __future__ import annotations

import time

import pytest

from repro.errors import RemoteInvocationError, RemoteTimeout
from repro.mom import MessageBroker
from repro.objectmq import (
    Broker,
    FixedProvisioner,
    Remote,
    RemoteBroker,
    Supervisor,
    remote_interface,
    sync_method,
)
from repro.objectmq.futures import RemoteFuture
from repro.objectmq.ha import SupervisorNode


@remote_interface
class MathApi(Remote):
    @sync_method(timeout=2.0, retry=0)
    def square(self, x):
        ...

    @sync_method(timeout=2.0, retry=0)
    def slow_square(self, x, delay):
        ...

    @sync_method(timeout=2.0, retry=0)
    def explode(self):
        ...


class MathServer:
    def square(self, x):
        return x * x

    def slow_square(self, x, delay):
        time.sleep(delay)
        return x * x

    def explode(self):
        raise RuntimeError("kaboom")


@pytest.fixture
def rig():
    mom = MessageBroker()
    server = Broker(mom)
    server.bind("math", MathServer())
    client = Broker(mom)
    proxy = client.lookup("math", MathApi)
    yield mom, proxy
    client.close()
    server.close()
    mom.close()


# -- RemoteFuture ---------------------------------------------------------------------


def test_begin_returns_future_that_resolves(rig):
    _mom, proxy = rig
    future = proxy.begin_square(7)
    assert isinstance(future, RemoteFuture)
    assert future.result(timeout=2.0) == 49
    assert future.done()


def test_many_calls_in_flight_from_one_thread(rig):
    _mom, proxy = rig
    futures = [proxy.begin_slow_square(i, 0.05) for i in range(8)]
    results = [f.result(timeout=5.0) for f in futures]
    assert results == [i * i for i in range(8)]


def test_future_propagates_remote_error(rig):
    _mom, proxy = rig
    future = proxy.begin_explode()
    with pytest.raises(RemoteInvocationError) as excinfo:
        future.result(timeout=2.0)
    assert "kaboom" in str(excinfo.value)
    assert isinstance(future.exception(timeout=0.1), RemoteInvocationError)


def test_future_timeout():
    mom = MessageBroker()
    client = Broker(mom)
    proxy = client.lookup("nobody", MathApi)
    future = proxy.begin_square(1)
    with pytest.raises(RemoteTimeout):
        future.result(timeout=0.2)
    client.close()
    mom.close()


def test_done_callback_fires(rig):
    _mom, proxy = rig
    seen = []
    future = proxy.begin_square(3)
    future.add_done_callback(lambda f: seen.append(f.result(0.1)))
    future.result(timeout=2.0)
    deadline = time.monotonic() + 1.0
    while not seen and time.monotonic() < deadline:
        time.sleep(0.01)
    assert seen == [9]


def test_done_callback_on_already_completed(rig):
    _mom, proxy = rig
    future = proxy.begin_square(4)
    future.result(timeout=2.0)
    seen = []
    future.add_done_callback(lambda f: seen.append(True))
    assert seen == [True]


def test_blocking_and_future_paths_coexist(rig):
    _mom, proxy = rig
    future = proxy.begin_slow_square(5, 0.1)
    assert proxy.square(2) == 4  # blocking call while a future is in flight
    assert future.result(timeout=2.0) == 25


# -- Supervisor HA ---------------------------------------------------------------------


class Worker:
    def work(self):
        return "ok"


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_supervisor_failover_restores_control_loop():
    mom = MessageBroker()
    host = Broker(mom)
    rbroker = RemoteBroker(host)
    rbroker.register_factory("worker", Worker)
    rbroker.serve()

    clock = FakeClock()

    def make_node(node_id):
        broker = Broker(mom)

        def factory():
            return Supervisor(broker, "worker", FixedProvisioner(2))

        return SupervisorNode(
            mom,
            factory,
            node_id=node_id,
            heartbeat_timeout=2.0,
            settle_window=0.3,
            clock=clock,
        )

    primary = make_node("a-primary")
    standby = make_node("b-standby")

    # Bootstrap: primary leads and enforces 2 instances.
    primary.lead()
    primary.tick()
    assert len(rbroker.instances_for("worker")) == 2
    time.sleep(0.1)  # heartbeat fanout propagation

    # Primary dies; an instance crashes while nobody supervises.
    primary.crash()
    victim = next(iter(rbroker.instances_for("worker")))
    rbroker.crash_instance("worker", victim)
    assert len(rbroker.instances_for("worker")) == 1

    # Standby detects silence, elects itself, repairs the pool.
    clock.t += 3.0
    standby.tick()  # starts election
    time.sleep(0.15)  # candidate fanout propagation
    clock.t += 0.5
    standby.tick()  # decides + first control step
    assert standby.is_leader
    assert standby.supervisor is not None
    assert len(rbroker.instances_for("worker")) == 2

    standby.stop()
    rbroker.stop()
    host.close()
    mom.close()


def test_standby_stays_passive_while_leader_alive():
    mom = MessageBroker()
    clock = FakeClock()

    def factory():
        raise AssertionError("standby must not build a supervisor")

    standby = SupervisorNode(
        mom, factory, node_id="standby", heartbeat_timeout=5.0, clock=clock
    )
    from repro.objectmq import HeartbeatEmitter

    emitter = HeartbeatEmitter(mom, "leader")
    for _ in range(3):
        clock.t += 2.0
        emitter.beat()
        time.sleep(0.05)
        standby.tick()
    assert not standby.is_leader
    assert standby.supervisor is None
    standby.stop()
    mom.close()
