"""Tests for the RemoteBroker slave node."""

from __future__ import annotations

import pytest

from repro.errors import RemoteInvocationError
from repro.mom import MessageBroker
from repro.objectmq import Broker, RemoteBroker, RemoteBrokerApi
from repro.objectmq.remote_broker import REMOTE_BROKER_OID


class Widget:
    def poke(self):
        return "poked"


@pytest.fixture
def rig():
    mom = MessageBroker()
    host = Broker(mom)
    rbroker = RemoteBroker(host, broker_name="node-a")
    rbroker.register_factory("widget", Widget)
    rbroker.serve()
    client = Broker(mom)
    fleet = client.lookup(REMOTE_BROKER_OID, RemoteBrokerApi)
    yield mom, rbroker, fleet
    rbroker.stop()
    client.close()
    host.close()
    mom.close()


def test_ping_reports_census(rig):
    _mom, rbroker, fleet = rig
    replies = fleet.ping()
    assert len(replies) == 1
    assert replies[0]["broker"] == "node-a"
    assert replies[0]["instances"] == {}


def test_spawn_creates_bound_instance(rig):
    _mom, rbroker, fleet = rig
    instance_id = fleet.spawn("widget")
    assert instance_id in rbroker.instances_for("widget")
    assert fleet.ping()[0]["instances"] == {"widget": 1}


def test_spawn_unknown_factory_raises(rig):
    _mom, _rbroker, fleet = rig
    with pytest.raises(RemoteInvocationError):
        fleet.spawn("nonexistent")


def test_get_object_info_reports_snapshots(rig):
    _mom, _rbroker, fleet = rig
    fleet.spawn("widget")
    fleet.spawn("widget")
    chunks = fleet.get_object_info("widget")
    snapshots = [s for chunk in chunks for s in chunk]
    assert len(snapshots) == 2
    assert all(s["oid"] == "widget" for s in snapshots)


def test_shutdown_only_owner_acts(rig):
    _mom, rbroker, fleet = rig
    instance_id = fleet.spawn("widget")
    acks = fleet.shutdown("widget", instance_id)
    assert acks == [True]
    assert rbroker.instances_for("widget") == {}
    # Second shutdown finds nothing.
    assert fleet.shutdown("widget", instance_id) == [False]


def test_crash_instance_is_abrupt(rig):
    _mom, rbroker, fleet = rig
    instance_id = fleet.spawn("widget")
    assert rbroker.crash_instance("widget", instance_id) is True
    assert rbroker.instances_for("widget") == {}
    assert rbroker.crash_instance("widget", instance_id) is False


def test_stop_cleans_all_instances(rig):
    _mom, rbroker, fleet = rig
    fleet.spawn("widget")
    fleet.spawn("widget")
    rbroker.stop()
    assert rbroker.instances_for("widget") == {}
