"""Tests for ObjectInfo statistics and PoolObservation."""

from __future__ import annotations

import pytest

from repro.objectmq.introspection import (
    ObjectInfo,
    ObjectInfoSnapshot,
    PoolObservation,
)


def test_object_info_counts_and_mean():
    info = ObjectInfo("svc", "svc.inst.1")
    for service_time in (0.1, 0.2, 0.3):
        info.invocation_started()
        info.invocation_finished(service_time)
    snapshot = info.snapshot()
    assert snapshot.processed == 3
    assert snapshot.errors == 0
    assert snapshot.mean_service_time == pytest.approx(0.2)
    # Sample variance of (0.1, 0.2, 0.3) is 0.01.
    assert snapshot.service_time_variance == pytest.approx(0.01)
    assert not snapshot.busy


def test_busy_flag_during_invocation():
    info = ObjectInfo("svc", "i")
    info.invocation_started()
    assert info.snapshot().busy
    info.invocation_finished(0.01)
    assert not info.snapshot().busy


def test_error_counting():
    info = ObjectInfo("svc", "i")
    info.invocation_started()
    info.invocation_finished(0.01, error=True)
    snapshot = info.snapshot()
    assert snapshot.errors == 1
    assert snapshot.processed == 1


def test_snapshot_wire_round_trip():
    info = ObjectInfo("svc", "i", broker_id="b")
    info.invocation_started()
    info.invocation_finished(0.05)
    snapshot = info.snapshot()
    assert ObjectInfoSnapshot.from_wire(snapshot.to_wire()) == snapshot


def test_pool_observation_utilization():
    observation = PoolObservation(
        oid="svc",
        timestamp=0.0,
        instance_count=4,
        queue_depth=0,
        arrival_rate=40.0,
        interarrival_variance=0.0,
        mean_service_time=0.05,
        service_time_variance=0.0,
    )
    # rho = 40 * 0.05 / 4 = 0.5
    assert observation.utilization == pytest.approx(0.5)


def test_pool_observation_zero_instances():
    observation = PoolObservation(
        oid="svc",
        timestamp=0.0,
        instance_count=0,
        queue_depth=5,
        arrival_rate=1.0,
        interarrival_variance=0.0,
        mean_service_time=0.05,
        service_time_variance=0.0,
    )
    assert observation.utilization == float("inf")


def test_snapshot_captured_at_is_monotonic_stamp():
    info = ObjectInfo("svc", "i")
    snapshot = info.snapshot()
    assert snapshot.captured_at is not None
    assert snapshot.age(now=snapshot.captured_at + 3.0) == pytest.approx(3.0)
    # Clock never runs backwards for age purposes.
    assert snapshot.age(now=snapshot.captured_at - 1.0) == 0.0


def test_snapshot_staleness_horizon():
    snapshot = ObjectInfo("svc", "i").snapshot()
    assert not snapshot.is_stale(5.0, now=snapshot.captured_at + 4.9)
    assert snapshot.is_stale(5.0, now=snapshot.captured_at + 5.1)


def test_unstamped_snapshot_is_always_stale():
    """A pre-telemetry peer that cannot say when it measured is ignored."""
    data = ObjectInfo("svc", "i").snapshot().to_wire()
    data.pop("captured_at")  # what an old peer would send
    snapshot = ObjectInfoSnapshot.from_wire(data)
    assert snapshot.captured_at is None
    assert snapshot.age() == 0.0
    assert snapshot.is_stale(1e9)
