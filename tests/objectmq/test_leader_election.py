"""Tests for supervisor heartbeats and the min-id leader election (§3.4)."""

from __future__ import annotations

import time

import pytest

from repro.mom import MessageBroker
from repro.objectmq import HeartbeatEmitter, LeaderElector


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def settle(seconds=0.15):
    """Give the MOM consumer threads time to deliver fanout messages."""
    time.sleep(seconds)


@pytest.fixture
def mom():
    broker = MessageBroker()
    yield broker
    broker.close()


def test_heartbeat_resets_failure_detector(mom):
    clock = FakeClock()
    elected = []
    elector = LeaderElector(
        mom,
        participant_id="b",
        heartbeat_timeout=3.0,
        settle_window=0.5,
        on_elected=lambda: elected.append("b"),
        clock=clock,
    )
    emitter = HeartbeatEmitter(mom, "supervisor-1")
    clock.advance(2.0)
    emitter.beat()
    settle()
    clock.advance(2.0)
    elector.tick()  # only 2s since last heartbeat: no election
    assert not elected
    assert not elector.is_leader


def test_single_participant_elects_itself(mom):
    clock = FakeClock()
    elected = []
    elector = LeaderElector(
        mom,
        participant_id="solo",
        heartbeat_timeout=1.0,
        settle_window=0.2,
        on_elected=lambda: elected.append("solo"),
        clock=clock,
    )
    clock.advance(2.0)
    elector.tick()  # starts the election
    settle()
    clock.advance(0.5)
    elector.tick()  # settle window elapsed: decide
    assert elector.is_leader
    assert elected == ["solo"]


def test_lowest_id_wins_among_participants(mom):
    clock = FakeClock()
    winners = []
    electors = [
        LeaderElector(
            mom,
            participant_id=pid,
            heartbeat_timeout=1.0,
            settle_window=0.2,
            on_elected=(lambda p: (lambda: winners.append(p)))(pid),
            clock=clock,
        )
        for pid in ("charlie", "alpha", "bravo")
    ]
    clock.advance(2.0)
    for elector in electors:
        elector.tick()
    settle()  # candidate announcements propagate
    clock.advance(0.5)
    for elector in electors:
        elector.tick()
    settle()
    assert winners == ["alpha"]
    leaders = [e for e in electors if e.is_leader]
    assert len(leaders) == 1 and leaders[0].participant_id == "alpha"


def test_heartbeat_cancels_election_in_progress(mom):
    clock = FakeClock()
    elected = []
    elector = LeaderElector(
        mom,
        participant_id="x",
        heartbeat_timeout=1.0,
        settle_window=0.5,
        on_elected=lambda: elected.append("x"),
        clock=clock,
    )
    emitter = HeartbeatEmitter(mom, "supervisor-1")
    clock.advance(2.0)
    elector.tick()  # election starts
    emitter.beat()  # supervisor comes back
    settle()
    clock.advance(1.0)
    elector.tick()
    assert not elector.is_leader
    assert not elected
