"""Publisher-side cast buffering: backpressure, deadlines, ordering, identity.

Covers the :class:`~repro.objectmq.buffering.PublishBuffer` in isolation
(against a recording fake) and wired through an ObjectMQ Broker against a
real SyncService — including the byte-identity requirement: buffered
publishing must produce exactly the histories an unbuffered client does.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.metadata import MemoryMetadataBackend
from repro.mom import MessageBroker
from repro.mom.message import Message
from repro.objectmq import Broker
from repro.objectmq.buffering import PublishBuffer
from repro.sync import (
    SYNC_SERVICE_OID,
    SYNC_SERVICE_PREFETCH,
    SyncService,
    SyncServiceApi,
    Workspace,
)
from repro.sync.models import STATUS_CHANGED, STATUS_NEW, ItemMetadata


def wait_for(predicate, timeout=3.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class RecordingMom:
    """Fake broker recording publish / publish_many calls thread-safely."""

    def __init__(self, batched=True):
        self.lock = threading.Lock()
        self.batches = []
        self.singles = []
        if not batched:
            self.publish_many = None  # simulate an adapter without batch API

    def publish(self, exchange_name, routing_key, message):
        with self.lock:
            self.singles.append((exchange_name, routing_key, message))
        return 1

    def publish_many(self, items):
        batch = list(items)
        with self.lock:
            self.batches.append(batch)
        return len(batch)

    def delivered(self):
        with self.lock:
            flat = [item for batch in self.batches for item in batch]
            return flat + list(self.singles)


def test_size_flush_happens_inline_with_backpressure():
    mom = RecordingMom()
    buffer = PublishBuffer(mom, max_messages=4, flush_deadline=60.0)
    for i in range(3):
        buffer.publish("", "q", Message(f"m{i}".encode()))
    assert len(buffer) == 3
    assert mom.delivered() == []
    # The filling publish flushes on the producing thread, synchronously.
    buffer.publish("", "q", Message(b"m3"))
    assert len(buffer) == 0
    assert len(mom.batches) == 1
    assert [m.body for _, _, m in mom.batches[0]] == [b"m0", b"m1", b"m2", b"m3"]
    assert buffer.size_flushes == 1
    buffer.close()


def test_deadline_flush_drains_a_trickle():
    mom = RecordingMom()
    buffer = PublishBuffer(mom, max_messages=1000, flush_deadline=0.05)
    buffer.publish("", "q", Message(b"lonely"))
    assert wait_for(lambda: len(mom.delivered()) == 1, timeout=2.0)
    assert buffer.deadline_flushes >= 1
    assert len(buffer) == 0
    buffer.close()


def test_flush_preserves_fifo_order_and_destinations():
    mom = RecordingMom()
    buffer = PublishBuffer(mom, max_messages=100, flush_deadline=60.0)
    buffer.publish("", "q1", Message(b"a"))
    buffer.publish("fan", "key", Message(b"b"))
    buffer.publish("", "q1", Message(b"c"))
    assert buffer.flush() == 3
    assert [(e, k, m.body) for e, k, m in mom.batches[0]] == [
        ("", "q1", b"a"),
        ("fan", "key", b"b"),
        ("", "q1", b"c"),
    ]
    buffer.close()


def test_close_flushes_pending_casts():
    mom = RecordingMom()
    buffer = PublishBuffer(mom, max_messages=100, flush_deadline=60.0)
    buffer.publish("", "q", Message(b"pending"))
    buffer.close()
    assert [m.body for _, _, m in mom.delivered()] == [b"pending"]
    # Casts after close degrade to direct publishes — never dropped.
    buffer.publish("", "q", Message(b"late"))
    assert mom.singles[0][2].body == b"late"


def test_falls_back_to_per_message_publish_without_batch_api():
    mom = RecordingMom(batched=False)
    buffer = PublishBuffer(mom, max_messages=2, flush_deadline=60.0)
    buffer.publish("", "q", Message(b"x"))
    buffer.publish("", "q", Message(b"y"))
    assert [m.body for _, _, m in mom.singles] == [b"x", b"y"]
    buffer.close()


def test_constructor_validates_arguments():
    with pytest.raises(ValueError):
        PublishBuffer(RecordingMom(), max_messages=0)
    with pytest.raises(ValueError):
        PublishBuffer(RecordingMom(), flush_deadline=0.0)


def test_flush_counters_scrape():
    mom = RecordingMom()
    buffer = PublishBuffer(mom, max_messages=2, flush_deadline=60.0, name="c1")
    buffer.publish("", "q", Message(b"x"))
    buffer.publish("", "q", Message(b"y"))
    snapshot = buffer._scrape()
    assert snapshot["flushes"] == 1.0
    assert snapshot["flushed_messages"] == 2.0
    assert snapshot["pending"] == 0.0
    buffer.close()


# -- wired through the ObjectMQ Broker ----------------------------------------


def proposal(name, version, status, device="dev-1"):
    return ItemMetadata(
        item_id=f"ws:{name}",
        workspace_id="ws",
        version=version,
        filename=name,
        status=status,
        size=4,
        checksum=f"ck-{name}-{version}",
        chunks=[f"f-{name}-{version}"],
        modified_at=1.0,
        device_id=device,
    )


def run_commit_stream(environment):
    """Drive a fixed commit sequence through a (possibly buffered) client.

    Returns the per-item metadata histories the service ends up with.
    """
    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    metadata.create_user("alice")
    metadata.create_workspace(Workspace(workspace_id="ws", owner="alice"))
    server = Broker(mom)
    service = SyncService(metadata, server)
    server.bind(SYNC_SERVICE_OID, service, prefetch=SYNC_SERVICE_PREFETCH)
    client = Broker(mom, environment=environment)
    proxy = client.lookup(SYNC_SERVICE_OID, SyncServiceApi)
    try:
        for i in range(8):
            proxy.commit_request("ws", "dev-1", [proposal(f"f{i}.txt", 1, STATUS_NEW)])
        for i in range(8):
            proxy.commit_request(
                "ws", "dev-1", [proposal(f"f{i}.txt", 2, STATUS_CHANGED)]
            )
        client.flush_publishes()
        assert wait_for(lambda: service.commit_count == 16)
        # A sync call after buffered casts must observe all of them
        # (flush-before-sync ordering).
        changes = proxy.get_changes("ws")
        histories = {
            item.item_id: [
                (m.version, m.status, m.checksum, tuple(m.chunks))
                for m in metadata.item_history(item.item_id)
            ]
            for item in changes
        }
        return {item.item_id: item for item in changes}, histories
    finally:
        client.close()
        server.close()
        mom.close()


def test_buffered_histories_identical_to_unbuffered():
    plain_items, plain_histories = run_commit_stream(environment=None)
    buffered_items, buffered_histories = run_commit_stream(
        environment={"publish_buffer": 64, "publish_flush_deadline": 0.002}
    )
    assert buffered_histories == plain_histories
    assert set(buffered_items) == set(plain_items)
    for item_id, item in buffered_items.items():
        assert item == plain_items[item_id]


def test_buffered_casts_survive_broker_close():
    mom = MessageBroker()
    metadata = MemoryMetadataBackend()
    metadata.create_user("alice")
    metadata.create_workspace(Workspace(workspace_id="ws", owner="alice"))
    server = Broker(mom)
    service = SyncService(metadata, server)
    server.bind(SYNC_SERVICE_OID, service)
    # Huge buffer + long deadline: nothing would flush on its own.
    client = Broker(
        mom, environment={"publish_buffer": 10_000, "publish_flush_deadline": 30.0}
    )
    proxy = client.lookup(SYNC_SERVICE_OID, SyncServiceApi)
    proxy.commit_request("ws", "dev-1", [proposal("held.txt", 1, STATUS_NEW)])
    client.close()  # at-least-once on shutdown: close must flush
    assert wait_for(lambda: service.commit_count == 1)
    server.close()
    mom.close()


def test_unbuffered_broker_publish_paths_are_nops():
    mom = MessageBroker()
    broker = Broker(mom)
    assert broker.publish_buffer is None
    assert broker.flush_publishes() == 0
    assert not broker.publish_buffered("", "q", Message(b"x"))
    broker.close()
    mom.close()
