"""Tests for the invocation decorators and @remote_interface validation."""

from __future__ import annotations

import pytest

from repro.errors import NotARemoteInterface
from repro.objectmq import (
    Remote,
    async_method,
    interface_specs,
    is_remote_interface,
    multi_method,
    remote_interface,
    sync_method,
)


def test_async_method_spec():
    @remote_interface
    class Api(Remote):
        @async_method
        def fire(self):
            ...

    spec = interface_specs(Api)["fire"]
    assert spec.kind == "async"
    assert not spec.multi
    assert not spec.expects_reply


def test_sync_method_bare_and_parameterised():
    @remote_interface
    class Api(Remote):
        @sync_method
        def a(self):
            ...

        @sync_method(timeout=2.5, retry=7)
        def b(self):
            ...

    specs = interface_specs(Api)
    assert specs["a"].kind == "sync"
    assert specs["a"].expects_reply
    assert specs["b"].timeout == 2.5
    assert specs["b"].retry == 7


def test_multi_method_defaults_to_async():
    @remote_interface
    class Api(Remote):
        @multi_method
        def notify(self):
            ...

    spec = interface_specs(Api)["notify"]
    assert spec.multi and spec.kind == "async"


@pytest.mark.parametrize("order", ["multi_first", "multi_last"])
def test_multi_composes_with_sync_in_any_order(order):
    if order == "multi_first":

        @remote_interface
        class Api(Remote):
            @multi_method
            @sync_method(timeout=0.9, retry=1)
            def poll(self):
                ...

    else:

        @remote_interface
        class Api(Remote):
            @sync_method(timeout=0.9, retry=1)
            @multi_method
            def poll(self):
                ...

    spec = interface_specs(Api)["poll"]
    assert spec.multi and spec.kind == "sync"
    assert spec.timeout == 0.9


def test_undecorated_public_method_rejected():
    with pytest.raises(NotARemoteInterface):

        @remote_interface
        class Api(Remote):
            def naked(self):
                ...


def test_private_methods_ignored():
    @remote_interface
    class Api(Remote):
        @async_method
        def ok(self):
            ...

        def _helper(self):
            ...

    assert set(interface_specs(Api)) == {"ok"}


def test_interface_specs_requires_decoration():
    class Plain:
        pass

    with pytest.raises(NotARemoteInterface):
        interface_specs(Plain)
    assert not is_remote_interface(Plain)


def test_paper_sync_service_signature():
    """The paper's Fig 6 declarations map 1:1 onto our decorators."""

    @remote_interface
    class SyncServiceLike(Remote):
        @sync_method(retry=5, timeout=1.5)
        def get_changes(self, workspace):
            ...

        @sync_method(retry=5, timeout=1.5)
        def get_workspaces(self):
            ...

        @async_method
        def commit_request(self, workspace, objects_changed):
            ...

    specs = interface_specs(SyncServiceLike)
    assert specs["get_changes"].retry == 5
    assert specs["get_changes"].timeout == 1.5
    assert specs["commit_request"].kind == "async"
