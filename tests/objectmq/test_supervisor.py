"""Integration tests: RemoteBroker fleet + Supervisor enforcement (§3.3-3.4)."""

from __future__ import annotations

import time

import pytest

from repro.mom import MessageBroker
from repro.objectmq import (
    Broker,
    CrashInjector,
    FixedProvisioner,
    RemoteBroker,
    Supervisor,
)
from repro.telemetry.control import (
    HEALTH,
    KIND_DECISION,
    KIND_SHUTDOWN,
    KIND_SPAWN,
    REASON_CRASH_REPAIR,
    REASON_SCALE_DOWN,
    REASON_SCALE_UP,
    DecisionJournal,
)


class Worker:
    """Trivial spawnable server object."""

    def __init__(self):
        self.calls = 0

    def work(self):
        self.calls += 1
        return "ok"


@pytest.fixture
def fleet():
    mom = MessageBroker()
    brokers = []
    rbrokers = []
    for _ in range(2):
        broker = Broker(mom)
        rbroker = RemoteBroker(broker)
        rbroker.register_factory("worker", Worker)
        rbroker.serve()
        brokers.append(broker)
        rbrokers.append(rbroker)
    sup_broker = Broker(mom)
    yield mom, rbrokers, sup_broker
    sup_broker.close()
    for rbroker in rbrokers:
        rbroker.stop()
    for broker in brokers:
        broker.close()
    mom.close()


def total_instances(rbrokers, oid="worker"):
    return sum(len(rb.instances_for(oid)) for rb in rbrokers)


def test_supervisor_spawns_to_desired_count(fleet):
    _mom, rbrokers, sup_broker = fleet
    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(3))
    record = supervisor.step()
    assert record.spawned == 3
    assert total_instances(rbrokers) == 3
    assert record.alive_brokers == 2


def test_supervisor_scales_down(fleet):
    _mom, rbrokers, sup_broker = fleet
    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(4))
    supervisor.step()
    assert total_instances(rbrokers) == 4
    supervisor.provisioner = FixedProvisioner(1)
    supervisor.min_instances = 1
    record = supervisor.step()
    assert record.removed == 3
    assert total_instances(rbrokers) == 1


def test_supervisor_respawns_after_crash(fleet):
    """The Fig 8(f) repair loop: crash -> census shortfall -> respawn."""
    _mom, rbrokers, sup_broker = fleet
    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(2))
    supervisor.step()
    assert total_instances(rbrokers) == 2

    injector = CrashInjector(rbrokers, "worker", period=1000.0)
    assert injector.crash_one() is not None
    assert total_instances(rbrokers) == 1

    record = supervisor.step()
    assert record.spawned == 1
    assert total_instances(rbrokers) == 2
    assert injector.crash_count == 1


def test_supervisor_clamps_to_max(fleet):
    _mom, rbrokers, sup_broker = fleet
    supervisor = Supervisor(
        sup_broker, "worker", FixedProvisioner(50), max_instances=5
    )
    supervisor.step()
    assert total_instances(rbrokers) == 5


def test_supervisor_history_records(fleet):
    _mom, _rbrokers, sup_broker = fleet
    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(1))
    supervisor.step()
    supervisor.step()
    assert len(supervisor.history.records) == 2
    assert supervisor.history.records[0].desired == 1


def test_supervisor_background_loop(fleet):
    _mom, rbrokers, sup_broker = fleet
    supervisor = Supervisor(
        sup_broker, "worker", FixedProvisioner(2), control_interval=0.1
    )
    supervisor.start()
    try:
        deadline = time.monotonic() + 5.0
        while total_instances(rbrokers) < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert total_instances(rbrokers) == 2
    finally:
        supervisor.stop()


def test_spawned_instances_actually_serve(fleet):
    _mom, _rbrokers, sup_broker = fleet
    from repro.objectmq import Remote, remote_interface, sync_method

    @remote_interface
    class WorkerApi(Remote):
        @sync_method(timeout=2.0, retry=1)
        def work(self):
            ...

    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(2))
    supervisor.step()
    proxy = sup_broker.lookup("worker", WorkerApi)
    assert proxy.work() == "ok"


def test_observation_includes_instance_snapshots(fleet):
    _mom, _rbrokers, sup_broker = fleet
    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(2))
    supervisor.step()
    observation = supervisor.observe()
    assert observation.instance_count == 2
    assert len(observation.instances) == 2
    assert all(s.oid == "worker" for s in observation.instances)


def test_journal_records_decisions_and_spawns(fleet):
    _mom, _rbrokers, sup_broker = fleet
    journal = DecisionJournal()
    supervisor = Supervisor(
        sup_broker, "worker", FixedProvisioner(2), journal=journal
    )
    supervisor.step()

    (decision,) = journal.decisions()
    assert decision.data["policy"] == "fixed"
    assert decision.data["census"] == 0
    assert decision.data["desired"] == 2
    assert decision.data["alive_brokers"] == 2
    assert decision.data["reason"].strip()

    spawns = journal.events(KIND_SPAWN)
    assert len(spawns) == 2
    for spawn in spawns:
        assert spawn.data["reason"] == REASON_SCALE_UP
        assert spawn.data["decision_seq"] == decision.seq
        assert spawn.data["instance_id"]
        assert spawn.data["policy_reason"] == decision.data["reason"]


def test_journal_attributes_crash_repair(fleet):
    """Satellite of Fig 8(f): a mid-run crash must surface in the journal as
    a census drop followed by a replacement spawn tagged crash-repair."""
    _mom, rbrokers, sup_broker = fleet
    journal = DecisionJournal()
    supervisor = Supervisor(
        sup_broker, "worker", FixedProvisioner(2), journal=journal
    )
    supervisor.step()
    assert total_instances(rbrokers) == 2

    injector = CrashInjector(rbrokers, "worker", period=1000.0)
    assert injector.crash_one() is not None
    assert total_instances(rbrokers) == 1

    record = supervisor.step()
    assert record.spawned == 1
    assert total_instances(rbrokers) == 2

    repair_decision = journal.decisions()[-1]
    assert repair_decision.data["census"] == 1
    assert repair_decision.data["census_shortfall"] == 1

    replacement = journal.events(KIND_SPAWN)[-1]
    assert replacement.data["reason"] == REASON_CRASH_REPAIR
    assert replacement.data["decision_seq"] == repair_decision.seq
    assert replacement.data["policy_reason"].strip()


def test_journal_records_scale_down_with_instance_ids(fleet):
    _mom, rbrokers, sup_broker = fleet
    journal = DecisionJournal()
    supervisor = Supervisor(
        sup_broker, "worker", FixedProvisioner(3), journal=journal
    )
    supervisor.step()
    supervisor.provisioner = FixedProvisioner(1)
    supervisor.step()
    assert total_instances(rbrokers) == 1

    shutdowns = journal.events(KIND_SHUTDOWN)
    assert len(shutdowns) == 2
    assert {s.data["reason"] for s in shutdowns} == {REASON_SCALE_DOWN}
    assert all(s.data["instance_id"] for s in shutdowns)
    assert {s.data["decision_seq"] for s in shutdowns} == {
        journal.decisions()[-1].seq
    }


def test_journal_growth_beyond_repair_splits_reasons(fleet):
    """When the pool both repairs a crash and scales up in one period, only
    the shortfall portion is attributed to crash repair."""
    _mom, rbrokers, sup_broker = fleet
    journal = DecisionJournal()
    supervisor = Supervisor(
        sup_broker, "worker", FixedProvisioner(2), journal=journal
    )
    supervisor.step()
    CrashInjector(rbrokers, "worker", period=1000.0).crash_one()

    supervisor.provisioner = FixedProvisioner(4)  # repair 1 + grow 2
    supervisor.step()
    assert total_instances(rbrokers) == 4

    last_seq = journal.decisions()[-1].seq
    spawns = [
        s for s in journal.events(KIND_SPAWN)
        if s.data["decision_seq"] == last_seq
    ]
    reasons = [s.data["reason"] for s in spawns]
    assert reasons == [REASON_CRASH_REPAIR, REASON_SCALE_UP, REASON_SCALE_UP]


def test_supervisor_registers_health_probe(fleet):
    _mom, _rbrokers, sup_broker = fleet
    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(1))
    supervisor.step()
    results = {r.component: r for r in HEALTH.check()}
    probe = results["supervisor:worker"]
    assert probe.ok and probe.required
    assert probe.detail["steps"] == 1


def test_supervisor_without_journal_unchanged(fleet):
    _mom, rbrokers, sup_broker = fleet
    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(2))
    assert supervisor.journal is None
    supervisor.step()
    assert total_instances(rbrokers) == 2


class _StubFleet:
    """Hands the Supervisor canned ObjectInfo wire snapshots."""

    def __init__(self, snapshots):
        self.snapshots = snapshots

    def get_object_info(self, oid):
        return [[s.to_wire() for s in self.snapshots]]

    def ping(self):
        return ["stub-broker"]


def _snapshot(instance, captured_at):
    from repro.objectmq.introspection import ObjectInfoSnapshot

    return ObjectInfoSnapshot(
        oid="worker",
        instance_id=instance,
        broker_id="stub-broker",
        processed=10,
        errors=0,
        busy=False,
        mean_service_time=0.05,
        service_time_variance=0.0,
        last_invocation_at=None,
        uptime=1.0,
        captured_at=captured_at,
    )


def test_supervisor_ignores_stale_snapshots(fleet):
    _mom, _rbrokers, sup_broker = fleet
    supervisor = Supervisor(
        sup_broker, "worker", FixedProvisioner(1), snapshot_horizon=5.0
    )
    now = time.monotonic()
    supervisor.fleet = _StubFleet([
        _snapshot("fresh", captured_at=now),
        _snapshot("stale", captured_at=now - 60.0),
        _snapshot("unstamped", captured_at=None),
    ])
    observation = supervisor.observe()
    assert observation.instance_count == 1
    assert [s.instance_id for s in observation.instances] == ["fresh"]


def test_supervisor_horizon_none_disables_filtering(fleet):
    _mom, _rbrokers, sup_broker = fleet
    supervisor = Supervisor(
        sup_broker, "worker", FixedProvisioner(1), snapshot_horizon=None
    )
    now = time.monotonic()
    supervisor.fleet = _StubFleet([
        _snapshot("fresh", captured_at=now),
        _snapshot("stale", captured_at=now - 3600.0),
    ])
    observation = supervisor.observe()
    assert observation.instance_count == 2


def test_supervisor_live_snapshots_are_fresh(fleet):
    """Snapshots polled from a live fleet pass the default horizon."""
    _mom, _rbrokers, sup_broker = fleet
    supervisor = Supervisor(sup_broker, "worker", FixedProvisioner(2))
    supervisor.step()
    observation = supervisor.observe()
    assert observation.instance_count == 2
    assert all(s.captured_at is not None for s in observation.instances)
