"""Tests for multicast quorum, watcher excludes and online learning."""

from __future__ import annotations

import time

import pytest

from repro.mom import MessageBroker
from repro.objectmq import (
    Broker,
    Remote,
    interface_specs,
    multi_method,
    remote_interface,
    sync_method,
)


# -- multicast quorum -----------------------------------------------------------------


@remote_interface
class ReplicaApi(Remote):
    @multi_method(quorum=2)
    @sync_method(timeout=3.0, retry=0)
    def read(self):
        ...

    @multi_method
    @sync_method(timeout=0.5, retry=0)
    def read_all(self):
        ...


class Replica:
    def __init__(self, name, delay=0.0):
        self.name = name
        self.delay = delay

    def read(self):
        if self.delay:
            time.sleep(self.delay)
        return self.name

    def read_all(self):
        if self.delay:
            time.sleep(self.delay)
        return self.name


def test_quorum_spec_recorded():
    specs = interface_specs(ReplicaApi)
    assert specs["read"].quorum == 2
    assert specs["read"].multi and specs["read"].kind == "sync"
    assert specs["read_all"].quorum is None


def test_quorum_returns_after_n_replies():
    mom = MessageBroker()
    server = Broker(mom)
    # Two fast replicas, one pathologically slow.
    server.bind("replica", Replica("fast-1"))
    server.bind("replica", Replica("fast-2"))
    server.bind("replica", Replica("slow", delay=2.0))
    client = Broker(mom)
    proxy = client.lookup("replica", ReplicaApi)

    started = time.monotonic()
    results = proxy.read()
    elapsed = time.monotonic() - started
    assert len(results) == 2
    assert set(results) <= {"fast-1", "fast-2"}
    assert elapsed < 1.0  # did not wait for the slow replica
    client.close()
    server.close()
    mom.close()


def test_no_quorum_waits_for_timeout_with_straggler():
    mom = MessageBroker()
    server = Broker(mom)
    server.bind("replica", Replica("fast"))
    server.bind("replica", Replica("slow", delay=5.0))
    client = Broker(mom)
    proxy = client.lookup("replica", ReplicaApi)
    results = proxy.read_all()  # 0.5s timeout, slow replica misses it
    assert results == ["fast"]
    client.close()
    server.close()
    mom.close()


# -- watcher exclusion patterns ----------------------------------------------------------


def test_watcher_excludes_noise_files():
    from repro.client import PollingWatcher, VirtualFilesystem

    fs = VirtualFilesystem()
    watcher = PollingWatcher(fs)
    watcher.prime()
    fs.write("real.txt", b"keep me")
    fs.write("scratch.tmp", b"ignore me")
    fs.write("draft.swp", b"ignore me")
    fs.write(".DS_Store", b"ignore me")
    fs.write("docs/notes~", b"ignore me")
    events = watcher.scan_once()
    assert [(e.kind, e.path) for e in events] == [("ADD", "real.txt")]


def test_watcher_custom_excludes():
    from repro.client import PollingWatcher, VirtualFilesystem

    fs = VirtualFilesystem()
    watcher = PollingWatcher(fs, excludes=("secret/*",))
    watcher.prime()
    fs.write("secret/key.pem", b"x")
    fs.write("normal.tmp", b"x")  # default excludes replaced
    events = watcher.scan_once()
    assert [(e.kind, e.path) for e in events] == [("ADD", "normal.tmp")]


def test_excluded_files_never_reach_the_server(testbed):
    c1 = testbed.client(device_id="d1")
    c2 = testbed.client(device_id="d2")
    c1.fs.write("work.txt", b"content")
    c1.fs.write("work.txt.tmp", b"editor scratch")
    c1.scan()
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and not c2.fs.exists("work.txt"):
        time.sleep(0.05)
    assert c2.fs.exists("work.txt")
    time.sleep(0.3)
    assert not c2.fs.exists("work.txt.tmp")


# -- combined provisioner online learning ---------------------------------------------------


def test_online_learning_populates_history():
    from repro.elasticity import (
        CombinedProvisioner,
        PredictiveProvisioner,
        ReactiveProvisioner,
    )
    from repro.objectmq.introspection import PoolObservation

    predictive = PredictiveProvisioner(period=10.0, day_length=100.0)
    combined = CombinedProvisioner(
        predictive,
        ReactiveProvisioner(predictive=predictive),
        predictive_interval=10.0,
        reactive_interval=5.0,
        online_learning=True,
    )

    def obs(t, rate):
        return PoolObservation(
            oid="svc", timestamp=t, instance_count=1, queue_depth=0,
            arrival_rate=rate, interarrival_variance=0.0,
            mean_service_time=0.05, service_time_variance=0.0,
        )

    assert predictive.predicted_rate(0.0) == 0.0
    combined.propose(obs(0.0, 40.0))
    # The observation was recorded: next day's same period predicts it.
    assert predictive.predicted_rate(100.0) == 40.0
