"""Concurrent ObjectInfo updates: counts and Welford stats stay race-free."""

from __future__ import annotations

import statistics
import threading

import pytest

from repro.objectmq import Broker, Remote, remote_interface, sync_method
from repro.objectmq.introspection import ObjectInfo


def test_direct_concurrent_updates_are_exact():
    """N threads hammer one ObjectInfo; every counter and moment is exact."""
    info = ObjectInfo("svc", "svc.inst.1")
    thread_count, per_thread = 8, 500

    def hammer(index: int) -> None:
        service_time = 0.001 * (index + 1)
        for i in range(per_thread):
            info.invocation_started()
            info.invocation_finished(service_time, error=(i % 10 == 0))

    threads = [
        threading.Thread(target=hammer, args=(index,))
        for index in range(thread_count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    snapshot = info.snapshot()
    assert snapshot.processed == thread_count * per_thread
    assert snapshot.errors == thread_count * (per_thread // 10)
    assert not snapshot.busy

    values = [
        0.001 * (index + 1)
        for index in range(thread_count)
        for _ in range(per_thread)
    ]
    assert snapshot.mean_service_time == pytest.approx(statistics.fmean(values))
    assert snapshot.service_time_variance == pytest.approx(
        statistics.variance(values)
    )


class _Target:
    def ok(self):
        return "ok"

    def boom(self):
        raise RuntimeError("boom")


@remote_interface
class _TargetApi(Remote):
    @sync_method(timeout=10.0)
    def ok(self):
        ...

    @sync_method(timeout=10.0)
    def boom(self):
        ...


def test_skeleton_object_info_under_concurrent_clients(mom):
    """Hammer one skeleton from N client threads; counts stay consistent."""
    server = Broker(mom)
    skeleton = server.bind("hammer", _Target())
    thread_count, per_thread = 6, 25
    failures = []

    def client_thread() -> None:
        client = Broker(mom)
        try:
            proxy = client.lookup("hammer", _TargetApi)
            for i in range(per_thread):
                if i % 5 == 0:
                    try:
                        proxy.boom()
                    except Exception:  # noqa: BLE001 - remote error expected
                        pass
                    else:
                        failures.append("boom did not raise")
                else:
                    if proxy.ok() != "ok":
                        failures.append("bad reply")
        except Exception as exc:  # noqa: BLE001 - surfaced after join
            failures.append(repr(exc))
        finally:
            client.close()

    threads = [threading.Thread(target=client_thread) for _ in range(thread_count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    try:
        assert failures == []
        snapshot = skeleton.object_info.snapshot()
        assert snapshot.processed == thread_count * per_thread
        assert snapshot.errors == thread_count * (per_thread // 5)
        assert snapshot.mean_service_time >= 0.0
        assert snapshot.service_time_variance >= 0.0
        assert not snapshot.busy
    finally:
        server.close()
