"""Integration tests: ObjectMQ RPC over the in-process MOM broker.

Covers the HelloWorld flow of the paper's Fig 2 plus load balancing,
error propagation, timeouts/retries and multicast collection.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import RemoteInvocationError, RemoteTimeout
from repro.mom import MessageBroker
from repro.objectmq import (
    Broker,
    Remote,
    async_method,
    multi_method,
    remote_interface,
    sync_method,
)


@remote_interface
class CalculatorApi(Remote):
    @sync_method(timeout=2.0, retry=1)
    def add(self, a, b):
        ...

    @sync_method(timeout=0.3, retry=1)
    def slow(self, seconds):
        ...

    @sync_method(timeout=2.0, retry=0)
    def fail(self):
        ...

    @async_method
    def record(self, value):
        ...

    @multi_method
    @sync_method(timeout=1.0, retry=0)
    def who(self):
        ...

    @multi_method
    @async_method
    def broadcast(self, value):
        ...


class Calculator:
    def __init__(self, name="calc"):
        self.name = name
        self.recorded = []
        self.broadcasts = []
        self.lock = threading.Lock()

    def add(self, a, b):
        return a + b

    def slow(self, seconds):
        time.sleep(seconds)
        return "done"

    def fail(self):
        raise ValueError("deliberate")

    def record(self, value):
        with self.lock:
            self.recorded.append(value)

    def who(self):
        return self.name

    def broadcast(self, value):
        with self.lock:
            self.broadcasts.append(value)


@pytest.fixture
def rig():
    mom = MessageBroker()
    server = Broker(mom)
    client = Broker(mom)
    yield mom, server, client
    client.close()
    server.close()
    mom.close()


def wait_for(predicate, timeout=3.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


def test_hello_world_round_trip(rig):
    _mom, server, client = rig
    server.bind("calc", Calculator())
    proxy = client.lookup("calc", CalculatorApi)
    assert proxy.add(2, 3) == 5
    assert proxy.add(a=10, b=-4) == 6


def test_async_invocation_fire_and_forget(rig):
    _mom, server, client = rig
    calc = Calculator()
    server.bind("calc", calc)
    proxy = client.lookup("calc", CalculatorApi)
    assert proxy.record(42) is None
    assert wait_for(lambda: calc.recorded == [42])


def test_remote_exception_propagates(rig):
    _mom, server, client = rig
    server.bind("calc", Calculator())
    proxy = client.lookup("calc", CalculatorApi)
    with pytest.raises(RemoteInvocationError) as excinfo:
        proxy.fail()
    assert "deliberate" in str(excinfo.value)


def test_sync_timeout_raises_after_retries(rig):
    _mom, _server, client = rig
    # Nothing bound under this oid: the queue exists after the first
    # publish but no consumer replies.
    proxy = client.lookup("nobody-home", CalculatorApi)
    started = time.monotonic()
    with pytest.raises(RemoteTimeout):
        proxy.slow(0)
    elapsed = time.monotonic() - started
    # 2 attempts x 0.3s timeout
    assert 0.5 <= elapsed < 3.0
    assert proxy.call_stats.timeouts == 1


def test_slow_call_succeeds_within_timeout(rig):
    _mom, server, client = rig
    server.bind("calc", Calculator())
    proxy = client.lookup("calc", CalculatorApi)
    assert proxy.slow(0.05) == "done"


def test_load_balancing_across_instances(rig):
    _mom, server, client = rig
    c1, c2 = Calculator("one"), Calculator("two")
    server.bind("calc", c1)
    server.bind("calc", c2)
    proxy = client.lookup("calc", CalculatorApi)
    for i in range(20):
        proxy.record(i)
    assert wait_for(lambda: len(c1.recorded) + len(c2.recorded) == 20)
    # Both instances share the work queue.
    assert c1.recorded and c2.recorded


def test_multicast_sync_collects_all_replies(rig):
    _mom, server, client = rig
    server.bind("calc", Calculator("one"))
    server.bind("calc", Calculator("two"))
    server.bind("calc", Calculator("three"))
    proxy = client.lookup("calc", CalculatorApi)
    names = proxy.who()
    assert sorted(names) == ["one", "three", "two"]


def test_multicast_async_reaches_every_instance(rig):
    _mom, server, client = rig
    instances = [Calculator(str(i)) for i in range(3)]
    for calc in instances:
        server.bind("calc", calc)
    proxy = client.lookup("calc", CalculatorApi)
    count = proxy.broadcast("hello")
    assert count == 3
    assert wait_for(lambda: all(c.broadcasts == ["hello"] for c in instances))


def test_multicast_to_empty_group_is_noop(rig):
    _mom, _server, client = rig
    proxy = client.lookup("ghost", CalculatorApi)
    assert proxy.broadcast("anyone?") == 0
    assert proxy.who() == []


def test_new_instance_joins_multicast_group(rig):
    _mom, server, client = rig
    server.bind("calc", Calculator("one"))
    proxy = client.lookup("calc", CalculatorApi)
    assert len(proxy.who()) == 1
    server.bind("calc", Calculator("two"))
    assert len(proxy.who()) == 2


def test_unbind_leaves_multicast_group(rig):
    _mom, server, client = rig
    sk1 = server.bind("calc", Calculator("one"))
    server.bind("calc", Calculator("two"))
    proxy = client.lookup("calc", CalculatorApi)
    assert len(proxy.who()) == 2
    server.unbind(sk1)
    assert proxy.who() == ["two"]


def test_codec_configurable_per_broker():
    mom = MessageBroker()
    server = Broker(mom, environment={"codec": "json"})
    client = Broker(mom, environment={"codec": "json"})
    server.bind("calc", Calculator())
    proxy = client.lookup("calc", CalculatorApi)
    assert proxy.add(1, 2) == 3
    client.close()
    server.close()
    mom.close()


def test_crash_mid_call_redelivers_to_survivor(rig):
    """§3.4: a crashed instance's in-flight call completes elsewhere."""
    _mom, server, client = rig

    class Crashy(Calculator):
        def __init__(self, name, skeleton_holder):
            super().__init__(name)
            self.holder = skeleton_holder

        def slow(self, seconds):
            # Crash *while processing* (before acking).
            skeleton = self.holder.get("victim")
            if skeleton is not None:
                self.holder["victim"] = None
                threading.Thread(target=skeleton.kill).start()
                time.sleep(0.2)
                return "crashed-should-not-matter"
            return super().slow(seconds)

    holder = {}
    crashy = Crashy("crashy", holder)
    survivor = Calculator("survivor")
    holder["victim"] = server.bind("calc-ft", crashy)
    server.bind("calc-ft", survivor)

    @remote_interface
    class FtApi(Remote):
        @sync_method(timeout=1.5, retry=3)
        def slow(self, seconds):
            ...

    proxy = client.lookup("calc-ft", FtApi)
    # The first delivery goes to one of the two instances; if it's the
    # crashy one, the reply comes from the survivor via redelivery.
    assert proxy.slow(0.01) == "done" or proxy.slow(0.01) == "done"
