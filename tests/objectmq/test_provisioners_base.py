"""Tests for the base provisioning policies (fixed / utilization / combinators)."""

from __future__ import annotations

import pytest

from repro.objectmq.introspection import PoolObservation
from repro.objectmq.provisioner import (
    BoundedProvisioner,
    FixedProvisioner,
    MaxOfProvisioners,
    QueueDepthProvisioner,
    UtilizationProvisioner,
)


def obs(instances=1, rate=0.0, service=0.05, queue_depth=0):
    return PoolObservation(
        oid="svc",
        timestamp=0.0,
        instance_count=instances,
        queue_depth=queue_depth,
        arrival_rate=rate,
        interarrival_variance=0.0,
        mean_service_time=service,
        service_time_variance=0.0,
    )


def test_fixed_provisioner_constant():
    policy = FixedProvisioner(3)
    assert policy.propose(obs(instances=1)) == 3
    assert policy.propose(obs(instances=10)) == 3


def test_fixed_rejects_negative():
    with pytest.raises(ValueError):
        FixedProvisioner(-1)


def test_utilization_scales_up_on_overload():
    policy = UtilizationProvisioner(high=0.8, low=0.3)
    # rho = 30 * 0.05 / 1 = 1.5 > 0.8
    assert policy.propose(obs(instances=1, rate=30.0)) == 2


def test_utilization_scales_down_when_idle():
    policy = UtilizationProvisioner(high=0.8, low=0.3)
    # rho = 2 * 0.05 / 4 = 0.025 < 0.3
    assert policy.propose(obs(instances=4, rate=2.0)) == 3


def test_utilization_holds_in_band():
    policy = UtilizationProvisioner(high=0.8, low=0.3)
    # rho = 10 * 0.05 / 1 = 0.5
    assert policy.propose(obs(instances=1, rate=10.0)) == 1


def test_utilization_never_below_one():
    policy = UtilizationProvisioner()
    assert policy.propose(obs(instances=1, rate=0.0)) == 1


def test_utilization_validates_thresholds():
    with pytest.raises(ValueError):
        UtilizationProvisioner(high=0.2, low=0.5)


def test_max_of_takes_maximum():
    policy = MaxOfProvisioners([FixedProvisioner(2), FixedProvisioner(5)])
    assert policy.propose(obs()) == 5


def test_max_of_requires_members():
    with pytest.raises(ValueError):
        MaxOfProvisioners([])


def test_bounded_clamps_both_ends():
    policy = BoundedProvisioner(FixedProvisioner(100), minimum=2, maximum=8)
    assert policy.propose(obs()) == 8
    low = BoundedProvisioner(FixedProvisioner(0), minimum=2, maximum=8)
    assert low.propose(obs()) == 2


def test_bounded_validates_range():
    with pytest.raises(ValueError):
        BoundedProvisioner(FixedProvisioner(1), minimum=5, maximum=2)


def test_queue_depth_scales_with_backlog():
    policy = QueueDepthProvisioner(max_backlog_per_instance=10)
    # 45 queued at 10/instance -> needs 5 instances.
    assert policy.propose(obs(instances=2, queue_depth=45)) == 5


def test_queue_depth_holds_under_threshold():
    policy = QueueDepthProvisioner(max_backlog_per_instance=10)
    assert policy.propose(obs(instances=3, queue_depth=25)) == 3


def test_queue_depth_shrinks_when_idle():
    policy = QueueDepthProvisioner(max_backlog_per_instance=10)
    assert policy.propose(obs(instances=4, queue_depth=0)) == 3
    assert policy.propose(obs(instances=1, queue_depth=0)) == 1


def test_queue_depth_validation():
    with pytest.raises(ValueError):
        QueueDepthProvisioner(max_backlog_per_instance=0)
    with pytest.raises(ValueError):
        QueueDepthProvisioner(shrink_fill=1.5)
