"""Tests for the envelope helpers, naming and the ArrivalMonitor."""

from __future__ import annotations

import pytest

from repro.objectmq.envelope import (
    is_reply,
    is_request,
    make_reply,
    make_request,
    new_correlation_id,
)
from repro.objectmq.naming import multi_exchange_name, response_queue_name
from repro.objectmq.supervisor import ArrivalMonitor


def test_request_envelope_shape():
    envelope = make_request("m", [1], {"k": 2}, call="sync", multi=False,
                            reply_to="rq", correlation_id="c1", clock=5.0)
    assert envelope["method"] == "m"
    assert envelope["args"] == [1]
    assert envelope["kwargs"] == {"k": 2}
    assert envelope["sent_at"] == 5.0
    assert is_request(envelope)
    assert not is_reply(envelope)


def test_reply_envelope_shape():
    ok = make_reply("c1", result=42, responder="inst")
    assert ok["ok"] is True and ok["result"] == 42 and ok["error"] is None
    bad = make_reply("c1", error="ValueError: x")
    assert bad["ok"] is False and bad["error"] == "ValueError: x"
    assert is_reply(ok) and not is_request(ok)


def test_correlation_ids_unique():
    ids = {new_correlation_id() for _ in range(100)}
    assert len(ids) == 100


def test_naming_conventions():
    assert multi_exchange_name("syncservice") == "syncservice.multi"
    assert response_queue_name("abc") == "response.abc"


def test_arrival_monitor_rate():
    monitor = ArrivalMonitor()
    for t in range(11):
        monitor.record(float(t), t * 10)  # 10 arrivals/second
    assert monitor.rate == pytest.approx(10.0)


def test_arrival_monitor_empty_and_reset():
    monitor = ArrivalMonitor()
    assert monitor.rate == 0.0
    assert monitor.interarrival_variance == 0.0
    monitor.record(0.0, 0)
    assert monitor.rate == 0.0  # one sample is not a rate
    monitor.record(1.0, 5)
    assert monitor.rate == pytest.approx(5.0)
    monitor.reset()
    assert monitor.rate == 0.0


def test_arrival_monitor_window_slides():
    monitor = ArrivalMonitor(window=5)
    # Old high-rate samples fall out of the window.
    for t in range(5):
        monitor.record(float(t), t * 100)
    for t in range(5, 15):
        monitor.record(float(t), 400 + (t - 4) * 10)
    assert monitor.rate == pytest.approx(10.0, rel=0.01)


def test_arrival_monitor_variance_poissonish():
    """For near-Poisson counts, estimated CV^2 = sigma_a2 * rate^2 ~ 1."""
    import random

    rng = random.Random(5)
    monitor = ArrivalMonitor(window=2000)
    cumulative = 0
    lam = 50.0
    for t in range(2000):
        # Poisson sample via normal approximation (lambda large).
        cumulative += max(0, round(rng.gauss(lam, lam**0.5)))
        monitor.record(float(t), cumulative)
    rate = monitor.rate
    ca2 = monitor.interarrival_variance * rate * rate
    assert rate == pytest.approx(lam, rel=0.05)
    assert ca2 == pytest.approx(1.0, rel=0.25)


class _ListArrivalMonitor:
    """The pre-deque reference implementation: a list re-sliced on every
    record.  Kept verbatim so the deque rewrite can be pinned bit-identical."""

    def __init__(self, window: int = 60):
        self.window = window
        self._samples = []

    def record(self, timestamp, cumulative_count):
        self._samples.append((timestamp, cumulative_count))
        self._samples = self._samples[-self.window:]

    @property
    def rate(self):
        if len(self._samples) < 2:
            return 0.0
        (t0, c0), (t1, c1) = self._samples[0], self._samples[-1]
        elapsed = t1 - t0
        if elapsed <= 0:
            return 0.0
        return max(0.0, (c1 - c0) / elapsed)

    @property
    def interarrival_variance(self):
        if len(self._samples) < 3:
            return 0.0
        counts = []
        widths = []
        for (t0, c0), (t1, c1) in zip(self._samples, self._samples[1:]):
            if t1 > t0:
                counts.append(c1 - c0)
                widths.append(t1 - t0)
        if not counts:
            return 0.0
        width = sum(widths) / len(widths)
        mean_count = sum(counts) / len(counts)
        if mean_count <= 0:
            return 0.0
        var_count = sum((c - mean_count) ** 2 for c in counts) / len(counts)
        mean_interarrival = width / mean_count
        return var_count * mean_interarrival**3 / width


def test_arrival_monitor_deque_bit_identical_to_list():
    """The O(1) deque window must reproduce the list-slice window exactly:
    same retained samples, bit-identical rate and variance at every step."""
    import random

    rng = random.Random(99)
    deque_monitor = ArrivalMonitor(window=7)
    list_monitor = _ListArrivalMonitor(window=7)
    cumulative = 0
    t = 0.0
    for step in range(500):
        # Irregular stamps (including repeats) and bursty counts.
        t += rng.choice([0.0, 0.25, 1.0, 3.0])
        cumulative += rng.randrange(0, 50)
        deque_monitor.record(t, cumulative)
        list_monitor.record(t, cumulative)
        assert list(deque_monitor._samples) == list_monitor._samples
        assert deque_monitor.rate == list_monitor.rate  # exact, not approx
        assert (
            deque_monitor.interarrival_variance
            == list_monitor.interarrival_variance
        )


def test_arrival_monitor_window_is_bounded():
    monitor = ArrivalMonitor(window=10)
    for t in range(1000):
        monitor.record(float(t), t)
    assert len(monitor._samples) == 10
    assert monitor._samples.maxlen == 10


def test_begin_only_generated_for_plain_sync_methods(omq):
    from repro.objectmq import Remote, async_method, multi_method, remote_interface, sync_method

    @remote_interface
    class Api(Remote):
        @sync_method
        def plain(self):
            ...

        @async_method
        def fire(self):
            ...

        @multi_method
        @sync_method
        def group(self):
            ...

    proxy = omq.lookup("x", Api)
    assert hasattr(proxy, "begin_plain")
    assert not hasattr(proxy, "begin_fire")
    assert not hasattr(proxy, "begin_group")
