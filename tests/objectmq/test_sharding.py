"""Partitioned oids: naming, ShardedProxy routing, shard-aware control loop."""

from __future__ import annotations

import threading

import pytest

from repro.mom import MessageBroker
from repro.objectmq import (
    Broker,
    Remote,
    ShardedSupervisor,
    async_method,
    multi_method,
    parse_shard_oid,
    remote_interface,
    shard_oid,
    sync_method,
)
from repro.objectmq.provisioner import FixedProvisioner
from repro.objectmq.remote_broker import RemoteBroker
from repro.routing import ShardRouter
from repro.telemetry.control import KIND_DECISION, DecisionJournal


# -- naming ----------------------------------------------------------------------------


def test_shard_oid_round_trip():
    assert shard_oid("sync", 3) == "sync.shard.3"
    assert parse_shard_oid("sync.shard.3") == ("sync", 3)
    assert parse_shard_oid("sync") == ("sync", None)
    assert parse_shard_oid("sync.shard.x") == ("sync.shard.x", None)
    # Nested-looking names resolve to the last shard segment.
    assert parse_shard_oid("a.shard.1.shard.2") == ("a.shard.1", 2)


def test_shard_oid_rejects_negative():
    with pytest.raises(ValueError):
        shard_oid("sync", -1)


# -- ShardedProxy ----------------------------------------------------------------------


@remote_interface
class EchoApi(Remote):
    @sync_method(timeout=2.0, retry=1)
    def where(self, key):
        ...

    @async_method
    def record(self, key):
        ...

    @multi_method
    @sync_method(timeout=1.0, retry=0)
    def census(self, key):
        ...


class EchoServer:
    def __init__(self, shard):
        self.shard = shard
        self.recorded = []
        self.lock = threading.Lock()
        self.seen = threading.Event()

    def where(self, key):
        return self.shard

    def record(self, key):
        with self.lock:
            self.recorded.append(key)
        self.seen.set()

    def census(self, key):
        return self.shard


@pytest.fixture
def sharded_stack():
    mom = MessageBroker()
    server_broker = Broker(mom)
    servers = [EchoServer(shard) for shard in range(3)]
    for shard, server in enumerate(servers):
        server_broker.bind(shard_oid("echo", shard), server)
    client_broker = Broker(mom)
    proxy = client_broker.lookup_sharded("echo", EchoApi, 3)
    yield proxy, servers
    client_broker.close()
    server_broker.close()
    mom.close()


def test_sync_calls_route_by_first_argument(sharded_stack):
    proxy, _servers = sharded_stack
    router = ShardRouter(3)
    for i in range(30):
        key = f"ws-{i}"
        # The server on the routed shard answered — and it agrees with
        # an independently built router (client/server determinism).
        assert proxy.where(key) == router.shard_for(key)


def test_same_key_always_hits_same_shard(sharded_stack):
    proxy, _servers = sharded_stack
    assert len({proxy.where("ws-stable") for _ in range(10)}) == 1


def test_async_calls_route_too(sharded_stack):
    proxy, servers = sharded_stack
    key = next(f"k{i}" for i in range(100) if proxy.shard_for(f"k{i}") == 1)
    proxy.record(key)
    assert servers[1].seen.wait(5.0)
    assert servers[1].recorded == [key]


def test_begin_companion_routes(sharded_stack):
    proxy, _servers = sharded_stack
    future = proxy.begin_where("ws-42")
    assert future.result(timeout=5.0) == proxy.shard_for("ws-42")


def test_multi_methods_fan_out_to_every_shard(sharded_stack):
    proxy, _servers = sharded_stack
    assert sorted(proxy.census("ignored")) == [0, 1, 2]


def test_route_counts_accumulate(sharded_stack):
    proxy, _servers = sharded_stack
    for i in range(20):
        proxy.where(f"ws-{i}")
    counts = proxy.route_counts()
    assert sum(counts) == 20
    assert len(counts) == 3


def test_missing_routing_key_is_a_type_error(sharded_stack):
    proxy, _servers = sharded_stack
    with pytest.raises(TypeError):
        proxy.where()


def test_single_shard_proxy_degenerates_cleanly():
    mom = MessageBroker()
    server_broker = Broker(mom)
    server_broker.bind(shard_oid("echo", 0), EchoServer(0))
    client_broker = Broker(mom)
    proxy = client_broker.lookup_sharded("echo", EchoApi, 1)
    assert proxy.where("anything") == 0
    client_broker.close()
    server_broker.close()
    mom.close()


# -- shard-aware supervision -----------------------------------------------------------


class Sleeper:
    def nap(self):
        return "ok"


def test_sharded_supervisor_runs_one_loop_per_shard():
    mom = MessageBroker()
    machine_broker = Broker(mom)
    rbroker = RemoteBroker(machine_broker, broker_name="m0")
    for shard in range(2):
        rbroker.register_factory(shard_oid("svc", shard), Sleeper)
    rbroker.serve()

    journal = DecisionJournal()
    sup_broker = Broker(mom)
    supervisor = ShardedSupervisor(
        sup_broker,
        "svc",
        lambda: FixedProvisioner(2),
        shards=2,
        journal=journal,
        min_instances=1,
        max_instances=4,
    )
    try:
        records = supervisor.step()
        assert len(records) == 2
        records = supervisor.step()
        assert supervisor.pool_sizes() == [2, 2]

        # Per-shard Supervisors parsed their shard from the oid and
        # stamped it on every journal entry.
        decisions = [e for e in journal.events() if e.kind == KIND_DECISION]
        shards_seen = {e.data["shard"] for e in decisions}
        assert shards_seen == {0, 1}
        oids_seen = {e.data["oid"] for e in decisions}
        assert oids_seen == {"svc.shard.0", "svc.shard.1"}
    finally:
        rbroker.stop()
        sup_broker.close()
        machine_broker.close()
        mom.close()


def test_plain_supervisor_has_no_shard_label():
    from repro.objectmq import Supervisor

    mom = MessageBroker()
    broker = Broker(mom)
    supervisor = Supervisor(broker, "plain", FixedProvisioner(1))
    assert supervisor.shard is None
    assert supervisor.base_oid == "plain"
    sharded = Supervisor(broker, shard_oid("plain", 4), FixedProvisioner(1))
    assert sharded.shard == 4
    assert sharded.base_oid == "plain"
    broker.close()
    mom.close()
