"""Tests for the consistent-hash placement ring."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import HashRing


def test_requires_devices():
    with pytest.raises(ValueError):
        HashRing([])


def test_deterministic_placement():
    ring_a = HashRing(["n0", "n1", "n2", "n3"], replicas=2)
    ring_b = HashRing(["n0", "n1", "n2", "n3"], replicas=2)
    for key in ("alpha", "beta", "gamma"):
        assert ring_a.devices_for(key) == ring_b.devices_for(key)


def test_replica_count_and_distinctness():
    ring = HashRing(["n0", "n1", "n2", "n3"], replicas=3)
    devices = ring.devices_for("some-key")
    assert len(devices) == 3
    assert len(set(devices)) == 3


def test_replicas_clamped_to_device_count():
    ring = HashRing(["only"], replicas=3)
    assert ring.devices_for("k") == ["only"]


def test_load_roughly_balanced():
    ring = HashRing([f"n{i}" for i in range(4)], replicas=2)
    keys = [f"chunk-{i}" for i in range(2000)]
    distribution = ring.load_distribution(keys)
    for count in distribution.values():
        assert 0.10 < count / 2000 < 0.45  # no starved or hot device


def test_add_device_moves_limited_keys():
    ring = HashRing([f"n{i}" for i in range(4)], replicas=1)
    keys = [f"chunk-{i}" for i in range(1000)]
    before = {k: ring.primary_for(k) for k in keys}
    ring.add_device("n4")
    moved = sum(1 for k in keys if ring.primary_for(k) != before[k])
    # Rendezvous hashing moves ~1/5 of keys when going 4 -> 5 devices.
    assert moved / 1000 < 0.35


def test_remove_device_only_remaps_its_keys():
    ring = HashRing([f"n{i}" for i in range(4)], replicas=1)
    keys = [f"chunk-{i}" for i in range(1000)]
    before = {k: ring.primary_for(k) for k in keys}
    ring.remove_device("n2")
    for key in keys:
        after = ring.primary_for(key)
        if before[key] != "n2":
            assert after == before[key]
        else:
            assert after != "n2"


def test_cannot_remove_last_device():
    ring = HashRing(["only"])
    with pytest.raises(ValueError):
        ring.remove_device("only")


def test_idempotent_membership_changes():
    ring = HashRing(["a", "b"])
    ring.add_device("a")
    assert ring.devices == ["a", "b"]
    ring.remove_device("zz")
    assert ring.devices == ["a", "b"]


@settings(max_examples=100, deadline=None)
@given(key=st.text(min_size=1, max_size=40))
def test_property_primary_is_first_replica(key):
    ring = HashRing(["n0", "n1", "n2"], replicas=2)
    assert ring.primary_for(key) == ring.devices_for(key)[0]


@settings(max_examples=50, deadline=None)
@given(key=st.text(min_size=1, max_size=40))
def test_property_placement_stable_under_unrelated_removal(key):
    """Removing a device never remaps keys it did not own (primary)."""
    ring = HashRing(["n0", "n1", "n2", "n3"], replicas=1)
    primary = ring.primary_for(key)
    victim = next(d for d in ring.devices if d != primary)
    ring.remove_device(victim)
    assert ring.primary_for(key) == primary
