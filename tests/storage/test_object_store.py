"""Tests for the Swift-like object store (proxy, replicas, failures)."""

from __future__ import annotations

import pytest

from repro.errors import ObjectNotFound, StorageError
from repro.storage import LatencyModel, LatencyProfile, SwiftLikeStore


@pytest.fixture
def store():
    return SwiftLikeStore(node_count=4, replicas=2)


def test_container_required(store):
    with pytest.raises(StorageError):
        store.put_object("missing", "k", b"x")
    with pytest.raises(StorageError):
        store.get_object("missing", "k")


def test_put_get_round_trip(store):
    store.create_container("u-alice")
    store.put_object("u-alice", "fp1", b"payload")
    assert store.get_object("u-alice", "fp1") == b"payload"


def test_get_unknown_object_raises(store):
    store.create_container("c")
    with pytest.raises(ObjectNotFound):
        store.get_object("c", "ghost")


def test_objects_replicated(store):
    store.create_container("c")
    store.put_object("c", "fp", b"data")
    holders = [n for n in store.nodes.values() if n.has("c/fp")]
    assert len(holders) == 2


def test_read_survives_primary_failure(store):
    store.create_container("c")
    store.put_object("c", "fp", b"data")
    primary = store.ring.primary_for("c/fp")
    store.fail_node(primary)
    assert store.get_object("c", "fp") == b"data"
    store.recover_node(primary)


def test_write_fails_only_when_all_replicas_down(store):
    store.create_container("c")
    devices = store.ring.devices_for("c/key")
    for device in devices:
        store.fail_node(device)
    with pytest.raises(StorageError):
        store.put_object("c", "key", b"x")
    store.recover_node(devices[0])
    store.put_object("c", "key", b"x")  # one replica suffices


def test_head_and_delete(store):
    store.create_container("c")
    assert store.head_object("c", "fp") is False
    store.put_object("c", "fp", b"x")
    assert store.head_object("c", "fp") is True
    assert store.delete_object("c", "fp") is True
    assert store.head_object("c", "fp") is False
    assert store.delete_object("c", "fp") is False


def test_list_container_is_namespaced(store):
    store.create_container("a")
    store.create_container("b")
    store.put_object("a", "one", b"1")
    store.put_object("b", "two", b"2")
    assert store.list_container("a") == ["one"]
    assert store.list_container("b") == ["two"]


def test_traffic_counters(store):
    store.create_container("c")
    store.put_object("c", "fp", b"12345")
    store.get_object("c", "fp")
    assert store.bytes_in == 5
    assert store.bytes_out == 5
    assert store.put_count == 1
    assert store.get_count == 1
    store.reset_traffic_counters()
    assert store.bytes_in == 0


def test_usage_accounting(store):
    store.create_container("c")
    store.put_object("c", "fp", b"x" * 100)
    assert sum(store.usage().values()) == 200  # 2 replicas x 100 bytes


def test_latency_model_charged_per_operation():
    latency = LatencyModel(
        profile=LatencyProfile(base=0.001, bandwidth=1e6, jitter=0.0), sleep=False
    )
    store = SwiftLikeStore(node_count=2, replicas=1, latency=latency)
    store.create_container("c")
    store.put_object("c", "fp", b"x" * 10_000)
    assert latency.operations == 1
    assert latency.total_simulated == pytest.approx(0.001 + 0.01)


def test_latency_scaling():
    profile = LatencyProfile(base=0.010, bandwidth=1e6, jitter=0.0)
    fast = profile.scaled(0.1)
    assert fast.base == pytest.approx(0.001)
    model = LatencyModel(profile=fast, sleep=False)
    # 1 MB at 10 MB/s effective = 0.1 s, plus 1 ms base
    assert model.latency_for(1_000_000) == pytest.approx(0.101)
