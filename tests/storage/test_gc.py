"""Tests for the mark-and-sweep chunk garbage collector."""

from __future__ import annotations

import time

import pytest

from repro.metadata import MemoryMetadataBackend
from repro.storage import SwiftLikeStore
from repro.storage.gc import ChunkGarbageCollector
from repro.sync.models import STATUS_CHANGED, STATUS_DELETED, ItemMetadata, Workspace


@pytest.fixture
def world():
    metadata = MemoryMetadataBackend()
    storage = SwiftLikeStore(node_count=2, replicas=1)
    metadata.create_user("u")
    metadata.create_workspace(Workspace(workspace_id="ws", owner="u"))
    storage.create_container("u-u")
    return metadata, storage


def put_chunks(storage, *names):
    for name in names:
        storage.put_object("u-u", name, b"x" * 100)


def commit(metadata, item_id, version, chunks, status="NEW"):
    meta = ItemMetadata(
        item_id=item_id,
        workspace_id="ws",
        version=version,
        filename=item_id.split(":")[-1],
        status=status,
        chunks=list(chunks),
        device_id="d",
    )
    if version == 1:
        metadata.store_new_object(meta)
    else:
        metadata.store_new_version(meta)


def test_live_chunks_survive(world):
    metadata, storage = world
    put_chunks(storage, "f1", "f2")
    commit(metadata, "ws:a", 1, ["f1", "f2"])
    gc = ChunkGarbageCollector(metadata, storage, grace_seconds=0.0)
    report = gc.collect("u-u", ["ws"])
    assert report.swept_chunks == 0
    assert storage.head_object("u-u", "f1")
    assert report.live_chunks == 2


def test_orphaned_chunks_swept(world):
    metadata, storage = world
    put_chunks(storage, "live", "orphan")
    commit(metadata, "ws:a", 1, ["live"])
    gc = ChunkGarbageCollector(metadata, storage, grace_seconds=0.0)
    report = gc.collect("u-u", ["ws"])
    assert report.swept == ["orphan"]
    assert report.swept_bytes == 100
    assert not storage.head_object("u-u", "orphan")
    assert storage.head_object("u-u", "live")


def test_old_versions_collected_with_keep_versions_one(world):
    metadata, storage = world
    put_chunks(storage, "v1chunk", "v2chunk")
    commit(metadata, "ws:a", 1, ["v1chunk"])
    commit(metadata, "ws:a", 2, ["v2chunk"], status=STATUS_CHANGED)
    gc = ChunkGarbageCollector(metadata, storage, keep_versions=1, grace_seconds=0.0)
    report = gc.collect("u-u", ["ws"])
    assert report.swept == ["v1chunk"]
    assert storage.head_object("u-u", "v2chunk")


def test_keep_versions_two_preserves_history(world):
    metadata, storage = world
    put_chunks(storage, "v1chunk", "v2chunk")
    commit(metadata, "ws:a", 1, ["v1chunk"])
    commit(metadata, "ws:a", 2, ["v2chunk"], status=STATUS_CHANGED)
    gc = ChunkGarbageCollector(metadata, storage, keep_versions=2, grace_seconds=0.0)
    assert gc.collect("u-u", ["ws"]).swept_chunks == 0


def test_deleted_items_chunks_collected(world):
    metadata, storage = world
    put_chunks(storage, "gone")
    commit(metadata, "ws:a", 1, ["gone"])
    commit(metadata, "ws:a", 2, [], status=STATUS_DELETED)
    gc = ChunkGarbageCollector(metadata, storage, grace_seconds=0.0)
    report = gc.collect("u-u", ["ws"])
    assert report.swept == ["gone"]


def test_grace_window_protects_in_flight_uploads(world):
    metadata, storage = world
    put_chunks(storage, "just-uploaded")  # no commit yet (in-flight)
    gc = ChunkGarbageCollector(metadata, storage, grace_seconds=3600.0)
    report = gc.collect("u-u", ["ws"])
    assert report.swept_chunks == 0
    assert report.kept_recent == 1
    # Once the grace window passes (simulated via now), it is swept.
    report = gc.collect("u-u", ["ws"], now=time.time() + 7200.0)
    assert report.swept == ["just-uploaded"]


def test_dry_run_reports_without_deleting(world):
    metadata, storage = world
    put_chunks(storage, "orphan")
    gc = ChunkGarbageCollector(metadata, storage, grace_seconds=0.0)
    report = gc.collect("u-u", ["ws"], dry_run=True)
    assert report.swept == ["orphan"]
    assert storage.head_object("u-u", "orphan")


def test_shared_chunks_across_items_kept(world):
    metadata, storage = world
    put_chunks(storage, "shared")
    commit(metadata, "ws:a", 1, ["shared"])
    commit(metadata, "ws:b", 1, ["shared"])
    commit(metadata, "ws:a", 2, [], status=STATUS_DELETED)
    gc = ChunkGarbageCollector(metadata, storage, grace_seconds=0.0)
    # Item b still references the chunk: it must survive a's deletion.
    assert gc.collect("u-u", ["ws"]).swept_chunks == 0


def test_keep_versions_validation(world):
    metadata, storage = world
    with pytest.raises(ValueError):
        ChunkGarbageCollector(metadata, storage, keep_versions=0)


def test_end_to_end_with_real_client(testbed):
    """GC after real client activity: deletes reclaim space, live data stays."""
    client = testbed.client(device_id="dev-1")
    meta_keep = client.put_file("keep.txt", b"K" * 1000)
    meta_gone = client.put_file("gone.txt", b"G" * 1000)
    client.wait_for_version(meta_keep.item_id, meta_keep.version)
    client.wait_for_version(meta_gone.item_id, meta_gone.version)
    deletion = client.delete_file("gone.txt")
    client.wait_for_version(deletion.item_id, deletion.version)

    gc = ChunkGarbageCollector(testbed.metadata, testbed.storage, grace_seconds=0.0)
    container = f"u-{testbed.workspaces['alice'].owner}"
    report = gc.collect(container, [testbed.workspaces["alice"].workspace_id])
    assert report.swept_chunks == 1  # gone.txt's single chunk
    # keep.txt still fully reconstructable.
    late = testbed.client(device_id="dev-2")
    assert late.fs.read("keep.txt") == b"K" * 1000
