"""Codec tests: round-trip correctness across JSON, pickle and binary."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.serialization import (
    BinarySerializer,
    JsonSerializer,
    PickleSerializer,
    make_serializer,
)

CODECS = [JsonSerializer(), PickleSerializer(), BinarySerializer()]


@pytest.fixture(params=CODECS, ids=lambda c: c.name)
def codec(request):
    return request.param


SAMPLES = [
    None,
    True,
    False,
    0,
    -1,
    2**40,
    -(2**40),
    3.14159,
    -0.0,
    "",
    "héllo wörld",
    b"",
    b"\x00\x01\xfe\xff",
    [],
    [1, 2, 3],
    {"a": 1, "b": [True, None, "x"]},
    {"nested": {"deep": {"bytes": b"\xde\xad"}}},
]


@pytest.mark.parametrize("value", SAMPLES, ids=repr)
def test_round_trip_samples(codec, value):
    assert codec.decode(codec.encode(value)) == value


def test_tuple_becomes_list(codec):
    # JSON/binary have no tuple type; pickle preserves it.  The RPC layer
    # only relies on sequences, so both behaviours are acceptable — but
    # they must at least match element-wise.
    result = codec.decode(codec.encode((1, 2)))
    assert list(result) == [1, 2]


def test_make_serializer_known_names():
    for name in ("json", "pickle", "binary"):
        assert make_serializer(name).name == name


def test_make_serializer_unknown_name():
    with pytest.raises(ValueError):
        make_serializer("xml")


def test_json_rejects_unserializable():
    with pytest.raises(SerializationError):
        JsonSerializer().encode(object())


def test_binary_rejects_unserializable():
    with pytest.raises(SerializationError):
        BinarySerializer().encode(object())


def test_binary_rejects_trailing_garbage():
    codec = BinarySerializer()
    data = codec.encode([1, 2])
    with pytest.raises(SerializationError):
        codec.decode(data + b"\x00")


def test_binary_rejects_truncation():
    codec = BinarySerializer()
    data = codec.encode("a long enough string")
    with pytest.raises(SerializationError):
        codec.decode(data[:-3])


def test_json_decode_garbage():
    with pytest.raises(SerializationError):
        JsonSerializer().decode(b"\xff\xfe not json")


def test_binary_more_compact_than_json_on_rpc_envelope():
    envelope = {
        "method": "commit_request",
        "args": [["ws-1", "dev-2", [{"item_id": "a" * 30, "version": 3}]]],
        "kwargs": {},
        "call": "async",
        "multi": False,
        "correlation_id": "c" * 32,
        "reply_to": "response.abcdef",
        "sent_at": 1234567890.123,
    }
    json_size = len(JsonSerializer().encode(envelope))
    binary_size = len(BinarySerializer().encode(envelope))
    assert binary_size < json_size


json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**62), max_value=2**62)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=20,
)


@settings(max_examples=150, deadline=None)
@given(value=json_values)
def test_property_binary_round_trip(value):
    codec = BinarySerializer()
    assert codec.decode(codec.encode(value)) == value


@settings(max_examples=150, deadline=None)
@given(value=json_values)
def test_property_json_round_trip(value):
    codec = JsonSerializer()
    assert codec.decode(codec.encode(value)) == value


@settings(max_examples=100, deadline=None)
@given(value=st.floats(allow_nan=True, allow_infinity=True))
def test_property_binary_floats(value):
    codec = BinarySerializer()
    result = codec.decode(codec.encode(value))
    if math.isnan(value):
        assert math.isnan(result)
    else:
        assert result == value
