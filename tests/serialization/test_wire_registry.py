"""Tests for the WireRegistry DTO lowering/raising machinery."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import SerializationError
from repro.serialization import BinarySerializer, JsonSerializer, WireRegistry
from repro.sync.models import (
    CommitNotification,
    CommitResult,
    ItemMetadata,
    Workspace,
)


@dataclass(frozen=True)
class Point:
    x: int
    y: int


def make_registry():
    registry = WireRegistry()
    registry.register(
        Point, "test.Point", lambda p: {"x": p.x, "y": p.y}, lambda d: Point(**d)
    )
    return registry


def test_lower_and_raise_round_trip():
    registry = make_registry()
    lowered = registry.lower(Point(1, 2))
    assert lowered == {"x": 1, "y": 2, "__wire__": "test.Point"}
    assert registry.raise_(lowered) == Point(1, 2)


def test_nested_containers():
    registry = make_registry()
    value = {"points": [Point(1, 2), Point(3, 4)], "other": 7}
    raised = registry.raise_(registry.lower(value))
    assert raised == value


def test_unknown_tag_raises():
    registry = make_registry()
    with pytest.raises(SerializationError):
        registry.raise_({"__wire__": "nope", "x": 1})


def test_codecs_carry_registered_types():
    registry = make_registry()
    for codec in (JsonSerializer(registry), BinarySerializer(registry)):
        value = [Point(5, 6), {"p": Point(7, 8)}]
        assert codec.decode(codec.encode(value)) == value


def test_stacksync_models_round_trip_via_json():
    codec = JsonSerializer()
    item = ItemMetadata(
        item_id="ws:one.txt",
        workspace_id="ws",
        version=2,
        filename="one.txt",
        status="CHANGED",
        size=100,
        checksum="abc",
        chunks=["f1", "f2"],
        modified_at=1.5,
        device_id="dev",
    )
    notification = CommitNotification(
        workspace_id="ws",
        source_device="dev",
        results=[
            CommitResult(metadata=item, confirmed=True),
            CommitResult(metadata=item, confirmed=False, current=item.with_version(3)),
        ],
        committed_at=2.0,
        request_id="r1",
    )
    decoded = codec.decode(codec.encode(notification))
    assert decoded == notification
    assert decoded.results[1].current.version == 3


def test_workspace_round_trip_via_binary():
    codec = BinarySerializer()
    workspace = Workspace(workspace_id="ws1", owner="alice", name="files")
    assert codec.decode(codec.encode(workspace)) == workspace
