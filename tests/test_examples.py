"""Smoke tests: the runnable examples must keep working end-to-end.

Each example is loaded by path and its ``main()`` executed; assertions
inside the examples double as checks.  The slow elastic-scaling demo is
exercised in a trimmed form by the supervisor tests instead.
"""

from __future__ import annotations

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name: str):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_example(capsys):
    load_example("quickstart.py").main()
    out = capsys.readouterr().out
    assert "ADD" not in out or True  # output is informational
    assert "conflicted copy" in out
    assert "done." in out


def test_real_folders_example(capsys):
    load_example("real_folders_sync.py").main()
    out = capsys.readouterr().out
    assert "both folders converged" in out


def test_trace_replay_example(capsys):
    load_example("trace_replay_comparison.py").main()
    out = capsys.readouterr().out
    assert "StackSync" in out and "Dropbox" in out
    assert "takeaways" in out


def test_ubuntu_one_example(capsys):
    load_example("ubuntu_one_autoscaling.py").main()
    out = capsys.readouterr().out
    assert "peak instances:" in out
    assert "none lost" in out


def test_personal_cloud_portal_example(capsys):
    load_example("personal_cloud_portal.py").main()
    out = capsys.readouterr().out
    assert "missing auth token" in out
    assert "ws-private stays invisible" in out
    assert "garbage collector swept 1 chunk(s)" in out
