"""Tests for crash injection and redelivery in the DES server pool."""

from __future__ import annotations

import random

import pytest

from repro.simulation import EventLoop, ServerPool, ServiceTimeDistribution


def make_pool(capacity=2, mean=1.0):
    loop = EventLoop()
    dist = ServiceTimeDistribution(mean=mean, variance=0.0, rng=random.Random(1))
    return loop, ServerPool(loop, dist, initial_capacity=capacity)


def test_crash_idle_server_reduces_capacity():
    loop, pool = make_pool(capacity=2)
    assert pool.crash_one_server() is True
    assert pool.capacity == 1
    assert pool.crash_count == 1
    assert pool.redelivered_count == 0


def test_crash_busy_server_redelivers_request():
    loop, pool = make_pool(capacity=1, mean=1.0)
    loop.schedule_at(0.0, pool.arrive)
    loop.schedule_at(0.5, lambda: pool.crash_one_server(recovery_delay=0.5))
    loop.run_until()
    # The request restarted on the recovered server: arrived at 0, crash
    # at 0.5, recovery at 1.0, fresh 1.0s service -> completes at 2.0.
    assert pool.total_completed == 1
    record = pool.completed[0]
    assert record.arrived_at == pytest.approx(0.0)
    assert record.completed_at == pytest.approx(2.0)
    assert record.response_time == pytest.approx(2.0)
    assert pool.redelivered_count == 1


def test_crashed_completion_event_is_ignored():
    loop, pool = make_pool(capacity=1, mean=1.0)
    loop.schedule_at(0.0, pool.arrive)
    loop.schedule_at(0.2, lambda: pool.crash_one_server(recovery_delay=0.1))
    loop.run_until()
    # Exactly one completion despite the original completion event firing.
    assert pool.total_completed == 1
    assert pool.busy == 0


def test_no_capacity_left_to_crash():
    loop, pool = make_pool(capacity=1)
    assert pool.crash_one_server()
    assert pool.crash_one_server() is False


def test_nothing_lost_under_repeated_crashes():
    loop, pool = make_pool(capacity=2, mean=0.05)
    for i in range(100):
        loop.schedule_at(i * 0.02, pool.arrive)
    # Crash every 0.3 s with quick recovery.
    for k in range(6):
        loop.schedule_at(
            0.1 + k * 0.3, lambda: pool.crash_one_server(recovery_delay=0.1)
        )
    loop.run_until()
    assert pool.total_completed == 100
    assert pool.crash_count == 6
    # Redelivered requests took the crash detour but still completed.
    assert max(r.response_time for r in pool.completed) < 5.0
