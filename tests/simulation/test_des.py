"""Tests for the DES kernel and metrics helpers."""

from __future__ import annotations

import pytest

from repro.simulation import EventLoop, boxplot_stats, bucket_by_time, fraction_above, percentile


def test_events_run_in_time_order():
    loop = EventLoop()
    seen = []
    loop.schedule(2.0, lambda: seen.append("late"))
    loop.schedule(1.0, lambda: seen.append("early"))
    loop.schedule_at(1.5, lambda: seen.append("middle"))
    loop.run_until()
    assert seen == ["early", "middle", "late"]
    assert loop.now == 2.0


def test_ties_run_in_schedule_order():
    loop = EventLoop()
    seen = []
    loop.schedule(1.0, lambda: seen.append("a"))
    loop.schedule(1.0, lambda: seen.append("b"))
    loop.run_until()
    assert seen == ["a", "b"]


def test_run_until_bound():
    loop = EventLoop()
    seen = []
    loop.schedule(1.0, lambda: seen.append(1))
    loop.schedule(5.0, lambda: seen.append(5))
    loop.run_until(2.0)
    assert seen == [1]
    assert loop.now == 2.0
    assert loop.pending == 1
    loop.run_until()
    assert seen == [1, 5]


def test_events_can_schedule_events():
    loop = EventLoop()
    seen = []

    def chain():
        seen.append(loop.now)
        if len(seen) < 3:
            loop.schedule(1.0, chain)

    loop.schedule(0.0, chain)
    loop.run_until()
    assert seen == [0.0, 1.0, 2.0]


def test_cannot_schedule_into_past():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run_until()
    with pytest.raises(ValueError):
        loop.schedule_at(0.5, lambda: None)
    with pytest.raises(ValueError):
        loop.schedule(-1.0, lambda: None)


def test_stop_halts_processing():
    loop = EventLoop()
    seen = []
    loop.schedule(1.0, lambda: (seen.append(1), loop.stop()))
    loop.schedule(2.0, lambda: seen.append(2))
    loop.run_until()
    assert seen == [1]
    assert loop.pending == 1


def test_percentile_interpolation():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.0) == 10.0
    assert percentile(values, 1.0) == 40.0
    assert percentile(values, 0.5) == pytest.approx(25.0)
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0


def test_boxplot_stats():
    stats = boxplot_stats([1.0, 2.0, 3.0, 10.0, 100.0])
    assert stats.minimum == 1.0
    assert stats.maximum == 100.0
    assert stats.median == 3.0
    assert stats.count == 5
    # Bowley skewness: (Q3 + Q1 - 2·median)/IQR = (10+2-6)/8 > 0 —
    # right-skewed, the Fig 7(e) UPDATE shape.
    assert stats.skewness > 0
    symmetric = boxplot_stats([1.0, 2.0, 3.0, 4.0, 5.0])
    assert symmetric.skewness == 0.0


def test_boxplot_empty():
    assert boxplot_stats([]).count == 0


def test_bucket_by_time():
    samples = [(0.5, 1.0), (0.9, 2.0), (1.1, 3.0)]
    grouped = bucket_by_time(samples, 1.0)
    assert grouped == {0: [1.0, 2.0], 1: [3.0]}
    with pytest.raises(ValueError):
        bucket_by_time(samples, 0)


def test_fraction_above():
    assert fraction_above([1, 2, 3, 4], 2.5) == 0.5
    assert fraction_above([], 1.0) == 0.0
