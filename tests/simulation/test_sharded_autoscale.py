"""Trace splitting and the per-shard auto-scaling simulation."""

from __future__ import annotations

from repro.elasticity import GG1CapacityModel
from repro.objectmq.provisioner import FixedProvisioner
from repro.simulation import (
    ShardedAutoscaleSimulation,
    SimConfig,
    split_arrivals,
)
from repro.telemetry.control import KIND_DECISION, DecisionJournal


def test_split_preserves_totals_exactly():
    trace = [10, 0, 25, 3, 100]
    shards = split_arrivals(trace, 4, seed=7)
    assert len(shards) == 4
    for shard_trace in shards:
        assert len(shard_trace) == len(trace)
    for second, total in enumerate(trace):
        assert sum(t[second] for t in shards) == total


def test_split_is_deterministic():
    trace = [5] * 20
    assert split_arrivals(trace, 3, seed=1) == split_arrivals(trace, 3, seed=1)
    assert split_arrivals(trace, 3, seed=1) != split_arrivals(trace, 3, seed=2)


def test_split_roughly_uniform():
    shards = split_arrivals([1000] * 10, 4, seed=3)
    per_shard = [sum(t) for t in shards]
    assert sum(per_shard) == 10_000
    for total in per_shard:
        assert 2_000 < total < 3_000


def test_single_shard_split_is_identity():
    trace = [3, 1, 4, 1, 5]
    assert split_arrivals(trace, 1) == [trace]


def test_sharded_simulation_completes_all_work_and_tags_journal():
    journal = DecisionJournal()
    simulation = ShardedAutoscaleSimulation(
        [20] * 30,
        lambda: FixedProvisioner(2),
        shards=2,
        config=SimConfig(control_interval=5.0, spawn_delay=0.1, seed=11),
        journal=journal,
    )
    result = simulation.run()
    assert result.num_shards == 2
    assert result.total_arrivals == 20 * 30
    assert result.total_completed == result.total_arrivals
    assert result.response_times()

    decisions = journal.events(KIND_DECISION)
    assert {e.data["shard"] for e in decisions} == {0, 1}
    assert {e.data["oid"] for e in decisions} == {
        "syncservice.shard.0",
        "syncservice.shard.1",
    }
    # Fleet-wide capacity sums the per-shard pools.
    assert result.max_total_capacity() == 4


def test_plan_shards_applies_equation_two_per_shard():
    model = GG1CapacityModel()
    plan = model.plan_shards([100.0, 0.0, 37.0])
    assert plan == [
        model.instances_for(100.0),
        0,
        model.instances_for(37.0),
    ]
    # Partitioning never needs fewer servers in total.
    aggregate = model.instances_for(137.0)
    assert sum(plan) >= aggregate
