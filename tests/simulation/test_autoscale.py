"""Tests for the trace-driven auto-scaling simulation (Fig 8 harness)."""

from __future__ import annotations

import pytest

from repro.elasticity import (
    CombinedProvisioner,
    PredictiveProvisioner,
    ReactiveProvisioner,
)
from repro.objectmq.provisioner import FixedProvisioner
from repro.simulation import AutoscaleSimulation, SimConfig
from repro.telemetry.control import (
    KIND_SHUTDOWN,
    KIND_SPAWN,
    REASON_SCALE_DOWN,
    REASON_SCALE_UP,
    DecisionJournal,
)


def flat_trace(rate, seconds):
    return [rate] * seconds


def test_fixed_provisioner_holds_capacity():
    sim = AutoscaleSimulation(
        flat_trace(10, 60),
        FixedProvisioner(2),
        SimConfig(control_interval=5.0, spawn_delay=0.0),
    )
    result = sim.run()
    assert result.total_arrivals == 600
    assert result.total_completed == 600
    assert {r.capacity_before for r in result.control_records[1:]} == {2}


def test_underprovisioned_pool_violates_sla():
    # 60 req/s against one server at 20 req/s max: meltdown.
    sim = AutoscaleSimulation(
        flat_trace(60, 30),
        FixedProvisioner(1),
        SimConfig(control_interval=5.0, spawn_delay=0.0),
    )
    result = sim.run()
    assert result.sla_violation_fraction() > 0.5


def test_reactive_rescues_flash_crowd():
    """Pure-reactive mode corrects an unforeseen spike (§4.3.2)."""
    predictive = PredictiveProvisioner(period=30.0, day_length=300.0)
    predictive.load_history([1.0] * 10)  # expects almost nothing
    reactive = ReactiveProvisioner(predictive=predictive)
    combined = CombinedProvisioner(
        predictive, reactive, predictive_interval=30.0, reactive_interval=10.0
    )
    trace = flat_trace(2, 30) + flat_trace(80, 120)  # flash crowd at t=30
    sim = AutoscaleSimulation(
        trace,
        combined,
        SimConfig(control_interval=5.0, observation_window=10.0, spawn_delay=0.5),
    )
    result = sim.run()
    assert result.max_capacity() >= 5  # scaled up to absorb the crowd
    # After the correction, late response times are healthy again.
    late = [rt for t, rt in result.response_samples if t > 90]
    late.sort()
    assert late[int(len(late) * 0.95)] < 0.45


def test_control_records_include_lambda_obs():
    sim = AutoscaleSimulation(
        flat_trace(20, 40),
        FixedProvisioner(2),
        SimConfig(control_interval=5.0, observation_window=10.0),
    )
    result = sim.run()
    mid_run = [r for r in result.control_records if r.timestamp >= 15.0]
    for record in mid_run:
        assert record.lam_obs == pytest.approx(20.0, rel=0.4)


def test_time_origin_reaches_provisioner():
    seen = []

    class Spy(FixedProvisioner):
        def propose(self, observation):
            seen.append(observation.timestamp)
            return super().propose(observation)

    sim = AutoscaleSimulation(
        flat_trace(1, 10),
        Spy(1),
        SimConfig(control_interval=5.0, time_origin=1000.0),
    )
    sim.run()
    assert seen[0] == pytest.approx(1000.0)


def test_predicted_rate_recorded_for_combined():
    predictive = PredictiveProvisioner(period=10.0, day_length=100.0)
    predictive.load_history([42.0] * 10)
    reactive = ReactiveProvisioner(predictive=predictive)
    combined = CombinedProvisioner(
        predictive, reactive, predictive_interval=10.0, reactive_interval=5.0
    )
    sim = AutoscaleSimulation(
        flat_trace(40, 20), combined, SimConfig(control_interval=5.0)
    )
    result = sim.run()
    assert all(r.lam_pred == pytest.approx(42.0) for r in result.control_records)


def test_response_percentile_series_buckets():
    sim = AutoscaleSimulation(
        flat_trace(10, 30), FixedProvisioner(2), SimConfig(control_interval=5.0)
    )
    result = sim.run()
    series = result.response_percentile_series(bucket=10.0)
    assert len(series) >= 3
    assert all(value > 0 for _t, value in series)


def test_journal_mirrors_control_records():
    journal = DecisionJournal()
    sim = AutoscaleSimulation(
        flat_trace(10, 60),
        FixedProvisioner(2),
        SimConfig(control_interval=5.0, spawn_delay=0.0),
        journal=journal,
    )
    result = sim.run()
    assert result.journal is journal
    decisions = journal.decisions()
    assert len(decisions) == len(result.control_records)
    for record, decision in zip(result.control_records, decisions):
        assert decision.data["lam_obs"] == record.lam_obs
        assert decision.data["desired"] == record.desired
        assert decision.data["census"] == record.capacity_before
        assert decision.data["policy"] == "fixed"
        assert decision.data["reason"].strip()


def test_journal_actions_attributable():
    """Every simulated capacity action points at a journaled decision."""
    journal = DecisionJournal()
    # Ramp up then down so both spawn and shutdown events appear.
    trace = flat_trace(5, 40) + flat_trace(120, 60) + flat_trace(5, 60)
    from repro.elasticity import ReactiveProvisioner

    sim = AutoscaleSimulation(
        trace,
        ReactiveProvisioner(predictive=None),
        SimConfig(control_interval=5.0, observation_window=10.0),
        journal=journal,
    )
    sim.run()
    kinds = {a.kind for a in journal.actions()}
    assert kinds == {KIND_SPAWN, KIND_SHUTDOWN}
    decision_seqs = {d.seq for d in journal.decisions()}
    for action in journal.actions():
        assert action.data["decision_seq"] in decision_seqs
        assert action.data["policy_reason"].strip()
        assert action.data["reason"] in (REASON_SCALE_UP, REASON_SCALE_DOWN)


def test_journal_none_by_default():
    sim = AutoscaleSimulation(
        flat_trace(10, 20), FixedProvisioner(1), SimConfig(control_interval=5.0)
    )
    assert sim.run().journal is None


def test_simulation_reproducible():
    def run():
        sim = AutoscaleSimulation(
            flat_trace(15, 30),
            FixedProvisioner(2),
            SimConfig(control_interval=5.0, seed=9),
        )
        return sim.run().response_samples

    assert run() == run()
