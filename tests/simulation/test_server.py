"""Tests for the G/G/c server-pool simulation."""

from __future__ import annotations

import random

import pytest

from repro.simulation import (
    EventLoop,
    ServerPool,
    ServiceTimeDistribution,
    poisson_arrival_times,
)


def make_pool(capacity=1, mean=0.05, variance=0.0, spawn_delay=0.0):
    loop = EventLoop()
    dist = ServiceTimeDistribution(mean=mean, variance=variance, rng=random.Random(1))
    pool = ServerPool(loop, dist, initial_capacity=capacity, spawn_delay=spawn_delay)
    return loop, pool


def test_service_distribution_moments():
    dist = ServiceTimeDistribution(mean=0.05, variance=200e-6, rng=random.Random(2))
    samples = [dist.sample() for _ in range(20_000)]
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    assert mean == pytest.approx(0.05, rel=0.03)
    assert variance == pytest.approx(200e-6, rel=0.10)
    assert all(s > 0 for s in samples)


def test_deterministic_service_when_variance_zero():
    dist = ServiceTimeDistribution(mean=0.1, variance=0.0)
    assert dist.sample() == 0.1


def test_distribution_validation():
    with pytest.raises(ValueError):
        ServiceTimeDistribution(mean=0.0)
    with pytest.raises(ValueError):
        ServiceTimeDistribution(mean=0.1, variance=-1.0)


def test_single_server_sequential_service():
    loop, pool = make_pool(capacity=1, mean=1.0)
    loop.schedule_at(0.0, pool.arrive)
    loop.schedule_at(0.0, pool.arrive)
    loop.run_until()
    assert pool.total_completed == 2
    first, second = pool.completed
    assert first.response_time == pytest.approx(1.0)
    assert second.response_time == pytest.approx(2.0)  # waited behind first
    assert second.wait_time == pytest.approx(1.0)


def test_two_servers_parallel_service():
    loop, pool = make_pool(capacity=2, mean=1.0)
    loop.schedule_at(0.0, pool.arrive)
    loop.schedule_at(0.0, pool.arrive)
    loop.run_until()
    for record in pool.completed:
        assert record.response_time == pytest.approx(1.0)


def test_scale_up_drains_queue():
    loop, pool = make_pool(capacity=1, mean=1.0)
    for _ in range(4):
        loop.schedule_at(0.0, pool.arrive)
    loop.schedule_at(0.5, lambda: pool.set_capacity(4))
    loop.run_until()
    # After the scale-up at t=0.5, the three queued jobs start together.
    finish_times = sorted(r.completed_at for r in pool.completed)
    assert finish_times[0] == pytest.approx(1.0)
    assert finish_times[1] == pytest.approx(1.5)
    assert finish_times[3] == pytest.approx(1.5)


def test_spawn_delay_postpones_capacity():
    loop, pool = make_pool(capacity=1, mean=1.0, spawn_delay=2.0)
    for _ in range(2):
        loop.schedule_at(0.0, pool.arrive)
    loop.schedule_at(0.0, lambda: pool.set_capacity(2))
    # capacity=2 requested at t=0 but effective at t=2: the queued job
    # starts at min(first completion=1.0, activation=2.0) = 1.0 anyway.
    loop.run_until()
    assert pool.capacity == 2


def test_graceful_scale_down():
    loop, pool = make_pool(capacity=2, mean=1.0)
    loop.schedule_at(0.0, pool.arrive)
    loop.schedule_at(0.0, pool.arrive)
    loop.schedule_at(0.1, lambda: pool.set_capacity(1))
    loop.schedule_at(0.2, pool.arrive)  # must wait for a slot
    loop.run_until()
    assert pool.total_completed == 3
    last = max(pool.completed, key=lambda r: r.completed_at)
    # Third job starts only after a busy server frees *and* capacity
    # allows (busy < 1): starts at t=1.0, finishes at 2.0.
    assert last.completed_at == pytest.approx(2.0)


def test_utilization_governs_waiting():
    """Sanity: an overloaded pool builds queue, an underloaded one doesn't."""
    loop, pool = make_pool(capacity=1, mean=0.05)
    arrivals = poisson_arrival_times([30] * 20, rng=random.Random(3))  # rho=1.5
    for when in arrivals:
        loop.schedule_at(when, pool.arrive)
    loop.run_until()
    overloaded_p95 = sorted(r.response_time for r in pool.completed)[
        int(0.95 * len(pool.completed))
    ]

    loop2, pool2 = make_pool(capacity=4, mean=0.05)
    for when in arrivals:
        loop2.schedule_at(when, pool2.arrive)
    loop2.run_until()
    healthy_p95 = sorted(r.response_time for r in pool2.completed)[
        int(0.95 * len(pool2.completed))
    ]
    assert overloaded_p95 > 10 * healthy_p95


def test_poisson_arrival_times_counts_and_order():
    times = poisson_arrival_times([2, 0, 3], rng=random.Random(4))
    assert len(times) == 5
    assert times == sorted(times)
    assert sum(1 for t in times if 0 <= t < 1) == 2
    assert sum(1 for t in times if 2 <= t < 3) == 3


def test_on_completion_callback():
    loop, pool = make_pool(capacity=1, mean=0.5)
    seen = []
    pool.on_completion = seen.append
    loop.schedule_at(0.0, pool.arrive)
    loop.run_until()
    assert len(seen) == 1
    assert seen[0].response_time == pytest.approx(0.5)
