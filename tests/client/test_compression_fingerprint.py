"""Tests for the compression codecs and fingerprinters."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import (
    Bzip2Compressor,
    GzipCompressor,
    NullCompressor,
    make_compressor,
    make_fingerprinter,
    sha1_fingerprint,
    sha256_fingerprint,
)

COMPRESSORS = [GzipCompressor(), Bzip2Compressor(), NullCompressor()]


@pytest.fixture(params=COMPRESSORS, ids=lambda c: c.name)
def compressor(request):
    return request.param


def test_round_trip(compressor):
    data = b"hello " * 1000 + b"\x00\xff"
    assert compressor.decompress(compressor.compress(data)) == data


def test_round_trip_empty(compressor):
    assert compressor.decompress(compressor.compress(b"")) == b""


def test_compressible_data_shrinks():
    data = b"repetition " * 10_000
    assert len(GzipCompressor().compress(data)) < len(data) / 5
    assert len(Bzip2Compressor().compress(data)) < len(data) / 5


def test_null_is_identity():
    data = b"anything"
    assert NullCompressor().compress(data) is data


def test_registry():
    assert make_compressor("gzip").name == "gzip"
    assert make_compressor("bzip2").name == "bzip2"
    assert make_compressor("null").name == "null"
    with pytest.raises(ValueError):
        make_compressor("zstd")


def test_sha1_matches_hashlib():
    data = b"fingerprint me"
    assert sha1_fingerprint(data) == hashlib.sha1(data).hexdigest()
    assert len(bytes.fromhex(sha1_fingerprint(data))) == 20  # paper: 20 bytes


def test_sha256_fingerprint():
    data = b"x"
    assert sha256_fingerprint(data) == hashlib.sha256(data).hexdigest()


def test_fingerprinter_registry():
    assert make_fingerprinter("sha1") is sha1_fingerprint
    with pytest.raises(ValueError):
        make_fingerprinter("md5")


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=10_000))
def test_property_gzip_round_trip(data):
    codec = GzipCompressor()
    assert codec.decompress(codec.compress(data)) == data


@settings(max_examples=50, deadline=None)
@given(a=st.binary(max_size=200), b=st.binary(max_size=200))
def test_property_fingerprint_injective_in_practice(a, b):
    if a != b:
        assert sha1_fingerprint(a) != sha1_fingerprint(b)
    else:
        assert sha1_fingerprint(a) == sha1_fingerprint(b)
