"""Tests for the filesystem abstractions and the polling Watcher."""

from __future__ import annotations

import pytest

from repro.client import DirectoryFilesystem, PollingWatcher, VirtualFilesystem
from repro.client.watcher import EVENT_ADD, EVENT_REMOVE, EVENT_UPDATE


@pytest.fixture(params=["virtual", "directory"])
def fs(request, tmp_path):
    if request.param == "virtual":
        return VirtualFilesystem()
    return DirectoryFilesystem(str(tmp_path / "root"))


def test_fs_write_read_delete(fs):
    fs.write("dir/file.txt", b"hello")
    assert fs.exists("dir/file.txt")
    assert fs.read("dir/file.txt") == b"hello"
    size, mtime = fs.stat("dir/file.txt")
    assert size == 5 and mtime > 0
    fs.delete("dir/file.txt")
    assert not fs.exists("dir/file.txt")


def test_fs_list_paths_sorted(fs):
    fs.write("b.txt", b"2")
    fs.write("a.txt", b"1")
    paths = fs.list_paths()
    assert sorted(paths) == paths
    assert set(paths) == {"a.txt", "b.txt"}


def test_fs_read_missing_raises(fs):
    with pytest.raises(FileNotFoundError):
        fs.read("nope")


def test_directory_fs_blocks_escape(tmp_path):
    fs = DirectoryFilesystem(str(tmp_path / "root"))
    with pytest.raises(ValueError):
        fs.write("../outside.txt", b"x")


def test_watcher_detects_add_update_remove():
    fs = VirtualFilesystem()
    watcher = PollingWatcher(fs)
    watcher.prime()

    fs.write("new.txt", b"v1")
    events = watcher.scan_once()
    assert [(e.kind, e.path) for e in events] == [(EVENT_ADD, "new.txt")]

    fs.write("new.txt", b"v2-longer")
    events = watcher.scan_once()
    assert [(e.kind, e.path) for e in events] == [(EVENT_UPDATE, "new.txt")]

    fs.delete("new.txt")
    events = watcher.scan_once()
    assert [(e.kind, e.path) for e in events] == [(EVENT_REMOVE, "new.txt")]


def test_watcher_no_spurious_events():
    fs = VirtualFilesystem()
    fs.write("stable.txt", b"same")
    watcher = PollingWatcher(fs)
    watcher.prime()
    assert watcher.scan_once() == []
    assert watcher.scan_once() == []


def test_watcher_ignore_suppresses_one_event():
    """Self-inflicted writes (applying a remote change) must not echo."""
    fs = VirtualFilesystem()
    watcher = PollingWatcher(fs)
    watcher.prime()
    fs.write("remote.txt", b"from-server")
    watcher.ignore("remote.txt")  # contract: ignore *after* the write
    assert watcher.scan_once() == []
    # Only that write is suppressed; later local edits surface.
    fs.write("remote.txt", b"local-edit!!")
    events = watcher.scan_once()
    assert [(e.kind, e.path) for e in events] == [(EVENT_UPDATE, "remote.txt")]


def test_watcher_ignore_does_not_swallow_racing_user_edit():
    """A user edit landing before the next scan must still be reported.

    The suppression compares the file's stat against the snapshot taken
    at ignore() time, so a subsequent edit (different size) survives.
    """
    fs = VirtualFilesystem()
    watcher = PollingWatcher(fs)
    watcher.prime()
    fs.write("doc.txt", b"applied-from-server")
    watcher.ignore("doc.txt")
    # The user edits *before* the watcher ever scans.
    fs.write("doc.txt", b"user edit on top, different size")
    events = watcher.scan_once()
    assert [(e.kind, e.path) for e in events] == [(EVENT_ADD, "doc.txt")]


def test_watcher_ignore_deletion():
    fs = VirtualFilesystem()
    fs.write("gone.txt", b"x")
    watcher = PollingWatcher(fs)
    watcher.prime()
    fs.delete("gone.txt")
    watcher.ignore("gone.txt")  # remote deletion applied locally
    assert watcher.scan_once() == []
    # Re-creating the file afterwards is a fresh, reportable event.
    fs.write("gone.txt", b"back")
    events = watcher.scan_once()
    assert [(e.kind, e.path) for e in events] == [(EVENT_ADD, "gone.txt")]


def test_watcher_callback_invoked():
    fs = VirtualFilesystem()
    seen = []
    watcher = PollingWatcher(fs, on_event=seen.append)
    watcher.prime()
    fs.write("x.txt", b"1")
    watcher.scan_once()
    assert len(seen) == 1 and seen[0].kind == EVENT_ADD


def test_watcher_multiple_changes_in_one_scan():
    fs = VirtualFilesystem()
    fs.write("old.txt", b"1")
    watcher = PollingWatcher(fs)
    watcher.prime()
    fs.write("a.txt", b"1")
    fs.write("b.txt", b"2")
    fs.delete("old.txt")
    events = watcher.scan_once()
    kinds = {(e.kind, e.path) for e in events}
    assert kinds == {
        (EVENT_ADD, "a.txt"),
        (EVENT_ADD, "b.txt"),
        (EVENT_REMOVE, "old.txt"),
    }
