"""Tests for the client's local database (records, dedup index, cache)."""

from __future__ import annotations

from repro.client import LocalDatabase, LocalFileRecord


def record(item_id="ws:a.txt", path="a.txt", version=1):
    return LocalFileRecord(item_id=item_id, path=path, version=version)


def test_upsert_and_get():
    db = LocalDatabase()
    db.upsert(record())
    assert db.get("ws:a.txt").path == "a.txt"
    assert db.get_by_path("a.txt").item_id == "ws:a.txt"
    assert db.get("missing") is None
    assert db.get_by_path("missing") is None


def test_upsert_replaces():
    db = LocalDatabase()
    db.upsert(record(version=1))
    db.upsert(record(version=2))
    assert db.get("ws:a.txt").version == 2
    assert len(db.list_records()) == 1


def test_remove_clears_both_indexes():
    db = LocalDatabase()
    db.upsert(record())
    db.remove("ws:a.txt")
    assert db.get("ws:a.txt") is None
    assert db.get_by_path("a.txt") is None


def test_remove_does_not_clobber_reused_path():
    db = LocalDatabase()
    db.upsert(record(item_id="old", path="a.txt"))
    db.upsert(record(item_id="new", path="a.txt"))
    db.remove("old")
    assert db.get_by_path("a.txt").item_id == "new"


def test_dedup_index():
    db = LocalDatabase()
    assert not db.knows_fingerprint("f1")
    db.remember_fingerprints(["f1", "f2"])
    assert db.knows_fingerprint("f1")
    assert db.fingerprint_count() == 2


def test_chunk_cache_also_feeds_dedup():
    db = LocalDatabase()
    db.cache_chunk("f1", b"payload")
    assert db.cached_chunk("f1") == b"payload"
    assert db.knows_fingerprint("f1")
    assert db.cached_chunk("ghost") is None


def test_cache_eviction():
    db = LocalDatabase()
    db.cache_chunk("keep", b"k")
    db.cache_chunk("drop", b"d")
    assert db.evict_chunks(keep={"keep"}) == 1
    assert db.cached_chunk("keep") == b"k"
    assert db.cached_chunk("drop") is None
    # Dedup memory survives eviction (the user still *has* the chunk
    # server-side; only the local payload copy is gone).
    assert db.knows_fingerprint("drop")


def test_cache_size():
    db = LocalDatabase()
    db.cache_chunk("a", b"123")
    db.cache_chunk("b", b"4567")
    assert db.cache_size_bytes() == 7


def test_list_records_sorted():
    db = LocalDatabase()
    db.upsert(record(item_id="z", path="z.txt"))
    db.upsert(record(item_id="a", path="a.txt"))
    assert [r.item_id for r in db.list_records()] == ["a", "z"]
