"""ChunkTransferManager: retry, coalescing, ordered parallel reassembly."""

from __future__ import annotations

import threading
import time

import pytest

from repro.client.chunker import FixedChunker
from repro.client.transfer import ChunkTransferManager
from repro.errors import ObjectNotFound, StorageError
from repro.storage import SwiftLikeStore


class FlakyStore:
    """Store facade that fails the first N operations with a transient error."""

    def __init__(self, inner, put_failures=0, get_failures=0):
        self.inner = inner
        self._lock = threading.Lock()
        self.put_failures = put_failures
        self.get_failures = get_failures
        self.put_attempts = 0
        self.get_attempts = 0

    def put_object(self, container, name, data):
        with self._lock:
            self.put_attempts += 1
            if self.put_failures > 0:
                self.put_failures -= 1
                raise StorageError("transient put failure")
        self.inner.put_object(container, name, data)

    def get_object(self, container, name):
        with self._lock:
            self.get_attempts += 1
            if self.get_failures > 0:
                self.get_failures -= 1
                raise StorageError("transient get failure")
        return self.inner.get_object(container, name)


class GatedStore:
    """Store facade whose GETs block until the gate opens."""

    def __init__(self, inner, gate):
        self.inner = inner
        self.gate = gate
        self._lock = threading.Lock()
        self.get_count = 0

    def get_object(self, container, name):
        self.gate.wait(timeout=5)
        with self._lock:
            self.get_count += 1
        return self.inner.get_object(container, name)


@pytest.fixture
def store():
    s = SwiftLikeStore(node_count=2, replicas=2)
    s.create_container("c")
    return s


def manager(**kwargs):
    kwargs.setdefault("backoff", 0.0)
    return ChunkTransferManager(**kwargs)


def test_upload_retries_transient_storage_error(store):
    flaky = FlakyStore(store, put_failures=2)
    with manager(pool_size=2, max_attempts=3) as tm:
        records = tm.upload_chunks(flaky, "c", [("fp1", b"payload")])
    assert records[0].attempts == 3
    assert flaky.put_attempts == 3
    assert store.get_object("c", "fp1") == b"payload"
    assert tm.stats.retries == 2


def test_upload_raises_after_exhausting_attempts(store):
    flaky = FlakyStore(store, put_failures=10)
    with manager(pool_size=2, max_attempts=2) as tm:
        with pytest.raises(StorageError):
            tm.upload_chunks(flaky, "c", [("fp1", b"payload")])
        assert flaky.put_attempts == 2
        # The failed key was unregistered: a later attempt works.
        flaky.put_failures = 0
        tm.upload_chunks(flaky, "c", [("fp1", b"payload")])
    assert store.get_object("c", "fp1") == b"payload"


def test_download_retries_transient_storage_error(store):
    store.put_object("c", "fp1", b"data")
    flaky = FlakyStore(store, get_failures=1)
    with manager(pool_size=2, max_attempts=3) as tm:
        [payload] = tm.fetch_chunks(flaky, "c", ["fp1"])
    assert payload == b"data"
    assert flaky.get_attempts == 2


def test_object_not_found_is_not_retried(store):
    flaky = FlakyStore(store)
    with manager(pool_size=2, max_attempts=5) as tm:
        with pytest.raises(ObjectNotFound):
            tm.fetch_chunks(flaky, "c", ["missing"])
    assert flaky.get_attempts == 1


def test_ordered_reassembly_under_concurrency(store):
    # Chunks whose storage latency *decreases* with index: without ordered
    # reassembly, later chunks would finish (and land) first.
    fingerprints = [f"fp{i:03d}" for i in range(24)]
    for i, fp in enumerate(fingerprints):
        store.put_object("c", fp, f"piece-{i:03d}".encode())

    class SkewedStore:
        def get_object(self, container, name):
            index = int(name[2:])
            time.sleep((len(fingerprints) - index) * 0.002)
            return store.get_object(container, name)

    with manager(pool_size=8) as tm:
        pieces = tm.fetch_chunks(SkewedStore(), "c", fingerprints)
    assert pieces == [f"piece-{i:03d}".encode() for i in range(24)]


def test_decode_runs_before_caching_and_failure_propagates(store):
    store.put_object("c", "fp1", b"corrupt")
    cached = {}

    def decode(fp, payload):
        raise StorageError("integrity check failed")

    with manager(pool_size=2, max_attempts=1) as tm:
        with pytest.raises(StorageError):
            tm.fetch_chunks(
                store, "c", ["fp1"], decode=decode, on_fetched=cached.__setitem__
            )
    assert cached == {}  # rejected payloads are never cached


def test_in_flight_download_coalescing(store):
    store.put_object("c", "shared", b"S" * 64)
    gate = threading.Event()
    gated = GatedStore(store, gate)
    threading.Timer(0.05, gate.set).start()
    with manager(pool_size=4) as tm:
        # The same fingerprint five times: all coalesce onto one GET.
        pieces = tm.fetch_chunks(gated, "c", ["shared"] * 5)
    assert pieces == [b"S" * 64] * 5
    assert gated.get_count == 1
    assert tm.stats.chunks_down == 1
    assert tm.stats.coalesced == 4


def test_cache_lookup_skips_download(store):
    store.put_object("c", "fp1", b"stored")
    with manager(pool_size=2) as tm:
        [payload] = tm.fetch_chunks(
            store, "c", ["fp1"], lookup={"fp1": b"cached"}.get
        )
    assert payload == b"cached"
    assert store.get_count == 0


def test_client_parallel_transfer_end_to_end(testbed):
    """A multi-chunk file syncs through the pool; counters match the store."""
    writer = testbed.client(
        device_id="w", chunker=FixedChunker(chunk_size=1024), transfer_pool_size=4
    )
    reader = testbed.client(
        device_id="r", chunker=FixedChunker(chunk_size=1024), transfer_pool_size=4
    )
    content = bytes(i % 251 for i in range(8 * 1024))  # 8 distinct chunks
    meta = writer.put_file("big.bin", content)
    assert reader.wait_for_version(meta.item_id, meta.version, timeout=10)
    assert reader.fs.read("big.bin") == content
    assert writer.stats.chunk_uploads == 8
    assert reader.stats.chunk_downloads == 8
    # Client-side accounting equals what the store itself metered.
    assert writer.stats.storage_up == testbed.storage.bytes_in
    assert reader.stats.storage_down == testbed.storage.bytes_out
    scraped = writer.stats.scrape()
    assert scraped["chunk_uploads"] == 8
    assert scraped["upload_seconds"] >= 0.0
    assert scraped["storage_up_bytes"] == testbed.storage.bytes_in
