"""Tests for the Indexer: chunk → dedup → proposal pipeline (§4.1)."""

from __future__ import annotations

import hashlib

import pytest

from repro.client import FixedChunker, Indexer, LocalDatabase, LocalFileRecord
from repro.client.compression import NullCompressor
from repro.client.indexer import make_item_id
from repro.sync.models import STATUS_CHANGED, STATUS_DELETED, STATUS_NEW


@pytest.fixture
def indexer():
    return Indexer(
        LocalDatabase(), chunker=FixedChunker(chunk_size=8), compressor=NullCompressor()
    )


def test_new_file_proposal(indexer):
    content = b"0123456789abcdef"  # two 8-byte chunks
    result = indexer.index_change("ws", "dev", "a.txt", content)
    proposal = result.proposal
    assert proposal.item_id == make_item_id("ws", "a.txt")
    assert proposal.version == 1
    assert proposal.status == STATUS_NEW
    assert proposal.size == 16
    assert len(proposal.chunks) == 2
    assert proposal.checksum == hashlib.sha1(content).hexdigest()
    assert len(result.uploads) == 2
    assert result.upload_raw_bytes == 16


def test_update_increments_version(indexer):
    indexer.local_db.upsert(
        LocalFileRecord(item_id=make_item_id("ws", "a.txt"), path="a.txt", version=3)
    )
    result = indexer.index_change("ws", "dev", "a.txt", b"new")
    assert result.proposal.version == 4
    assert result.proposal.status == STATUS_CHANGED


def test_pending_version_chains_rapid_edits(indexer):
    indexer.local_db.upsert(
        LocalFileRecord(
            item_id=make_item_id("ws", "a.txt"),
            path="a.txt",
            version=1,
            pending_version=2,
        )
    )
    result = indexer.index_change("ws", "dev", "a.txt", b"newer")
    assert result.proposal.version == 3


def test_dedup_skips_known_chunks(indexer):
    content = b"AAAAAAAA" + b"BBBBBBBB"
    first = indexer.index_change("ws", "dev", "a.txt", content)
    indexer.local_db.remember_fingerprints(
        fp for fp, _payload in first.uploads
    )
    # Second file shares chunk A.
    second = indexer.index_change("ws", "dev", "b.txt", b"AAAAAAAA" + b"CCCCCCCC")
    uploaded = [fp for fp, _ in second.uploads]
    assert len(uploaded) == 1
    assert len(second.deduplicated) == 1
    # Metadata still references both chunks in order.
    assert len(second.proposal.chunks) == 2


def test_repeated_chunk_within_one_file_uploaded_once(indexer):
    content = b"XXXXXXXX" * 3
    result = indexer.index_change("ws", "dev", "a.txt", content)
    assert len(result.uploads) == 1
    assert len(result.proposal.chunks) == 3


def test_compression_applied_to_uploads():
    from repro.client.compression import GzipCompressor

    indexer = Indexer(
        LocalDatabase(), chunker=FixedChunker(chunk_size=1024), compressor=GzipCompressor()
    )
    content = b"compressible " * 500
    result = indexer.index_change("ws", "dev", "a.txt", content)
    assert result.upload_bytes < result.upload_raw_bytes


def test_delete_proposal(indexer):
    indexer.local_db.upsert(
        LocalFileRecord(item_id=make_item_id("ws", "a.txt"), path="a.txt", version=2)
    )
    result = indexer.index_delete("ws", "dev", "a.txt")
    assert result.proposal.status == STATUS_DELETED
    assert result.proposal.version == 3
    assert result.proposal.chunks == []
    assert result.uploads == []


def test_delete_unknown_path_still_proposes(indexer):
    result = indexer.index_delete("ws", "dev", "ghost.txt")
    assert result.proposal.version == 1
    assert result.proposal.status == STATUS_DELETED


def test_empty_file_has_one_chunk(indexer):
    result = indexer.index_change("ws", "dev", "empty.txt", b"")
    assert len(result.proposal.chunks) == 1
