"""Tests for the SQLite-backed client database (restart resumption)."""

from __future__ import annotations

import os

import pytest

from repro.client import LocalDatabase, LocalFileRecord
from repro.client.persistent_db import SqliteLocalDatabase


@pytest.fixture(params=["memory", "sqlite"])
def db(request, tmp_path):
    if request.param == "memory":
        yield LocalDatabase()
    else:
        database = SqliteLocalDatabase(str(tmp_path / "client.db"))
        yield database
        database.close()


def record(item_id="ws:a.txt", path="a.txt", version=1, pending=None):
    return LocalFileRecord(
        item_id=item_id,
        path=path,
        version=version,
        chunks=["f1", "f2"],
        checksum="c",
        size=7,
        pending_version=pending,
    )


def test_contract_upsert_get(db):
    db.upsert(record())
    found = db.get("ws:a.txt")
    assert found.path == "a.txt"
    assert found.chunks == ["f1", "f2"]
    assert db.get_by_path("a.txt").item_id == "ws:a.txt"


def test_contract_upsert_replaces(db):
    db.upsert(record(version=1))
    db.upsert(record(version=5, pending=6))
    found = db.get("ws:a.txt")
    assert found.version == 5
    assert found.pending_version == 6
    assert len(db.list_records()) == 1


def test_contract_remove(db):
    db.upsert(record())
    db.remove("ws:a.txt")
    assert db.get("ws:a.txt") is None


def test_contract_dedup_and_cache(db):
    db.remember_fingerprints(["x", "y"])
    assert db.knows_fingerprint("x")
    assert db.fingerprint_count() == 2
    db.cache_chunk("z", b"payload")
    assert db.cached_chunk("z") == b"payload"
    assert db.knows_fingerprint("z")
    assert db.cache_size_bytes() == 7
    assert db.evict_chunks(keep=set()) == 1
    assert db.cached_chunk("z") is None
    assert db.knows_fingerprint("z")  # dedup memory survives eviction


def test_sqlite_survives_reopen(tmp_path):
    path = str(tmp_path / "client.db")
    db = SqliteLocalDatabase(path)
    db.upsert(record(version=3, pending=4))
    db.remember_fingerprints(["fp1"])
    db.cache_chunk("fp2", b"\x00\x01")
    db.close()

    reopened = SqliteLocalDatabase(path)
    found = reopened.get("ws:a.txt")
    assert found.version == 3 and found.pending_version == 4
    assert reopened.knows_fingerprint("fp1")
    assert reopened.cached_chunk("fp2") == b"\x00\x01"
    reopened.close()


def test_client_restart_resumes_without_reupload(testbed, tmp_path):
    """A device restarting with its durable DB re-uploads nothing."""
    path = str(tmp_path / "dev1.db")
    from repro.client import StackSyncClient

    db = SqliteLocalDatabase(path)
    c1 = StackSyncClient(
        "alice",
        testbed.workspaces["alice"],
        testbed.mom,
        testbed.storage,
        device_id="dev-1",
        local_db=db,
    )
    c1.start()
    meta = c1.put_file("persist.txt", b"durable " * 200)
    c1.wait_for_version(meta.item_id, meta.version)
    c1.stop()
    db.close()

    puts_before = testbed.storage.put_count
    db2 = SqliteLocalDatabase(path)
    c2 = StackSyncClient(
        "alice",
        testbed.workspaces["alice"],
        testbed.mom,
        testbed.storage,
        device_id="dev-1",
        local_db=db2,
    )
    c2.start()
    # Same content again after "restart": dedup index remembers it.
    meta2 = c2.put_file("persist-copy.txt", b"durable " * 200)
    c2.wait_for_version(meta2.item_id, meta2.version, timeout=10)
    assert testbed.storage.put_count == puts_before
    c2.stop()
    db2.close()
