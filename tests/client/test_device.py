"""Tests for the multi-workspace StackSyncDevice."""

from __future__ import annotations

import time

import pytest

from repro.client.device import StackSyncDevice
from repro.objectmq import Broker
from repro.sync import SYNC_SERVICE_OID, SyncServiceApi, Workspace


@pytest.fixture
def multi_ws(testbed):
    """alice with two workspaces, plus an admin proxy."""
    second = Workspace(workspace_id="ws-second", owner="alice")
    testbed.metadata.create_workspace(second)
    admin = Broker(testbed.mom)
    proxy = admin.lookup(SYNC_SERVICE_OID, SyncServiceApi)
    yield testbed, proxy
    admin.close()


def test_device_discovers_all_workspaces(multi_ws):
    testbed, _proxy = multi_ws
    device = StackSyncDevice("alice", "laptop", testbed.mom, testbed.storage)
    ids = device.start()
    assert len(ids) == 2
    assert "ws-second" in ids
    device.stop()


def test_workspaces_sync_independently(multi_ws):
    testbed, _proxy = multi_ws
    laptop = StackSyncDevice("alice", "laptop", testbed.mom, testbed.storage)
    phone = StackSyncDevice("alice", "phone", testbed.mom, testbed.storage)
    laptop.start()
    phone.start()

    first, second = laptop.workspace_ids()
    meta_a = laptop.client_for(first).put_file("a.txt", b"in first")
    meta_b = laptop.client_for(second).put_file("b.txt", b"in second")
    assert phone.client_for(first).wait_for_version(
        meta_a.item_id, meta_a.version, timeout=10
    )
    assert phone.client_for(second).wait_for_version(
        meta_b.item_id, meta_b.version, timeout=10
    )
    # Strict isolation: files do not leak across workspaces.
    assert not phone.fs_for(first).exists("b.txt")
    assert not phone.fs_for(second).exists("a.txt")
    laptop.stop()
    phone.stop()


def test_refresh_attaches_newly_shared_workspace(multi_ws):
    testbed, proxy = multi_ws
    testbed.metadata.create_user("bob")
    bob_device = StackSyncDevice("bob", "bob-laptop", testbed.mom, testbed.storage)
    assert bob_device.start() == []

    # Alice shares her workspace; bob refreshes and starts receiving.
    shared_id = testbed.workspaces["alice"].workspace_id
    proxy.share_workspace(shared_id, "bob")
    assert shared_id in bob_device.refresh()

    alice_device = StackSyncDevice("alice", "alice-laptop", testbed.mom, testbed.storage)
    alice_device.start()
    meta = alice_device.client_for(shared_id).put_file("hello.txt", b"hi bob")
    assert bob_device.client_for(shared_id).wait_for_version(
        meta.item_id, meta.version, timeout=10
    )
    assert bob_device.fs_for(shared_id).read("hello.txt") == b"hi bob"
    alice_device.stop()
    bob_device.stop()


def test_client_for_unknown_workspace_raises(multi_ws):
    testbed, _proxy = multi_ws
    device = StackSyncDevice("alice", "laptop", testbed.mom, testbed.storage)
    device.start()
    with pytest.raises(KeyError):
        device.client_for("nope")
    device.stop()


def test_scan_all_drives_every_workspace(multi_ws):
    testbed, _proxy = multi_ws
    laptop = StackSyncDevice("alice", "laptop", testbed.mom, testbed.storage)
    phone = StackSyncDevice("alice", "phone", testbed.mom, testbed.storage)
    laptop.start()
    phone.start()
    first, second = laptop.workspace_ids()
    laptop.fs_for(first).write("x.txt", b"1")
    laptop.fs_for(second).write("y.txt", b"2")
    assert laptop.scan_all() == 2
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and not (
        phone.fs_for(first).exists("x.txt") and phone.fs_for(second).exists("y.txt")
    ):
        time.sleep(0.05)
    assert phone.fs_for(first).exists("x.txt")
    assert phone.fs_for(second).exists("y.txt")
    laptop.stop()
    phone.stop()


def test_refresh_requires_start(testbed):
    device = StackSyncDevice("alice", "laptop", testbed.mom, testbed.storage)
    with pytest.raises(RuntimeError):
        device.refresh()
