"""Tests for fixed-size and content-defined chunking (§4.1)."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import Chunk, ContentDefinedChunker, FixedChunker, make_chunker
from repro.client.chunker import DEFAULT_CHUNK_SIZE


def reassemble(chunks):
    return b"".join(c.data for c in chunks)


def test_default_chunk_size_matches_paper():
    assert DEFAULT_CHUNK_SIZE == 512 * 1024
    assert FixedChunker().chunk_size == 512 * 1024


def test_fixed_chunker_exact_multiple():
    chunker = FixedChunker(chunk_size=10)
    chunks = chunker.chunk(b"0123456789" * 3)
    assert len(chunks) == 3
    assert all(c.size == 10 for c in chunks)
    assert [c.offset for c in chunks] == [0, 10, 20]


def test_fixed_chunker_trailing_partial():
    chunker = FixedChunker(chunk_size=10)
    chunks = chunker.chunk(b"x" * 25)
    assert [c.size for c in chunks] == [10, 10, 5]


def test_fixed_chunker_empty_file_single_empty_chunk():
    chunks = FixedChunker().chunk(b"")
    assert len(chunks) == 1
    assert chunks[0].data == b""
    assert chunks[0].fingerprint  # still fingerprinted


def test_fixed_identical_blocks_share_fingerprint():
    chunker = FixedChunker(chunk_size=8)
    chunks = chunker.chunk(b"ABCDEFGH" * 2)
    assert chunks[0].fingerprint == chunks[1].fingerprint


def test_fixed_boundary_shifting_problem():
    """The pathology the paper blames for UPDATE skew (Fig 7e): a small
    prepend changes *every* fixed-size chunk."""
    chunker = FixedChunker(chunk_size=4096)
    rng = random.Random(1)
    original = bytes(rng.getrandbits(8) for _ in range(64 * 1024))
    shifted = b"xx" + original
    before = {c.fingerprint for c in chunker.chunk(original)}
    after = {c.fingerprint for c in chunker.chunk(shifted)}
    assert not before & after  # no chunk survives


def test_cdc_round_trip_and_bounds():
    chunker = ContentDefinedChunker(minimum=1024, target=4096, maximum=16384)
    rng = random.Random(2)
    data = bytes(rng.getrandbits(8) for _ in range(200 * 1024))
    chunks = chunker.chunk(data)
    assert reassemble(chunks) == data
    for chunk in chunks[:-1]:
        assert 1024 <= chunk.size <= 16384
    assert chunks[-1].size <= 16384


def test_cdc_resists_boundary_shifting():
    """Content-defined boundaries survive a small prepend (most chunks
    keep their fingerprints) — the fix for the boundary-shifting problem."""
    chunker = ContentDefinedChunker(minimum=512, target=2048, maximum=8192)
    rng = random.Random(3)
    original = bytes(rng.getrandbits(8) for _ in range(128 * 1024))
    shifted = b"zz" + original
    before = {c.fingerprint for c in chunker.chunk(original)}
    after = {c.fingerprint for c in chunker.chunk(shifted)}
    shared = len(before & after)
    assert shared / len(before) > 0.5


def test_cdc_deterministic():
    chunker_a = ContentDefinedChunker(minimum=512, target=2048, maximum=8192)
    chunker_b = ContentDefinedChunker(minimum=512, target=2048, maximum=8192)
    data = os.urandom(50 * 1024)
    assert [c.fingerprint for c in chunker_a.chunk(data)] == [
        c.fingerprint for c in chunker_b.chunk(data)
    ]


def test_cdc_empty_file():
    chunks = ContentDefinedChunker().chunk(b"")
    assert len(chunks) == 1 and chunks[0].data == b""


def test_cdc_validates_bounds():
    with pytest.raises(ValueError):
        ContentDefinedChunker(minimum=100, target=50, maximum=200)


def test_make_chunker_registry():
    assert isinstance(make_chunker("fixed"), FixedChunker)
    assert isinstance(make_chunker("cdc"), ContentDefinedChunker)
    with pytest.raises(ValueError):
        make_chunker("magic")


@settings(max_examples=50, deadline=None)
@given(data=st.binary(max_size=30_000), chunk_size=st.integers(min_value=1, max_value=9999))
def test_property_fixed_chunks_reassemble(data, chunk_size):
    chunks = FixedChunker(chunk_size=chunk_size).chunk(data)
    assert reassemble(chunks) == data
    offsets = [c.offset for c in chunks]
    assert offsets == sorted(offsets)


@settings(max_examples=25, deadline=None)
@given(data=st.binary(min_size=1, max_size=60_000))
def test_property_cdc_chunks_reassemble(data):
    chunker = ContentDefinedChunker(minimum=256, target=1024, maximum=4096)
    chunks = chunker.chunk(data)
    assert reassemble(chunks) == data
