"""Tests for the exception hierarchy: every error is a ReproError."""

from __future__ import annotations

import inspect

import pytest

from repro import errors


def all_error_classes():
    return [
        obj
        for _name, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


def test_every_error_subclasses_repro_error():
    for cls in all_error_classes():
        assert issubclass(cls, errors.ReproError), cls.__name__


def test_layer_base_classes():
    assert issubclass(errors.QueueNotFound, errors.MomError)
    assert issubclass(errors.RemoteTimeout, errors.ObjectMqError)
    assert issubclass(errors.CommitConflict, errors.SyncError)
    assert issubclass(errors.ObjectNotFound, errors.StorageError)
    assert issubclass(errors.TransactionAborted, errors.MetadataError)
    assert issubclass(errors.AuthenticationError, errors.AuthError)
    assert issubclass(errors.AuthorizationError, errors.AuthError)
    assert issubclass(errors.NoCapacityModel, errors.ProvisioningError)


def test_remote_invocation_error_carries_context():
    error = errors.RemoteInvocationError("commit_request", "ValueError: boom")
    assert error.method == "commit_request"
    assert "commit_request" in str(error)
    assert "boom" in str(error)


def test_catching_the_base_covers_everything():
    with pytest.raises(errors.ReproError):
        raise errors.DeliveryError("x")
    with pytest.raises(errors.ReproError):
        raise errors.AuthorizationError("y")
