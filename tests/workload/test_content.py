"""Tests for deterministic synthetic content generation."""

from __future__ import annotations

import zlib

from repro.workload import ContentStore, generate_content


def test_exact_size():
    for size in (0, 1, 100, 4096, 10_000):
        assert len(generate_content("p", size)) == size


def test_deterministic_per_path_and_seed():
    assert generate_content("a", 5000, seed=1) == generate_content("a", 5000, seed=1)
    assert generate_content("a", 5000, seed=1) != generate_content("a", 5000, seed=2)
    assert generate_content("a", 5000, seed=1) != generate_content("b", 5000, seed=1)


def test_compressibility_dial():
    incompressible = generate_content("p", 100_000, compressible_fraction=0.0)
    compressible = generate_content("p", 100_000, compressible_fraction=1.0)
    ratio_in = len(zlib.compress(incompressible, 1)) / 100_000
    ratio_co = len(zlib.compress(compressible, 1)) / 100_000
    assert ratio_in > 0.9
    assert ratio_co < 0.1


def test_content_store_lifecycle():
    store = ContentStore(seed=3)
    created = store.create("f", 1000)
    assert store.get("f") == created
    assert store.exists("f")
    store.set("f", b"replaced")
    assert store.get("f") == b"replaced"
    assert store.total_bytes() == 8
    store.delete("f")
    assert not store.exists("f")


def test_content_store_pins_compressibility():
    store = ContentStore(seed=1, compressible_fraction=0.0)
    data = store.create("f", 50_000)
    assert len(zlib.compress(data, 1)) / 50_000 > 0.9
