"""Tests for trace save/load and device registry additions."""

from __future__ import annotations

import pytest

from repro.workload import Trace, TraceGenerator, TraceReplayer


def test_trace_round_trips_through_file(tmp_path):
    trace = TraceGenerator(seed=5, snapshots=15, scale=0.02).generate()
    path = str(tmp_path / "trace.jsonl")
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.seed == trace.seed
    assert loaded.ops == trace.ops
    assert loaded.summary() == trace.summary()


def test_loaded_trace_replays_identical_contents(tmp_path):
    trace = TraceGenerator(seed=9, snapshots=10, scale=0.02).generate()
    path = str(tmp_path / "trace.jsonl")
    trace.save(path)
    loaded = Trace.load(path)
    original = [TraceReplayer(trace).materialize(op) for op in trace.ops[:12]]
    replayed = [TraceReplayer(loaded).materialize(op) for op in loaded.ops[:12]]
    assert original == replayed


def test_load_rejects_foreign_files(tmp_path):
    path = tmp_path / "junk.jsonl"
    path.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError):
        Trace.load(str(path))
