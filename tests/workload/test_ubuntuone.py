"""Tests for the synthetic Ubuntu One arrival traces (§5.3.1)."""

from __future__ import annotations

import pytest

from repro.workload import PAPER_PEAK_PER_MINUTE, UB1Config, UbuntuOneTraceGenerator


@pytest.fixture(scope="module")
def generator():
    return UbuntuOneTraceGenerator(UB1Config(seconds_per_day=4320))


def test_day_length(generator):
    assert len(generator.rate_profile(8)) == 4320
    assert len(generator.day8()) == 4320


def test_diurnal_shape(generator):
    """Peak around noon, trough in the middle of the night (§4)."""
    rates = generator.rate_profile(8)
    per_hour = [
        sum(rates[h * 180 : (h + 1) * 180]) / 180 for h in range(24)
    ]
    peak_hour = per_hour.index(max(per_hour))
    trough_hour = per_hour.index(min(per_hour))
    assert 10 <= peak_hour <= 15
    assert trough_hour <= 5 or trough_hour >= 22
    assert max(per_hour) / min(per_hour) > 3  # strong seasonality


def test_peak_close_to_paper(generator):
    peak = generator.peak_of(generator.day8())
    assert peak == pytest.approx(PAPER_PEAK_PER_MINUTE, rel=0.30)


def test_deterministic_per_seed():
    config = UB1Config(seconds_per_day=1000)
    a = UbuntuOneTraceGenerator(config, seed=1).day8()
    b = UbuntuOneTraceGenerator(config, seed=1).day8()
    c = UbuntuOneTraceGenerator(config, seed=2).day8()
    assert a == b
    assert a != c


def test_day8_resembles_previous_week(generator):
    """The property the predictive provisioner exploits: a typical day
    matches the same weekday's profile from the history."""
    day8 = generator.rate_profile(8)
    day1 = generator.rate_profile(1)  # same weekday (8 % 7 == 1)
    # Hourly profiles correlate strongly.
    hours8 = [sum(day8[h * 180 : (h + 1) * 180]) for h in range(24)]
    hours1 = [sum(day1[h * 180 : (h + 1) * 180]) for h in range(24)]
    mean8 = sum(hours8) / 24
    mean1 = sum(hours1) / 24
    cov = sum((a - mean8) * (b - mean1) for a, b in zip(hours8, hours1))
    var8 = sum((a - mean8) ** 2 for a in hours8)
    var1 = sum((b - mean1) ** 2 for b in hours1)
    correlation = cov / (var8 * var1) ** 0.5
    assert correlation > 0.95


def test_weekend_lighter_than_weekday():
    generator = UbuntuOneTraceGenerator(UB1Config(seconds_per_day=2000))
    weekday = sum(generator.rate_profile(1))  # day 1: weekday
    weekend = sum(generator.rate_profile(6))  # day 6: weekend
    assert weekend < weekday


def test_week_history_summaries_length(generator):
    period = 45.0  # 15 "real" minutes in the compressed day
    summaries = generator.week_history_summaries(period=period)
    assert len(summaries) == 7 * 96  # 96 fifteen-minute periods per day
    assert all(s >= 0 for s in summaries)


def test_arrivals_match_rates_in_expectation(generator):
    rates = generator.rate_profile(8)
    arrivals = generator.day8()
    assert sum(arrivals) == pytest.approx(sum(rates), rel=0.05)
