"""Tests for the N/M/U/D Markov file-state model (§5.2.1)."""

from __future__ import annotations

import random

import pytest

from repro.workload import FileStateMarkov, HOMES_TRANSITIONS
from repro.workload.markov import STATE_DELETED, STATE_NEW, STATE_UNMODIFIED


def test_homes_matrix_rows_sum_to_one():
    for state, row in HOMES_TRANSITIONS.items():
        assert sum(row.values()) == pytest.approx(1.0)


def test_deleted_is_absorbing():
    assert HOMES_TRANSITIONS[STATE_DELETED] == {STATE_DELETED: 1.0}


def test_invalid_matrix_rejected():
    with pytest.raises(ValueError):
        FileStateMarkov(transitions={STATE_NEW: {STATE_UNMODIFIED: 0.5}})
    with pytest.raises(ValueError):
        FileStateMarkov(transitions={"X": {STATE_UNMODIFIED: 1.0}})


def test_seed_files_all_new():
    model = FileStateMarkov(rng=random.Random(1))
    paths = model.seed_files(5)
    assert len(paths) == 5
    assert model.live_count == 5
    assert all(model.files[p].state == STATE_NEW for p in paths)


def test_step_moves_population():
    model = FileStateMarkov(rng=random.Random(1))
    model.seed_files(100)
    result = model.step()
    assert set(result) == {"added", "modified", "deleted"}
    # After one step, NEW files have transitioned (mostly to U).
    unmodified = sum(
        1 for f in model.files.values() if f.state == STATE_UNMODIFIED
    )
    assert unmodified > 80


def test_deleted_files_leave_population():
    model = FileStateMarkov(rng=random.Random(1), arrivals_per_snapshot=0.0)
    model.seed_files(50)
    total_deleted = 0
    for _ in range(200):
        total_deleted += len(model.step()["deleted"])
    assert model.live_count == 50 - total_deleted


def test_zero_arrivals():
    model = FileStateMarkov(rng=random.Random(1), arrivals_per_snapshot=0.0)
    model.seed_files(10)
    assert model.step()["added"] == []


def test_arrival_rate_roughly_calibrated():
    model = FileStateMarkov(rng=random.Random(5), arrivals_per_snapshot=8.8)
    model.seed_files(20)
    added = sum(len(model.step()["added"]) for _ in range(200))
    assert added / 200 == pytest.approx(8.8, rel=0.2)


def test_reproducible_with_same_seed():
    def run(seed):
        model = FileStateMarkov(rng=random.Random(seed))
        model.seed_files(20)
        return [sorted(model.step().items()) for _ in range(10)]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_unique_paths():
    model = FileStateMarkov(rng=random.Random(1))
    model.seed_files(10)
    all_paths = set(model.files)
    for _ in range(20):
        step = model.step()
        for path in step["added"]:
            assert path not in all_paths
            all_paths.add(path)
