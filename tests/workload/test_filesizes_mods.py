"""Tests for the file-size sampler and modification engine (§5.2.1)."""

from __future__ import annotations

import random

import pytest

from repro.workload import (
    FileSizeSampler,
    HOMES_PATTERN_PROBABILITIES,
    MODIFICATION_SIZE_LIMIT,
    ModificationEngine,
    PAPER_MEAN_SIZE,
    PAPER_P90_BOUND,
    empirical_cdf,
)


def test_pattern_probabilities_match_paper():
    assert HOMES_PATTERN_PROBABILITIES["B"] == pytest.approx(0.38)
    assert HOMES_PATTERN_PROBABILITIES["E"] == pytest.approx(0.08)
    assert HOMES_PATTERN_PROBABILITIES["M"] == pytest.approx(0.03)
    assert sum(HOMES_PATTERN_PROBABILITIES.values()) == pytest.approx(1.0)


def test_sampler_matches_paper_statistics():
    sampler = FileSizeSampler(rng=random.Random(11))
    sizes = sampler.sample_many(20_000)
    mean = sum(sizes) / len(sizes)
    below_4mb = sum(1 for s in sizes if s < PAPER_P90_BOUND) / len(sizes)
    # Paper: mean ≈ 583 KB, 90% of files < 4 MB.
    assert mean == pytest.approx(PAPER_MEAN_SIZE, rel=0.15)
    assert below_4mb == pytest.approx(0.90, abs=0.02)


def test_theoretical_mean_close_to_paper():
    assert FileSizeSampler.theoretical_mean() == pytest.approx(
        PAPER_MEAN_SIZE, rel=0.05
    )


def test_sampler_minimum_size():
    sampler = FileSizeSampler(rng=random.Random(1), min_size=128)
    assert all(s >= 128 for s in sampler.sample_many(1000))


def test_empirical_cdf_monotone():
    cdf = empirical_cdf([5, 1, 3])
    assert cdf == [(1, pytest.approx(1 / 3)), (3, pytest.approx(2 / 3)), (5, 1.0)]


def test_pattern_sampling_distribution():
    engine = ModificationEngine(rng=random.Random(3))
    counts = {}
    for _ in range(10_000):
        pattern = engine.sample_pattern()
        counts[pattern] = counts.get(pattern, 0) + 1
    assert counts["B"] / 10_000 == pytest.approx(0.38, abs=0.03)
    assert counts["E"] / 10_000 == pytest.approx(0.08, abs=0.02)


def test_apply_b_prepends():
    engine = ModificationEngine(rng=random.Random(1))
    original = b"ORIGINAL" * 100
    modified, pattern = engine.apply(original, "B")
    assert pattern == "B"
    assert modified.endswith(original)
    assert len(modified) > len(original)


def test_apply_e_appends():
    engine = ModificationEngine(rng=random.Random(1))
    original = b"ORIGINAL" * 100
    modified, _ = engine.apply(original, "E")
    assert modified.startswith(original)


def test_apply_m_inserts_inside():
    engine = ModificationEngine(rng=random.Random(1))
    original = b"A" * 1000
    modified, _ = engine.apply(original, "M")
    assert len(modified) > 1000
    assert modified[:1] == b"A" and modified[-1:] == b"A"


def test_apply_combination_patterns():
    engine = ModificationEngine(rng=random.Random(1))
    original = b"X" * 500
    for pattern in ("BE", "BM", "EM"):
        modified, used = engine.apply(original, pattern)
        assert used == pattern
        assert len(modified) > len(original)


def test_edits_are_small():
    """The paper's 72 updates moved only ≈14 KB total (≈200 B each)."""
    engine = ModificationEngine(rng=random.Random(2))
    original = b"Z" * 10_000
    total_growth = 0
    for _ in range(100):
        modified, _ = engine.apply(original)
        total_growth += len(modified) - len(original)
    assert total_growth / 100 < 1200  # worst pattern = 3 edits x 384 B


def test_eligibility_limit():
    assert ModificationEngine.eligible(1024)
    assert not ModificationEngine.eligible(MODIFICATION_SIZE_LIMIT)
