"""Tests for the trace generator and replayer (§5.2.1)."""

from __future__ import annotations

import pytest

from repro.workload import (
    OP_ADD,
    OP_REMOVE,
    OP_UPDATE,
    Trace,
    TraceGenerator,
    TraceOp,
    TraceReplayer,
)


@pytest.fixture(scope="module")
def paper_trace():
    return TraceGenerator(seed=7).generate()


def test_trace_statistics_near_paper(paper_trace):
    """Paper: 940 ADDs, 72 UPDATEs, 228 REMOVEs, 535 MB, mean 583 KB."""
    summary = paper_trace.summary()
    assert 800 <= summary["adds"] <= 1100
    assert 40 <= summary["updates"] <= 120
    assert 150 <= summary["removes"] <= 320
    assert 380 <= summary["add_volume_mb"] <= 750
    assert 380 <= summary["mean_file_size_kb"] <= 800


def test_trace_deterministic_per_seed():
    assert TraceGenerator(seed=3).generate().ops == TraceGenerator(seed=3).generate().ops
    assert TraceGenerator(seed=3).generate().ops != TraceGenerator(seed=4).generate().ops


def test_trace_referential_integrity(paper_trace):
    """UPDATE/REMOVE only touch files that exist at that point."""
    live = set()
    for op in paper_trace:
        if op.op == OP_ADD:
            assert op.path not in live
            live.add(op.path)
        elif op.op == OP_UPDATE:
            assert op.path in live
        elif op.op == OP_REMOVE:
            assert op.path in live
            live.remove(op.path)


def test_scale_shrinks_sizes_only():
    full = TraceGenerator(seed=9, scale=1.0).generate()
    small = TraceGenerator(seed=9, scale=0.1).generate()
    assert len(full) == len(small)
    assert [o.op for o in full] == [o.op for o in small]
    assert small.add_volume < full.add_volume * 0.15


def test_only_filters_by_action(paper_trace):
    adds = paper_trace.only(OP_ADD)
    assert len(adds) == paper_trace.count(OP_ADD)
    assert all(op.op == OP_ADD for op in adds)


def test_updates_have_patterns(paper_trace):
    for op in paper_trace:
        if op.op == OP_UPDATE:
            assert op.pattern


def test_file_sizes_for_cdf(paper_trace):
    sizes = paper_trace.file_sizes()
    assert len(sizes) == paper_trace.count(OP_ADD)
    assert all(s > 0 for s in sizes)


def test_replayer_materializes_adds():
    trace = TraceGenerator(seed=5, scale=0.02).generate()
    replayer = TraceReplayer(trace)
    op = next(o for o in trace if o.op == OP_ADD)
    content = replayer.materialize(op)
    assert len(content) == op.size


def test_replayer_update_mutates_previous_content():
    trace = Trace(
        ops=[
            TraceOp(op=OP_ADD, path="f", snapshot=0, size=2000),
            TraceOp(op=OP_UPDATE, path="f", snapshot=1, size=2000, pattern="B"),
        ],
        seed=1,
    )
    replayer = TraceReplayer(trace)
    original = replayer.materialize(trace.ops[0])
    updated = replayer.materialize(trace.ops[1])
    assert updated != original
    assert updated.endswith(original)  # B-pattern prepends


def test_replayer_remove_clears_content():
    trace = Trace(
        ops=[
            TraceOp(op=OP_ADD, path="f", snapshot=0, size=100),
            TraceOp(op=OP_REMOVE, path="f", snapshot=1),
        ],
        seed=1,
    )
    replayer = TraceReplayer(trace)
    replayer.materialize(trace.ops[0])
    assert replayer.materialize(trace.ops[1]) is None
    assert not replayer.content.exists("f")


def test_replayer_deterministic_across_replays():
    trace = TraceGenerator(seed=5, scale=0.02).generate()
    contents_a = [TraceReplayer(trace).materialize(op) for op in trace.ops[:10]]
    contents_b = [TraceReplayer(trace).materialize(op) for op in trace.ops[:10]]
    assert contents_a == contents_b


def test_replayer_update_on_unseen_file_degrades_to_add():
    trace = Trace(
        ops=[TraceOp(op=OP_UPDATE, path="ghost", snapshot=0, size=500, pattern="E")],
        seed=1,
    )
    content = TraceReplayer(trace).materialize(trace.ops[0])
    assert len(content) == 500
