"""Tests for the shared routing package and the ShardRouter."""

from __future__ import annotations

import pytest

from repro.routing import HashRing, ShardRouter


def test_storage_ring_is_a_reexport():
    # The deprecation shim must hand out the very same class, so rings
    # built through either import path agree byte for byte.
    from repro.storage.ring import HashRing as LegacyHashRing

    assert LegacyHashRing is HashRing


def test_requires_at_least_one_shard():
    with pytest.raises(ValueError):
        ShardRouter(0)


def test_single_shard_routes_everything_to_zero():
    router = ShardRouter(1)
    assert all(router.shard_for(f"ws-{i}") == 0 for i in range(50))


def test_deterministic_across_instances():
    a = ShardRouter(4)
    b = ShardRouter(4)
    keys = [f"workspace-{i}" for i in range(200)]
    assert [a.shard_for(k) for k in keys] == [b.shard_for(k) for k in keys]


def test_shard_indices_in_range():
    router = ShardRouter(5)
    for i in range(500):
        assert 0 <= router.shard_for(f"ws-{i}") < 5


def test_distribution_roughly_uniform():
    router = ShardRouter(4)
    counts = router.load_distribution(f"ws-{i}" for i in range(4000))
    assert set(counts) == {0, 1, 2, 3}
    for count in counts.values():
        # 4000 keys over 4 shards: each should get a meaningful share.
        assert count > 500


def test_group_by_shard_partitions_and_preserves_order():
    router = ShardRouter(3)
    keys = [f"ws-{i}" for i in range(60)]
    groups = router.group_by_shard(keys)
    regrouped = [k for shard in sorted(groups) for k in groups[shard]]
    assert sorted(regrouped) == sorted(keys)
    for shard, members in groups.items():
        assert all(router.shard_for(k) == shard for k in members)
        # Insertion order within a shard follows input order.
        indices = [keys.index(k) for k in members]
        assert indices == sorted(indices)


def test_non_string_keys_are_coerced():
    router = ShardRouter(4)
    assert router.shard_for(123) == router.shard_for("123")
