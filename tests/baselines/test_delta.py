"""Tests for the rsync-style delta encoding (the librsync role)."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import apply_delta, compute_delta, compute_signature


def rand(n, seed=0):
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(n))


def round_trip(old, new, block_size=512):
    signature = compute_signature(old, block_size)
    delta = compute_delta(signature, new)
    assert apply_delta(old, delta) == new
    return signature, delta


def test_identical_files_all_copies():
    old = rand(8192, 1)
    _sig, delta = round_trip(old, old)
    assert delta.literal_bytes == 0
    assert delta.wire_size < len(old) / 10


def test_prepend_small_delta():
    """The B-pattern case: delta stays tiny despite every byte shifting."""
    old = rand(100_000, 2)
    new = rand(200, 3) + old
    _sig, delta = round_trip(old, new, block_size=1024)
    assert delta.literal_bytes <= 200 + 1024  # edit + ≤1 broken block
    assert delta.wire_size < len(new) / 20


def test_append_small_delta():
    old = rand(50_000, 4)
    new = old + rand(300, 5)
    _sig, delta = round_trip(old, new, block_size=1024)
    assert delta.wire_size < len(new) / 10


def test_middle_insert_small_delta():
    old = rand(50_000, 6)
    new = old[:20_000] + rand(250, 7) + old[20_000:]
    _sig, delta = round_trip(old, new, block_size=1024)
    assert delta.wire_size < len(new) / 10


def test_total_rewrite_costs_full_literals():
    old = rand(10_000, 8)
    new = rand(10_000, 9)
    _sig, delta = round_trip(old, new, block_size=512)
    assert delta.literal_bytes == len(new)


def test_empty_old_file():
    _sig, delta = round_trip(b"", rand(3000, 10))
    assert delta.literal_bytes == 3000


def test_empty_new_file():
    _sig, delta = round_trip(rand(3000, 11), b"")
    assert delta.literal_bytes == 0
    assert delta.ops == ()


def test_signature_wire_size_proportional_to_blocks():
    data = rand(10_240, 12)
    signature = compute_signature(data, 1024)
    assert len(signature.blocks) == 10
    assert signature.wire_size == 8 + 10 * 16


def test_block_size_validation():
    with pytest.raises(ValueError):
        compute_signature(b"x", 0)


def test_shared_suffix_after_truncation():
    old = rand(20_000, 13)
    new = old[:10_240]  # truncate at a block boundary
    _sig, delta = round_trip(old, new, block_size=1024)
    assert delta.literal_bytes == 0


def test_old_file_with_repeated_blocks():
    """Identical blocks in the old file alias in the signature table;
    any of them may be referenced, but reconstruction must be exact."""
    block = rand(1024, 20)
    old = block * 8  # eight identical blocks
    new = rand(100, 21) + old + rand(100, 22)
    _sig, delta = round_trip(old, new, block_size=1024)
    assert delta.literal_bytes <= 200 + 2 * 1024


def test_new_file_reuses_one_old_block_many_times():
    block = rand(512, 23)
    old = rand(2048, 24) + block + rand(2048, 25)
    new = block * 10  # the new file is that one block, repeated
    _sig, delta = round_trip(old, new, block_size=512)
    assert delta.copy_count == 10
    assert delta.literal_bytes == 0


@settings(max_examples=40, deadline=None)
@given(
    old=st.binary(max_size=8000),
    edit=st.binary(max_size=200),
    position=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_delta_reconstructs(old, edit, position):
    cut = int(len(old) * position)
    new = old[:cut] + edit + old[cut:]
    signature = compute_signature(old, 256)
    delta = compute_delta(signature, new)
    assert apply_delta(old, delta) == new


@settings(max_examples=30, deadline=None)
@given(old=st.binary(max_size=5000), new=st.binary(max_size=5000))
def test_property_arbitrary_pairs_reconstruct(old, new):
    signature = compute_signature(old, 128)
    delta = compute_delta(signature, new)
    assert apply_delta(old, delta) == new
