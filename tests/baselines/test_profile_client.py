"""Tests for the provider profiles and simulated clients."""

from __future__ import annotations

import pytest

from repro.baselines import (
    COMMERCIAL_PROFILES,
    DROPBOX,
    ONEDRIVE,
    ProfileClient,
    TABLE1_CLIENT_VERSIONS,
)
from repro.workload import Trace, TraceOp, TraceReplayer
from repro.workload.trace import OP_ADD, OP_REMOVE, OP_UPDATE


def small_trace():
    ops = [
        TraceOp(op=OP_ADD, path="a", snapshot=0, size=10_000),
        TraceOp(op=OP_ADD, path="b", snapshot=0, size=20_000),
        TraceOp(op=OP_UPDATE, path="a", snapshot=1, size=10_000, pattern="B"),
        TraceOp(op=OP_REMOVE, path="b", snapshot=2),
    ]
    return Trace(ops=ops, seed=77)


def test_table1_versions_match_paper():
    assert TABLE1_CLIENT_VERSIONS["StackSync"] == "1.6.4"
    assert TABLE1_CLIENT_VERSIONS["Dropbox"] == "2.6.33"
    assert TABLE1_CLIENT_VERSIONS["Microsoft OneDrive"] == "17.0.4035.0328"
    assert TABLE1_CLIENT_VERSIONS["Amazon Cloud Drive"] == "2.4.2013.3290"
    assert TABLE1_CLIENT_VERSIONS["Google Drive"] == "1.15.6430.6825"
    assert TABLE1_CLIENT_VERSIONS["Box"] == "4.0.4925"


def test_five_commercial_profiles():
    assert len(COMMERCIAL_PROFILES) == 5
    assert "Dropbox" in COMMERCIAL_PROFILES


def test_replay_accounts_per_action():
    client = ProfileClient(ONEDRIVE)
    report = client.replay(small_trace())
    assert report.operations == 4
    assert set(report.by_action_control) == {OP_ADD, OP_UPDATE, OP_REMOVE}
    assert report.by_action_storage[OP_REMOVE] == 0
    assert report.by_action_storage[OP_ADD] > 30_000  # both files + inflation


def test_remove_costs_control_only():
    client = ProfileClient(ONEDRIVE)
    report = client.replay(small_trace())
    assert report.by_action_control[OP_REMOVE] > 0


def test_dropbox_update_uses_delta():
    """Delta encoding makes Dropbox's UPDATE storage traffic tiny
    relative to a full re-upload provider (Fig 7d shape)."""
    trace = small_trace()
    dropbox = ProfileClient(DROPBOX).replay(trace, TraceReplayer(trace, compressible_fraction=0.0))
    onedrive = ProfileClient(ONEDRIVE).replay(trace, TraceReplayer(trace, compressible_fraction=0.0))
    assert dropbox.by_action_storage[OP_UPDATE] < onedrive.by_action_storage[OP_UPDATE] / 2


def test_dropbox_control_heavier_than_others():
    trace = small_trace()
    dropbox = ProfileClient(DROPBOX).replay(trace)
    onedrive = ProfileClient(ONEDRIVE).replay(trace)
    assert dropbox.control_bytes > onedrive.control_bytes


def test_bundling_reduces_dropbox_control():
    """Table 2 shape: control shrinks as batch size grows."""
    trace = Trace(
        ops=[TraceOp(op=OP_ADD, path=f"f{i}", snapshot=0, size=1000) for i in range(40)],
        seed=5,
    )
    controls = {}
    for batch in (1, 5, 10, 20, 40):
        report = ProfileClient(DROPBOX, batch_size=batch).replay(trace)
        controls[batch] = report.control_bytes
    assert controls[5] > controls[10] > controls[20] > controls[40]
    assert controls[1] > controls[5]


def test_non_bundling_provider_ignores_batch_size():
    trace = small_trace()
    a = ProfileClient(ONEDRIVE, batch_size=1).replay(trace)
    b = ProfileClient(ONEDRIVE, batch_size=20).replay(trace)
    assert a.control_bytes == b.control_bytes


def test_dedup_skips_identical_content():
    trace = Trace(
        ops=[
            TraceOp(op=OP_ADD, path="x", snapshot=0, size=5000),
            TraceOp(op=OP_ADD, path="y", snapshot=0, size=5000),
        ],
        seed=5,
    )

    class FixedReplayer(TraceReplayer):
        def materialize(self, op):
            content = b"\x42" * op.size  # identical content for both files
            self.content.set(op.path, content)
            return content

    report = ProfileClient(DROPBOX).replay(trace, FixedReplayer(trace))
    # Second file dedups: storage well below 2x inflated payload.
    assert report.storage_bytes < 5000 * DROPBOX.storage_inflation + 3000


def test_overhead_ratio():
    trace = small_trace()
    report = ProfileClient(ONEDRIVE).replay(trace)
    assert report.overhead_ratio(trace.add_volume) == pytest.approx(
        report.total_bytes / trace.add_volume
    )
    assert report.overhead_ratio(0) == 0.0


def test_batch_size_validation():
    with pytest.raises(ValueError):
        ProfileClient(DROPBOX, batch_size=0)
